//! Golden-file tests for the cross-function rules (R8–R10).
//!
//! Every `tests/fixtures/<rule>/<name>.rs` is parsed as a standalone
//! source file (fixtures are lint inputs, never compiled) and run
//! through its rule with fixture-local roots / allowlists; the
//! rendered findings must match `<name>.expected` line-for-line. An
//! empty `.expected` pins a no-fire case. R9 fixtures may carry a
//! `<name>.allow` allowlist in the checked-in `lint/merge_allowlist.txt`
//! format.

use palu_lint::graph::ItemGraph;
use palu_lint::rules::{hot_loop_alloc, merge_determinism, panic_reach};
use palu_lint::source::SourceFile;
use std::path::{Path, PathBuf};

/// One parsed fixture: its lint-relative path, source file, expected
/// golden output, and optional allowlist text.
struct Fixture {
    rel: String,
    file: SourceFile,
    expected: String,
    allow: Option<String>,
}

fn load(rule_dir: &str) -> Vec<Fixture> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures under {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            let rel = format!("fixtures/{rule_dir}/{stem}.rs");
            let src = std::fs::read_to_string(&p).unwrap();
            let expected = std::fs::read_to_string(p.with_extension("expected"))
                .unwrap_or_else(|e| panic!("{stem}.expected: {e}"));
            let allow = std::fs::read_to_string(p.with_extension("allow")).ok();
            Fixture {
                rel: rel.clone(),
                file: SourceFile::parse(rel, &src),
                expected,
                allow,
            }
        })
        .collect()
}

fn assert_golden(fixture: &str, actual: &[String], expected: &str) {
    let expected: Vec<&str> = expected.lines().collect();
    assert_eq!(
        actual.iter().map(String::as_str).collect::<Vec<_>>(),
        expected,
        "golden mismatch for {fixture}"
    );
}

#[test]
fn r8_fixtures_match_golden_output() {
    for fx in load("r8") {
        let files = vec![fx.file];
        let graph = ItemGraph::build(&files);
        // Fixture roots: every pub non-test fn, mirroring how the
        // real ROOT_FILES seed the walk.
        let roots: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_pub && !f.in_test)
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<String> = panic_reach::sites(&files, &graph, &roots)
            .iter()
            .map(|s| {
                format!(
                    "{}:{}: {} in {} (reachable from {})",
                    s.file, s.line, s.what, s.in_fn, s.root
                )
            })
            .collect();
        assert_golden(&fx.rel, &lines, &fx.expected);
    }
}

#[test]
fn r9_fixtures_match_golden_output() {
    for fx in load("r9") {
        let files = vec![fx.file];
        let graph = ItemGraph::build(&files);
        let allow = match &fx.allow {
            Some(src) => merge_determinism::parse_allowlist(src).unwrap(),
            None => Vec::new(),
        };
        // A fixture allowlist must name real fns, same as the ratchet
        // enforces on the checked-in one.
        assert!(
            merge_determinism::unmatched_entries(&files, &graph, &allow).is_empty(),
            "stale allow entry in {}",
            fx.rel
        );
        let mut diags = Vec::new();
        merge_determinism::check(&files, &graph, &allow, &mut diags);
        let lines: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert_golden(&fx.rel, &lines, &fx.expected);
    }
}

#[test]
fn r10_fixtures_match_golden_output() {
    for fx in load("r10") {
        let files = vec![fx.file];
        let graph = ItemGraph::build(&files);
        let mut diags = Vec::new();
        hot_loop_alloc::check(&files, &graph, &mut diags);
        let lines: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert_golden(&fx.rel, &lines, &fx.expected);
    }
}
