//! R9 fixture: hash-order iteration and completion-order reduction
//! fire; the allowlisted fn (see hash_order.allow) stays silent.

use std::collections::HashMap;

pub struct Merger;

impl Merger {
    pub fn merge(&self, counts: &HashMap<u32, u64>) -> u64 {
        let mut total = 0;
        for (_k, v) in counts {
            total += v;
        }
        total
    }

    pub fn drain_values(&self, counts: HashMap<u32, u64>) -> u64 {
        counts.values().copied().sum()
    }
}

pub fn pooled_total(parts: &[Vec<f64>]) -> f64 {
    std::thread::scope(|s| {
        for p in parts {
            s.spawn(move || p.len());
        }
    });
    parts.iter().map(|p| p.len() as f64).sum::<f64>()
}

pub fn blessed_merge(counts: &HashMap<u32, u64>) -> u64 {
    let mut keys: Vec<u32> = counts.keys().copied().collect();
    keys.sort_unstable();
    let mut total = 0;
    for k in keys {
        total += counts[&k];
    }
    total
}
