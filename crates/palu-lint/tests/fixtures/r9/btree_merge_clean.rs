//! R9 fixture: BTree iteration and membership-only hash use are
//! order-deterministic — no findings.

use std::collections::{BTreeMap, HashMap};

pub fn merge(counts: &BTreeMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in counts.iter() {
        total += v;
    }
    total
}

pub fn membership_only(seen: &mut HashMap<u32, u64>, key: u32) -> bool {
    if seen.contains_key(&key) {
        return true;
    }
    seen.insert(key, 1);
    false
}
