//! R10 fixture: buffers hoisted out of the loop and reused, plus an
//! untagged fn — no findings.

// lint:hot
pub fn window_worker(windows: usize) -> u64 {
    let mut packet_buf: Vec<u64> = Vec::new();
    let mut total = 0u64;
    for w in 0..windows {
        packet_buf.clear();
        packet_buf.push(w as u64);
        total += packet_buf.len() as u64;
    }
    total
}

pub fn cold_path(windows: usize) -> usize {
    let mut n = 0;
    for _ in 0..windows {
        let v = vec![0u8; 4];
        n += v.len();
    }
    n
}
