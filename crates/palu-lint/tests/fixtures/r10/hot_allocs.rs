//! R10 fixture: allocation idioms inside the loops of a
//! `lint:hot`-tagged fn fire; the justified one stays silent.

// lint:hot
pub fn window_worker(windows: usize) -> u64 {
    let mut total = 0u64;
    for w in 0..windows {
        let packet_buf: Vec<u64> = Vec::new();
        let histogram = vec![0u64; 16];
        let degrees: Vec<u64> = (0..w as u64).collect();
        // lint:allow(R10) — capacity probe, test-bed only.
        let probe: Vec<u8> = Vec::with_capacity(w);
        total += packet_buf.len() as u64
            + histogram.len() as u64
            + degrees.len() as u64
            + probe.len() as u64;
    }
    total
}
