//! R8 fixture: a capture path that returns typed errors instead of
//! panicking has no reachable sites.

pub enum CaptureError {
    Empty,
    OutOfRange { idx: usize },
}

pub struct Ledger {
    entries: Vec<u64>,
}

impl Ledger {
    pub fn capture(&self, idx: usize) -> Result<u64, CaptureError> {
        let raw = match self.entries.get(idx) {
            Some(v) => *v,
            None => return Err(CaptureError::OutOfRange { idx }),
        };
        normalize(raw)
    }
}

fn normalize(raw: u64) -> Result<u64, CaptureError> {
    match raw.checked_sub(1) {
        Some(v) => Ok(v),
        None => Err(CaptureError::Empty),
    }
}
