//! R8 fixture: sites reachable from the pub root fire; sites in
//! unreachable helpers, test code, or behind `lint:allow(R8)` stay
//! silent.

pub struct Ledger {
    entries: Vec<u64>,
}

impl Ledger {
    pub fn capture(&self, idx: usize) -> u64 {
        let raw = self.entries[idx];
        normalize(raw)
    }
}

fn normalize(raw: u64) -> u64 {
    if raw == 0 {
        panic!("zero entry");
    }
    // lint:allow(R8) — bounded by the zero check above.
    let silenced = checked(raw).unwrap();
    silenced.wrapping_add(fallback(raw))
}

fn checked(raw: u64) -> Option<u64> {
    raw.checked_sub(1)
}

fn fallback(raw: u64) -> u64 {
    raw.checked_div(2).unwrap()
}

fn orphan() {
    unreachable!("no root reaches this fn");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panics_are_ignored() {
        panic!("fine in tests");
    }
}
