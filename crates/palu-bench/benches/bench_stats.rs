//! Criterion benches for the statistical substrate, including the
//! Poisson-sampler ablation (DESIGN.md design-choice #5: inversion vs
//! PTRS transformed rejection).

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use palu_stats::distributions::{Binomial, DiscreteDistribution, Poisson, Zeta};
    use palu_stats::rng::Xoshiro256pp;
    use palu_stats::special::{riemann_zeta, zm_normalizer};
    use std::hint::black_box;

    fn bench_special(c: &mut Criterion) {
        let mut g = c.benchmark_group("special");
        g.bench_function("riemann_zeta(2.1)", |b| {
            b.iter(|| riemann_zeta(black_box(2.1)).unwrap())
        });
        g.bench_function("zm_normalizer_direct_4096", |b| {
            b.iter(|| zm_normalizer(black_box(4096), 2.0, 0.5))
        });
        g.bench_function("zm_normalizer_fast_1M", |b| {
            b.iter(|| zm_normalizer(black_box(1 << 20), 2.0, 0.5))
        });
        g.finish();
    }

    fn bench_poisson_ablation(c: &mut Criterion) {
        // Design-choice #5: the INVERSION_CUTOFF at λ = 10. Sampling cost
        // per 1000 draws on both sides of the cutoff.
        let mut g = c.benchmark_group("poisson_sampler");
        for &lambda in &[1.0, 5.0, 9.9, 10.1, 40.0, 400.0] {
            let dist = Poisson::new(lambda).unwrap();
            g.bench_with_input(BenchmarkId::new("sample_1k", lambda), &dist, |b, dist| {
                let mut rng = Xoshiro256pp::seed_from_u64(1);
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..1000 {
                        acc += dist.sample(&mut rng);
                    }
                    acc
                })
            });
        }
        g.finish();
    }

    fn bench_binomial(c: &mut Criterion) {
        let mut g = c.benchmark_group("binomial_sampler");
        for &(n, p) in &[(100u64, 0.05), (10_000, 0.3), (1_000_000, 0.001)] {
            let dist = Binomial::new(n, p).unwrap();
            g.bench_with_input(
                BenchmarkId::new("sample_1k", format!("n{n}_p{p}")),
                &dist,
                |b, dist| {
                    let mut rng = Xoshiro256pp::seed_from_u64(2);
                    b.iter(|| {
                        let mut acc = 0u64;
                        for _ in 0..1000 {
                            acc += dist.sample(&mut rng);
                        }
                        acc
                    })
                },
            );
        }
        g.finish();
    }

    fn bench_zeta_sampler(c: &mut Criterion) {
        let mut g = c.benchmark_group("zeta_sampler");
        for &alpha in &[1.6, 2.0, 3.0] {
            let dist = Zeta::new(alpha).unwrap();
            g.bench_with_input(BenchmarkId::new("sample_1k", alpha), &dist, |b, dist| {
                let mut rng = Xoshiro256pp::seed_from_u64(3);
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..1000 {
                        acc += dist.sample(&mut rng);
                    }
                    acc
                })
            });
        }
        g.finish();
    }

    criterion_group!(
        benches,
        bench_special,
        bench_poisson_ablation,
        bench_binomial,
        bench_zeta_sampler
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_stats: built without the `criterion` feature; benches skipped.");
}
