//! Criterion benches for the graph substrate, including the
//! core-generator ablation (DESIGN.md design-choice #1: configuration
//! model vs Barabási–Albert growth).

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use palu_graph::census::TopologyCensus;
    use palu_graph::models::{BarabasiAlbert, PowerLawConfigModel};
    use palu_graph::palu_gen::{CoreGenerator, PaluGenerator};
    use palu_graph::sample::sample_edges;
    use palu_stats::rng::Xoshiro256pp;
    use std::hint::black_box;

    const N: u32 = 100_000;

    fn bench_core_generators(c: &mut Criterion) {
        let mut g = c.benchmark_group("core_generator_100k");
        g.sample_size(10);
        g.bench_function("config_model_alpha2", |b| {
            let gen = PowerLawConfigModel::new(N, 2.0).unwrap();
            b.iter(|| {
                let mut rng = Xoshiro256pp::seed_from_u64(1);
                gen.generate(&mut rng)
            })
        });
        g.bench_function("barabasi_albert_m2", |b| {
            let gen = BarabasiAlbert::new(N, 2).unwrap();
            b.iter(|| {
                let mut rng = Xoshiro256pp::seed_from_u64(2);
                gen.generate(&mut rng)
            })
        });
        g.bench_function("ba_shifted_alpha2.5", |b| {
            let gen = BarabasiAlbert::with_shift(N, 2, -1.0).unwrap();
            b.iter(|| {
                let mut rng = Xoshiro256pp::seed_from_u64(3);
                gen.generate(&mut rng)
            })
        });
        g.finish();
    }

    fn bench_palu_generation(c: &mut Criterion) {
        let mut g = c.benchmark_group("palu_underlying_100k");
        g.sample_size(10);
        for (name, core) in [
            ("config_model", CoreGenerator::ConfigModel),
            ("ba_m2", CoreGenerator::BarabasiAlbert { m: 2 }),
        ] {
            g.bench_with_input(BenchmarkId::new("generate", name), &core, |b, &core| {
                let gen = PaluGenerator::new(50_000, 20_000, 10_000, 2.0, 2.0)
                    .unwrap()
                    .with_core_generator(core);
                b.iter(|| {
                    let mut rng = Xoshiro256pp::seed_from_u64(4);
                    gen.generate(&mut rng)
                })
            });
        }
        g.finish();
    }

    fn bench_sampling_and_census(c: &mut Criterion) {
        let gen = PaluGenerator::new(50_000, 20_000, 10_000, 2.0, 2.0).unwrap();
        let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(5));
        let mut g = c.benchmark_group("observation");
        g.sample_size(20);
        g.bench_function("sample_edges_p0.5", |b| {
            b.iter(|| {
                let mut rng = Xoshiro256pp::seed_from_u64(6);
                sample_edges(black_box(&net.graph), 0.5, &mut rng)
            })
        });
        let observed = sample_edges(&net.graph, 0.5, &mut Xoshiro256pp::seed_from_u64(7));
        g.bench_function("topology_census", |b| {
            b.iter(|| TopologyCensus::of(black_box(&observed)))
        });
        g.bench_function("degree_histogram", |b| {
            b.iter(|| black_box(&observed).degree_histogram())
        });
        g.finish();
    }

    criterion_group!(
        benches,
        bench_core_generators,
        bench_palu_generation,
        bench_sampling_and_census
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_graph: built without the `criterion` feature; benches skipped.");
}
