//! Criterion benches for the PALU model layer: the Figure 4 kernel
//! (Equation-5 r fitting), analytic predictions, and the exact
//! thinned-core pmf.

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use palu::analytic::{thinned_core_pmf, ObservedPrediction};
    use palu::params::PaluParams;
    use palu::zm_connection::PaluCurve;
    use std::hint::black_box;

    fn params() -> PaluParams {
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap()
    }

    fn bench_analytic(c: &mut Criterion) {
        let p = params();
        let mut g = c.benchmark_group("analytic");
        g.bench_function("observed_prediction", |b| {
            b.iter(|| ObservedPrediction::new(black_box(&p)).unwrap())
        });
        let pred = ObservedPrediction::new(&p).unwrap();
        g.bench_function("degree_law_1k_points", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for d in 1..=1000u64 {
                    acc += pred.degree_fraction(d);
                }
                acc
            })
        });
        g.bench_function("pooled_model_64k", |b| {
            b.iter(|| pred.pooled(black_box(1 << 16)))
        });
        g.finish();
    }

    fn bench_thinned_pmf(c: &mut Criterion) {
        let mut g = c.benchmark_group("thinned_core_pmf");
        for &d in &[1u64, 10, 100] {
            g.bench_with_input(BenchmarkId::new("exact_sum", d), &d, |b, &d| {
                b.iter(|| thinned_core_pmf(2.0, black_box(0.5), d).unwrap())
            });
        }
        g.finish();
    }

    fn bench_fig4_kernel(c: &mut Criterion) {
        // The Figure 4 regeneration kernel: fit r for one (α, δ) family.
        let mut g = c.benchmark_group("fig4_curve_family");
        g.sample_size(10);
        g.bench_function("fit_r_to_zm_4k", |b| {
            b.iter(|| PaluCurve::fit_r_to_zm(black_box(2.0), -0.5, 1 << 12).unwrap())
        });
        let curve = PaluCurve::new(2.0, -0.5, 2.0, 1 << 12).unwrap();
        g.bench_function("curve_pooled_4k", |b| b.iter(|| black_box(&curve).pooled()));
        g.finish();
    }

    criterion_group!(
        benches,
        bench_analytic,
        bench_thinned_pmf,
        bench_fig4_kernel
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_palu: built without the `criterion` feature; benches skipped.");
}
