//! Criterion benches for the streaming-traffic substrate: packet
//! synthesis, window aggregation (the Figure 3 inner loop), and
//! multi-window pooling.

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, Criterion, Throughput};
    use palu::params::PaluParams;
    use palu_stats::rng::Xoshiro256pp;
    use palu_traffic::observatory::{Observatory, ObservatoryConfig};
    use palu_traffic::packets::{EdgeIntensity, PacketSynthesizer};
    use palu_traffic::pipeline::{Measurement, Pipeline};
    use palu_traffic::window::PacketWindow;
    use std::hint::black_box;

    fn observatory(n_v: u64) -> Observatory {
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.5).unwrap();
        Observatory::new(
            ObservatoryConfig {
                name: "bench".into(),
                date: String::new(),
                n_v,
            },
            &params.generator(100_000).unwrap(),
            EdgeIntensity::Uniform,
            1,
        )
    }

    fn bench_packet_synthesis(c: &mut Criterion) {
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.5).unwrap();
        let net = params
            .generator(100_000)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(1));
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let syn = PacketSynthesizer::new(&net.graph, EdgeIntensity::Uniform, &mut rng);
        let mut g = c.benchmark_group("packet_synthesis");
        g.throughput(Throughput::Elements(100_000));
        g.bench_function("draw_100k", |b| {
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            b.iter(|| syn.draw_many(&mut rng, black_box(100_000)))
        });
        g.finish();
    }

    fn bench_window_aggregation(c: &mut Criterion) {
        let mut obs = observatory(100_000);
        let syn_packets = {
            // Pre-draw one window's packets so the bench isolates
            // aggregation cost.
            let w = obs.next_window();
            drop(w);
            let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.5).unwrap();
            let net = params
                .generator(100_000)
                .unwrap()
                .generate(&mut Xoshiro256pp::seed_from_u64(4));
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            let syn = PacketSynthesizer::new(&net.graph, EdgeIntensity::Uniform, &mut rng);
            syn.draw_many(&mut rng, 100_000)
        };
        let mut g = c.benchmark_group("window");
        g.sample_size(20);
        g.throughput(Throughput::Elements(100_000));
        g.bench_function("aggregate_100k_packets", |b| {
            b.iter(|| PacketWindow::from_packets(0, black_box(&syn_packets)))
        });
        let w = PacketWindow::from_packets(0, &syn_packets);
        g.bench_function("undirected_degrees", |b| {
            b.iter(|| black_box(&w).undirected_degree_histogram())
        });
        g.bench_function("five_quantities", |b| b.iter(|| black_box(&w).quantities()));
        g.finish();
    }

    fn bench_pooling(c: &mut Criterion) {
        let mut obs = observatory(50_000);
        let windows = obs.windows(8);
        let mut g = c.benchmark_group("pipeline");
        g.sample_size(10);
        g.bench_function("pool_8_windows", |b| {
            b.iter(|| Pipeline::pool(Measurement::UndirectedDegree, black_box(&windows)))
        });
        g.finish();
    }

    criterion_group!(
        benches,
        bench_packet_synthesis,
        bench_window_aggregation,
        bench_pooling
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_traffic: built without the `criterion` feature; benches skipped.");
}
