//! Criterion benches for the fitting layer: the ZM fit-objective
//! ablation (DESIGN.md design-choice #3), the Λ-estimator ablation
//! (design-choice #2), and the CSN baseline.

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use palu::estimate::{EstimateOptions, LambdaMethod, PaluEstimator};
    use palu::params::PaluParams;
    use palu::zm::ZipfMandelbrot;
    use palu::zm_fit::{FitObjective, ZmFitter};
    use palu_graph::sample::sample_edges;
    use palu_stats::histogram::DegreeHistogram;
    use palu_stats::logbin::DifferentialCumulative;
    use palu_stats::mle::{fit_alpha_discrete, fit_csn, CsnOptions};
    use palu_stats::rng::Xoshiro256pp;
    use std::hint::black_box;

    /// One fixed observed histogram shared by every fitting bench.
    fn observed_histogram() -> DegreeHistogram {
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
        let net = params
            .generator(200_000)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(1));
        let obs = sample_edges(&net.graph, params.p, &mut Xoshiro256pp::seed_from_u64(2));
        obs.degree_histogram()
    }

    fn bench_zm_objectives(c: &mut Criterion) {
        let h = observed_histogram();
        let pooled = DifferentialCumulative::from_histogram(&h);
        let weights = vec![1.0; pooled.n_bins()];
        let mut g = c.benchmark_group("zm_fit_objective");
        g.sample_size(10);
        for obj in [
            FitObjective::LeastSquares,
            FitObjective::WeightedLeastSquares,
            FitObjective::LogSpace,
            FitObjective::PooledKs,
        ] {
            g.bench_with_input(
                BenchmarkId::new("fit", format!("{obj:?}")),
                &obj,
                |b, &obj| {
                    let fitter = ZmFitter::with_objective(obj);
                    let w = if obj == FitObjective::WeightedLeastSquares {
                        Some(weights.as_slice())
                    } else {
                        None
                    };
                    b.iter(|| fitter.fit(black_box(&pooled), w).unwrap())
                },
            );
        }
        g.finish();
    }

    fn bench_lambda_estimators(c: &mut Criterion) {
        let h = observed_histogram();
        let mut g = c.benchmark_group("lambda_estimator");
        for method in [LambdaMethod::Ratio, LambdaMethod::Pointwise] {
            g.bench_with_input(
                BenchmarkId::new("estimate", format!("{method:?}")),
                &method,
                |b, &m| {
                    let est = PaluEstimator::new(EstimateOptions {
                        lambda_method: m,
                        ..Default::default()
                    });
                    b.iter(|| est.estimate(black_box(&h)).unwrap())
                },
            );
        }
        g.finish();
    }

    fn bench_pipelines(c: &mut Criterion) {
        let h = observed_histogram();
        let mut g = c.benchmark_group("estimation_pipeline");
        g.bench_function("paper_formulas", |b| {
            let est = PaluEstimator::default();
            b.iter(|| est.estimate_underlying(black_box(&h), 0.5).unwrap())
        });
        g.bench_function("exact_thinning", |b| {
            let est = PaluEstimator::default();
            b.iter(|| est.estimate_exact(black_box(&h), 0.5).unwrap())
        });
        g.finish();
    }

    fn bench_csn_baseline(c: &mut Criterion) {
        let h = observed_histogram();
        let mut g = c.benchmark_group("csn_baseline");
        g.sample_size(10);
        g.bench_function("fixed_xmin_mle", |b| {
            b.iter(|| fit_alpha_discrete(black_box(&h), 4).unwrap())
        });
        g.bench_function("full_xmin_scan", |b| {
            b.iter(|| fit_csn(black_box(&h), &CsnOptions::default()).unwrap())
        });
        g.finish();
    }

    fn bench_zm_model_eval(c: &mut Criterion) {
        let zm = ZipfMandelbrot::new(2.0, -0.3, 1 << 14).unwrap();
        c.bench_function("zm_pooled_16k", |b| b.iter(|| black_box(&zm).pooled()));
    }

    criterion_group!(
        benches,
        bench_zm_objectives,
        bench_lambda_estimators,
        bench_pipelines,
        bench_csn_baseline,
        bench_zm_model_eval
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_fit: built without the `criterion` feature; benches skipped.");
}
