//! Criterion benches for the sparse traffic-matrix substrate,
//! including the serial-vs-parallel assembly ablation (DESIGN.md
//! design-choice #4) and the Table I notation comparison.

// Gated: `criterion` is declared as an empty feature so the offline
// build never resolves the external crate. To run these benches, add
// `criterion = "0.5"` under [dev-dependencies] (requires network) and
// build with `--features criterion`.
#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
    use palu_sparse::aggregates::Aggregates;
    use palu_sparse::coo::CooMatrix;
    use palu_sparse::parallel::{build_csr_parallel, quantities_parallel};
    use palu_sparse::quantities::QuantityHistograms;
    use std::hint::black_box;

    fn synthetic_pairs(n: usize) -> Vec<(u32, u32)> {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((x >> 33) % 40_000) as u32, ((x >> 13) % 40_000) as u32)
            })
            .collect()
    }

    fn bench_assembly_ablation(c: &mut Criterion) {
        let pairs = synthetic_pairs(1_000_000);
        let mut g = c.benchmark_group("window_assembly_1M");
        g.sample_size(10);
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("serial", |b| {
            b.iter(|| CooMatrix::from_packet_pairs(black_box(&pairs).iter().copied()).to_csr())
        });
        for &threads in &[2usize, 4, 8] {
            g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
                b.iter(|| build_csr_parallel(black_box(&pairs), t))
            });
        }
        g.finish();
    }

    fn bench_table1_notations(c: &mut Criterion) {
        let pairs = synthetic_pairs(500_000);
        let a = build_csr_parallel(&pairs, 4);
        let mut g = c.benchmark_group("table1_aggregates");
        g.bench_function("summation_notation", |b| {
            b.iter(|| Aggregates::compute(black_box(&a)))
        });
        g.bench_function("matrix_notation", |b| {
            b.iter(|| Aggregates::compute_matrix_notation(black_box(&a)))
        });
        g.finish();
    }

    fn bench_quantities(c: &mut Criterion) {
        let pairs = synthetic_pairs(500_000);
        let a = build_csr_parallel(&pairs, 4);
        let mut g = c.benchmark_group("fig1_quantities");
        g.sample_size(20);
        g.bench_function("serial_all_five", |b| {
            b.iter(|| QuantityHistograms::compute(black_box(&a)))
        });
        g.bench_function("parallel_all_five", |b| {
            b.iter(|| quantities_parallel(black_box(&a)))
        });
        g.finish();
    }

    fn bench_transpose(c: &mut Criterion) {
        let pairs = synthetic_pairs(500_000);
        let a = build_csr_parallel(&pairs, 4);
        c.bench_function("transpose_500k", |b| b.iter(|| black_box(&a).transpose()));
    }

    criterion_group!(
        benches,
        bench_assembly_ablation,
        bench_table1_notations,
        bench_quantities,
        bench_transpose
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench_sparse: built without the `criterion` feature; benches skipped.");
}
