//! E-SRV — federation service mode: submission throughput, fit-query
//! latency, and wire-fault retry overhead on a loopback server.
//!
//! The service layer (DESIGN.md §4k) claims the wire adds accounting,
//! not arithmetic: a fit served from submitted shard journals must be
//! bit-identical to the single-process pooled distribution, with
//! submission costing a small fraction of capture time even under an
//! injected wire-fault storm. This binary measures clean submission,
//! a 30% fault storm's retry overhead, and the rolling-fit query
//! latency, and records `BENCH_service.json`.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_traffic::federation::{capture_shard, ShardPlan};
use palu_traffic::journal::{Journal, JournalHeader};
use palu_traffic::pipeline::{FaultTolerantPool, Measurement, Pipeline};
use palu_traffic::service::{
    query_fit, request_shutdown, submit_journal, Collector, RetryPolicy, Server, ServiceConfig,
};
use palu_traffic::wire::FitSnapshot;
use palu_traffic::{FailurePolicy, WireInjector, WireSpec};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WINDOWS: usize = 48;
const SHARDS: u64 = 4;
const N_V: u64 = 20_000;
const SEED: u64 = 20260809;
const FIT_QUERIES: usize = 32;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "bench=service".to_string(),
            "measurement=undirected-degree".to_string(),
        ],
    )
}

fn observatory() -> palu_traffic::Observatory {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    scenario.observatory(SEED)
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

fn assert_bit_identical(snap: &FitSnapshot, baseline: &FaultTolerantPool, what: &str) {
    assert_eq!(snap.covered, WINDOWS as u64, "{what}: coverage");
    assert_eq!(snap.pooled_windows, baseline.pooled.windows, "{what}");
    assert_eq!(snap.d_max, baseline.pooled.d_max, "{what}");
    for (i, (row, ((degree, mean), sigma))) in snap
        .rows
        .iter()
        .zip(
            baseline
                .pooled
                .mean
                .iter()
                .zip(baseline.pooled.sigma.iter()),
        )
        .enumerate()
    {
        assert_eq!(row.degree, degree, "{what}: degree bin {i}");
        assert_eq!(row.mean_bits, mean.to_bits(), "{what}: mean bin {i}");
        assert_eq!(row.sigma_bits, sigma.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Start a loopback server over a fresh journal directory.
fn start_server(
    dir: &std::path::Path,
    tag: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<palu_traffic::ServiceReport, palu_traffic::ServiceFault>>,
) {
    let journal_dir = dir.join(format!("server-{tag}"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let collector = Collector::new(ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: header(),
        shards: SHARDS,
        min_coverage: 1.0,
        journal_dir,
        read_timeout: Duration::from_secs(5),
    })
    .expect("collector");
    let server = Server::bind("127.0.0.1:0", collector).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Submit every shard journal, returning total wall time.
fn submit_all(addr: &str, paths: &[PathBuf], injector: &WireInjector, retry: &RetryPolicy) -> f64 {
    let t0 = Instant::now();
    for (shard, path) in paths.iter().enumerate() {
        let outcome = submit_journal(addr, path, shard as u64, SHARDS, &header(), retry, injector)
            .expect("submission converges");
        assert_eq!(outcome.accepted, outcome.assigned, "shard {shard} complete");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    println!("E-SRV — federation service: submission throughput, fit latency, wire-fault overhead");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}, {SHARDS} shards over loopback TCP");

    let dir = std::env::temp_dir().join("palu-bench-service");
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // 1. Single-process baseline.
    let mut obs = observatory();
    let t0 = Instant::now();
    let baseline = Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads(),
        None,
        &FailurePolicy::strict(),
        None,
        None,
        None,
    )
    .expect("baseline capture succeeds");
    let base_s = t0.elapsed().as_secs_f64();

    // 2. Capture the shard journals the clients will submit.
    let plan = ShardPlan::new(WINDOWS as u64, SHARDS).expect("plan");
    let mut paths = Vec::new();
    let mut capture_s = 0.0f64;
    for shard in 0..SHARDS {
        let path = dir.join(format!("bench-shard-{shard}.journal"));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, header()).expect("shard journal create");
        let mut obs = observatory();
        let t0 = Instant::now();
        capture_shard(
            Measurement::UndirectedDegree,
            &mut obs,
            &plan,
            shard,
            threads(),
            None,
            &FailurePolicy::strict(),
            None,
            Some(&journal),
            None,
            None,
        )
        .expect("shard capture succeeds");
        capture_s += t0.elapsed().as_secs_f64();
        paths.push(path);
    }
    let journal_bytes: u64 = paths
        .iter()
        .map(|p| std::fs::metadata(p).map_or(0, |m| m.len()))
        .sum();

    let retry = RetryPolicy::fast(SEED);

    // 3. Clean submission of all shards, then the fit-query loop.
    let (addr, handle) = start_server(&dir, "clean");
    let clean_injector = WireInjector::new(WireSpec::none(), SEED);
    let submit_s = submit_all(&addr, &paths, &clean_injector, &retry);
    let t0 = Instant::now();
    let mut snap = query_fit(&addr, &retry).expect("fit");
    for _ in 1..FIT_QUERIES {
        snap = query_fit(&addr, &retry).expect("fit");
    }
    let fit_s = t0.elapsed().as_secs_f64() / FIT_QUERIES as f64;
    assert_bit_identical(&snap, &baseline, "served fit vs single-process");
    request_shutdown(&addr, &retry).expect("shutdown");
    let clean_report = handle.join().expect("server thread").expect("drain");
    assert_eq!(clean_report.covered, WINDOWS as u64);
    let submit_frac = submit_s / base_s.max(1e-9);
    println!(
        "  capture: single-process {base_s:.2}s; shards {capture_s:.2}s total \
         ({journal_bytes} journal bytes)"
    );
    println!(
        "  clean submission: {submit_s:.4}s for {SHARDS} shards — {:.1}% of capture time, \
         served fit bit-identical",
        submit_frac * 100.0
    );
    println!(
        "  rolling fit: {:.2} ms/query over {FIT_QUERIES} queries",
        fit_s * 1e3
    );

    // 4. The same submission under a 30% wire-fault storm: retries
    //    must converge to the identical fit; the overhead is the cost
    //    of crash tolerance on a hostile wire.
    let (addr, handle) = start_server(&dir, "storm");
    let storm_injector = WireInjector::new(WireSpec::uniform(0.3), SEED + 1);
    let storm_retry = RetryPolicy {
        deadline: Duration::from_secs(120),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        io_timeout: Duration::from_secs(5),
        seed: SEED,
    };
    let storm_s = submit_all(&addr, &paths, &storm_injector, &storm_retry);
    let snap = query_fit(&addr, &retry).expect("fit under storm");
    assert_bit_identical(&snap, &baseline, "storm fit vs single-process");
    request_shutdown(&addr, &retry).expect("shutdown");
    let storm_report = handle.join().expect("server thread").expect("drain");
    assert_eq!(storm_report.covered, WINDOWS as u64);
    let storm_overhead = storm_s / submit_s.max(1e-9);
    println!(
        "  30% wire faults: {storm_s:.4}s ({storm_overhead:.1}× clean), {} refusal(s) typed, \
         fit still bit-identical",
        storm_report.rejected
    );
    println!("single-process equivalence: served fit is bit-identical — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("shards", SHARDS.into()),
        ("baseline_wall_s", base_s.into()),
        ("shard_capture_wall_s", capture_s.into()),
        ("journal_bytes", journal_bytes.into()),
        ("submit_wall_s", submit_s.into()),
        ("submit_frac_of_capture", submit_frac.into()),
        ("fit_query_ms", (fit_s * 1e3).into()),
        ("fit_queries", FIT_QUERIES.into()),
        ("storm_submit_wall_s", storm_s.into()),
        ("storm_overhead_x", storm_overhead.into()),
        ("storm_rejected", storm_report.rejected.into()),
        ("storm_duplicates", storm_report.duplicates.into()),
    ]);
    record_json("BENCH_service", &snapshot);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
