//! E-T1 — Table I: aggregate network properties.
//!
//! Regenerates the paper's Table I on a synthetic packet window:
//! each aggregate computed in both summation notation (direct sparse
//! reductions) and matrix notation (`1ᵀA1`-style products), verifying
//! the two columns agree exactly.

use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_sparse::aggregates::Aggregates;

struct Row {
    property: &'static str,
    summation: u64,
    matrix: u64,
}

fn main() {
    let scenario = &palu_bench::fig3_scenarios()[0];
    let mut obs = scenario.observatory(20260706);
    let window = obs.next_window();
    let a = window.matrix();

    let summation = Aggregates::compute(a);
    let matrix = Aggregates::compute_matrix_notation(a);

    let rows = vec![
        Row {
            property: "Valid packets N_V   (Σ_i Σ_j A(i,j)      | 1'A1)",
            summation: summation.valid_packets,
            matrix: matrix.valid_packets,
        },
        Row {
            property: "Unique links        (Σ_i Σ_j |A(i,j)|_0  | 1'|A|_0 1)",
            summation: summation.unique_links,
            matrix: matrix.unique_links,
        },
        Row {
            property: "Unique sources      (Σ_i |Σ_j A(i,j)|_0  | |1'A'|_0 1)",
            summation: summation.unique_sources,
            matrix: matrix.unique_sources,
        },
        Row {
            property: "Unique destinations (Σ_j |Σ_i A(i,j)|_0  | |1'A|_0 1)",
            summation: summation.unique_destinations,
            matrix: matrix.unique_destinations,
        },
    ];

    println!("TABLE I — Aggregate network properties");
    println!("window: {} packets from '{}'", window.n_v(), scenario.name);
    println!("{}", rule(78));
    println!(
        "{:<58} {:>9} {:>9}",
        "Aggregate property", "summation", "matrix"
    );
    println!("{}", rule(78));
    let mut all_match = true;
    for r in &rows {
        println!("{:<58} {:>9} {:>9}", r.property, r.summation, r.matrix);
        all_match &= r.summation == r.matrix;
    }
    println!("{}", rule(78));
    println!(
        "notations agree: {}",
        if all_match {
            "YES (Table I verified)"
        } else {
            "NO — BUG"
        }
    );
    let snapshot = JsonValue::array(rows.iter().map(|r| {
        JsonValue::obj([
            ("property", r.property.into()),
            ("summation", r.summation.into()),
            ("matrix", r.matrix.into()),
        ])
    }));
    record_json("table1", &snapshot);
    assert!(all_match, "Table I notations disagree");
}
