//! E-DSP — federation dispatcher: lease-supervised capture throughput
//! and chaos-recovery overhead on a loopback dispatcher.
//!
//! The dispatcher (DESIGN.md §4l) claims supervision adds accounting,
//! not arithmetic: a fit assembled from lease-dispatched worker
//! captures must be bit-identical to the single-process pooled
//! distribution at any worker count, and a mid-capture worker kill
//! must cost one lease timeout — not the capture. This binary scales
//! the worker pool over a fixed shard plan, kills a worker mid-capture
//! to price deterministic re-dispatch, and records `BENCH_dispatch.json`.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_traffic::dispatch::{
    run_worker, DispatchConfig, DispatchReport, DispatchServer, Dispatcher, WorkPhase, WorkerConfig,
};
use palu_traffic::journal::JournalHeader;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement, Pipeline};
use palu_traffic::service::{query_fit, request_shutdown, Collector, RetryPolicy, ServiceConfig};
use palu_traffic::wire::FitSnapshot;
use palu_traffic::{FailurePolicy, ServiceFault, WireInjector, WireSpec};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const WINDOWS: usize = 48;
const SHARDS: u64 = 4;
const N_V: u64 = 20_000;
const SEED: u64 = 20260809;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "bench=dispatch".to_string(),
            "measurement=undirected-degree".to_string(),
        ],
    )
}

fn observatory() -> palu_traffic::Observatory {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    scenario.observatory(SEED)
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

fn assert_bit_identical(snap: &FitSnapshot, baseline: &FaultTolerantPool, what: &str) {
    assert_eq!(snap.covered, WINDOWS as u64, "{what}: coverage");
    assert_eq!(snap.pooled_windows, baseline.pooled.windows, "{what}");
    assert_eq!(snap.d_max, baseline.pooled.d_max, "{what}");
    for (i, (row, ((degree, mean), sigma))) in snap
        .rows
        .iter()
        .zip(
            baseline
                .pooled
                .mean
                .iter()
                .zip(baseline.pooled.sigma.iter()),
        )
        .enumerate()
    {
        assert_eq!(row.degree, degree, "{what}: degree bin {i}");
        assert_eq!(row.mean_bits, mean.to_bits(), "{what}: mean bin {i}");
        assert_eq!(row.sigma_bits, sigma.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Start a lingering loopback dispatcher over a fresh journal
/// directory, so the fit can be queried after the plan completes.
fn start_dispatcher(
    dir: &Path,
    tag: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<DispatchReport, ServiceFault>>,
) {
    let journal_dir = dir.join(format!("dispatcher-{tag}"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let collector = Collector::new(ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: header(),
        shards: SHARDS,
        min_coverage: 1.0,
        journal_dir,
        read_timeout: Duration::from_secs(5),
    })
    .expect("collector");
    let dispatcher = Dispatcher::new(
        collector,
        DispatchConfig {
            lease: Duration::from_millis(600),
            heartbeat: Duration::from_millis(120),
            linger: true,
            stall: None,
        },
    )
    .expect("dispatcher");
    let server = DispatchServer::bind("127.0.0.1:0", dispatcher).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Serve leases until the dispatcher reports the plan complete: the
/// worker captures each granted range into a local journal and
/// submits it through the collector path.
fn serve(addr: &str, worker: u64, dir: &Path, per_worker_threads: usize, chaos: Option<WorkPhase>) {
    let cfg = WorkerConfig {
        addr: addr.to_string(),
        worker,
        journal_dir: dir.to_path_buf(),
        expect: header(),
        retry: RetryPolicy::fast(SEED + worker),
        poll: Duration::from_millis(10),
    };
    let injector = WireInjector::new(WireSpec::none(), SEED + worker);
    let mut obs = observatory();
    let report = run_worker(
        &cfg,
        &injector,
        chaos,
        |ticket, journal, limit| {
            obs.seek(ticket.lo);
            let n = usize::try_from(limit.unwrap_or(ticket.hi - ticket.lo))
                .expect("window count fits usize");
            Pipeline::pool_observatory_durable(
                Measurement::UndirectedDegree,
                &mut obs,
                n,
                per_worker_threads,
                None,
                &FailurePolicy::strict(),
                None,
                Some(journal),
                None,
            )
            .map(|_| ())
            .map_err(palu_traffic::FederationError::Pipeline)
        },
        |_| {},
    )
    .expect("worker serves to completion");
    if chaos.is_some() {
        assert_eq!(report.killed, chaos, "chaos worker dies on schedule");
    }
}

/// One supervised run: a dispatcher, `n_workers` clean workers (plus
/// an optional chaos casualty), wall time, and the dispatch report.
fn supervised_run(
    dir: &Path,
    tag: &str,
    n_workers: u64,
    chaos: Option<WorkPhase>,
    baseline: &FaultTolerantPool,
) -> (f64, DispatchReport) {
    let (addr, handle) = start_dispatcher(dir, tag);
    let worker_dir = dir.join(format!("workers-{tag}"));
    let _ = std::fs::remove_dir_all(&worker_dir);
    std::fs::create_dir_all(&worker_dir).expect("worker journal dir");
    let per_worker_threads = (threads() / n_workers.max(1) as usize).max(1);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // The casualty goes first so its lease is live when the clean
        // workers start competing for ranges.
        if let Some(phase) = chaos {
            serve(&addr, 100, &worker_dir, per_worker_threads, Some(phase));
        }
        for worker in 0..n_workers {
            let (addr, worker_dir) = (addr.clone(), worker_dir.clone());
            scope.spawn(move || serve(&addr, worker, &worker_dir, per_worker_threads, None));
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let retry = RetryPolicy::fast(SEED);
    let snap = query_fit(&addr, &retry).expect("fit");
    assert_bit_identical(&snap, baseline, tag);
    request_shutdown(&addr, &retry).expect("shutdown");
    let report = handle.join().expect("dispatcher thread").expect("drain");
    assert_eq!(report.shards_done, SHARDS, "{tag}: plan complete");
    (wall_s, report)
}

fn run_json(tag: &str, workers: u64, wall_s: f64, report: &DispatchReport) -> JsonValue {
    JsonValue::obj([
        ("tag", tag.into()),
        ("workers", workers.into()),
        ("wall_s", wall_s.into()),
        ("leases_granted", report.leases_granted.into()),
        ("leases_expired", report.leases_expired.into()),
        ("leases_redispatched", report.leases_redispatched.into()),
        ("leases_fenced", report.leases_fenced.into()),
        ("heartbeats", report.heartbeats.into()),
    ])
}

fn main() {
    println!("E-DSP — federation dispatcher: lease-supervised capture, chaos-recovery overhead");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}, {SHARDS} shards over loopback TCP");

    let dir: PathBuf = std::env::temp_dir().join("palu-bench-dispatch");
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // 1. Single-process baseline.
    let mut obs = observatory();
    let t0 = Instant::now();
    let baseline = Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads(),
        None,
        &FailurePolicy::strict(),
        None,
        None,
        None,
    )
    .expect("baseline capture succeeds");
    let base_s = t0.elapsed().as_secs_f64();
    println!("  capture: single-process {base_s:.2}s");

    // 2. Clean supervised runs at increasing worker counts: every fit
    //    must be bit-identical to the baseline; the delta over the
    //    single-process wall time is the full cost of supervision
    //    (leases, heartbeats, submission) at that parallelism.
    let mut runs = Vec::new();
    let mut clean_2worker_s = None;
    for n_workers in [1u64, 2, 4] {
        let tag = format!("clean-{n_workers}w");
        let (wall_s, report) = supervised_run(&dir, &tag, n_workers, None, &baseline);
        assert_eq!(
            report.leases_expired, 0,
            "{tag}: no expiries on a clean run"
        );
        if n_workers == 2 {
            clean_2worker_s = Some(wall_s);
        }
        println!(
            "  {tag}: {wall_s:.2}s ({:.2}× single-process), {} leases, {} heartbeats, \
             fit bit-identical",
            wall_s / base_s.max(1e-9),
            report.leases_granted,
            report.heartbeats
        );
        runs.push(run_json(&tag, n_workers, wall_s, &report));
    }

    // 3. The chaos run: a worker is killed mid-capture with a lease
    //    outstanding; the surviving workers absorb its range via
    //    deterministic re-dispatch. The overhead over the clean run at
    //    the same worker count prices one lease timeout + recapture.
    let (chaos_s, chaos_report) = supervised_run(
        &dir,
        "chaos-midcapture",
        2,
        Some(WorkPhase::MidCapture),
        &baseline,
    );
    assert!(
        chaos_report.leases_expired >= 1,
        "chaos: the dead lease expired"
    );
    assert!(
        chaos_report.leases_redispatched >= 1,
        "chaos: the orphaned range was re-dispatched"
    );
    let clean_s = clean_2worker_s.expect("2-worker clean run recorded");
    let recovery_overhead = chaos_s / clean_s.max(1e-9);
    println!(
        "  chaos (mid-capture kill, 2 survivors): {chaos_s:.2}s ({recovery_overhead:.2}× clean), \
         {} expiry, {} re-dispatch, fit still bit-identical",
        chaos_report.leases_expired, chaos_report.leases_redispatched
    );
    runs.push(run_json("chaos-midcapture", 2, chaos_s, &chaos_report));
    println!("single-process equivalence: every supervised fit is bit-identical — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("shards", SHARDS.into()),
        ("baseline_wall_s", base_s.into()),
        ("recovery_overhead_x", recovery_overhead.into()),
        ("runs", JsonValue::Array(runs)),
    ]);
    record_json("BENCH_dispatch", &snapshot);
}
