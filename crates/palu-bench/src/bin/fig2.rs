//! E-F2 — Figure 2: traffic network topologies.
//!
//! Regenerates the paper's topology taxonomy on a PALU underlying
//! network and its observed (edge-sampled) version: unattached links,
//! supernode leaves, core leaves, densely connected core, and the
//! isolated nodes the model predicts but traffic cannot see. Observed
//! counts are compared against the Section IV analytic predictions.

use palu::analytic::ObservedPrediction;
use palu::params::PaluParams;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_graph::census::TopologyCensus;
use palu_graph::sample::ObservedNetwork;
use palu_stats::rng::{streams, SeedSequence};

fn census_json(c: &TopologyCensus) -> JsonValue {
    JsonValue::obj([
        ("n_nodes", c.n_nodes.into()),
        ("n_edges", c.n_edges.into()),
        ("isolated_nodes", c.isolated_nodes.into()),
        ("core_nodes", c.core_nodes.into()),
        ("core_edges", c.core_edges.into()),
        ("supernode_degree", c.supernode_degree.into()),
        ("supernode_leaves", c.supernode_leaves.into()),
        ("core_leaves", c.core_leaves.into()),
        ("unattached_links", c.unattached_links.into()),
        ("detached_stars", c.detached_stars.into()),
        ("nontrivial_components", c.nontrivial_components.into()),
    ])
}

fn print_census(label: &str, c: &TopologyCensus) {
    println!("{label}");
    println!("{}", rule(56));
    println!("  nodes                      {:>12}", c.n_nodes);
    println!("  edges                      {:>12}", c.n_edges);
    println!("  isolated (invisible) nodes {:>12}", c.isolated_nodes);
    println!("  densely connected core     {:>12} nodes", c.core_nodes);
    println!("  core edges                 {:>12}", c.core_edges);
    println!("  supernode degree           {:>12}", c.supernode_degree);
    println!("  supernode leaves           {:>12}", c.supernode_leaves);
    println!("  core leaves                {:>12}", c.core_leaves);
    println!("  unattached links           {:>12}", c.unattached_links);
    println!("  detached stars (≥3 nodes)  {:>12}", c.detached_stars);
    println!(
        "  nontrivial components      {:>12}",
        c.nontrivial_components
    );
    println!();
}

fn main() {
    let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.4).unwrap();
    let n = 200_000u64;
    let seq = SeedSequence::new(20260706);
    let net = params
        .generator(n)
        .unwrap()
        .generate(&mut seq.rng(streams::CORE));
    let obs = ObservedNetwork::observe(&net, params.p, &mut seq.rng(streams::SAMPLING));

    println!(
        "FIGURE 2 — Traffic network topologies (PALU, C={}, L={}, U={:.4}, λ={}, α={}, p={})",
        params.core, params.leaves, params.unattached, params.lambda, params.alpha, params.p
    );
    println!();
    let underlying = TopologyCensus::of(&net.graph);
    let observed = TopologyCensus::of(&obs.graph);
    print_census("UNDERLYING NETWORK", &underlying);
    print_census(&format!("OBSERVED NETWORK (p = {})", params.p), &observed);

    // Compare the observed unattached-link fraction with Section IV.
    let pred = ObservedPrediction::new(&params).unwrap();
    let visible = observed.n_nodes - observed.isolated_nodes;
    let measured = observed.unattached_links as f64 * 2.0 / visible as f64;
    // (×2: the census counts components, the paper's ratio counts the
    // two nodes of each link… no — the paper counts links per node.
    // Keep the component count per visible node for the comparison.)
    let measured_links_per_node = observed.unattached_links as f64 / visible as f64;
    let _ = measured;
    println!("Section IV check: unattached links / visible nodes");
    println!(
        "  predicted U·λp·e^(−λp)/V = {:.5}   measured = {:.5}",
        pred.unattached_link_fraction, measured_links_per_node
    );
    let rel = (measured_links_per_node - pred.unattached_link_fraction).abs()
        / pred.unattached_link_fraction;
    println!("  relative deviation: {:.1}%", rel * 100.0);
    assert!(rel < 0.25, "unattached-link prediction off by {rel:.2}");

    record_json(
        "fig2",
        &JsonValue::obj([
            ("underlying", census_json(&underlying)),
            ("observed", census_json(&observed)),
            ("p", params.p.into()),
            (
                "predicted_unattached_link_fraction",
                pred.unattached_link_fraction.into(),
            ),
            (
                "measured_unattached_link_fraction",
                measured_links_per_node.into(),
            ),
        ]),
    );
}
