//! E-A3 — Window-size invariance (Section III-A).
//!
//! "For a given network, the parameters λ, C, L, U, and α should be
//! the same regardless of the window size. As the window size
//! increases, the only parameter that will change is p." This binary
//! sweeps `p` against one fixed underlying network (both analytically
//! and by simulation) and reports the recovered invariants per window.

use palu::invariance::InvarianceSweep;
use palu::params::PaluParams;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;

struct Sweep {
    mode: String,
    ps: Vec<f64>,
    core: Vec<f64>,
    leaves: Vec<f64>,
    unattached: Vec<f64>,
    lambda: Vec<f64>,
    alpha: Vec<f64>,
    worst_spread: f64,
}

fn print_sweep(s: &Sweep, truth: &PaluParams) {
    println!("{} sweep", s.mode);
    println!("{}", rule(72));
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "p", "C", "L", "U", "λ", "α"
    );
    println!(
        "{:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.3} {:>9.3}   <- truth",
        "-", truth.core, truth.leaves, truth.unattached, truth.lambda, truth.alpha
    );
    for i in 0..s.ps.len() {
        println!(
            "{:>6.2} {:>9.4} {:>9.4} {:>9.4} {:>9.3} {:>9.3}",
            s.ps[i], s.core[i], s.leaves[i], s.unattached[i], s.lambda[i], s.alpha[i]
        );
    }
    println!(
        "worst relative spread across windows: {:.3}",
        s.worst_spread
    );
    println!();
}

fn main() {
    let truth = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
    let ps = [0.3f64, 0.5, 0.7, 0.9];
    // The star-side parameters are identifiable only when the observed
    // Poisson bump clears the core (λp ≳ 1.5); the simulated gate
    // sweeps inside that envelope, and the p = 0.3 row is shown
    // separately to document the graceful out-of-envelope behavior
    // (λ reported as 0, mass absorbed by leaves).
    let ps_identifiable = [0.5f64, 0.7, 0.9];

    println!("E-A3 — Window-size invariance of (C, L, U, λ, α)");
    println!();

    let analytic = InvarianceSweep::default()
        .analytic(&truth, &ps, 100_000_000, 1 << 14)
        .expect("analytic sweep succeeds");
    let simulated = InvarianceSweep::default()
        .simulated(&truth, &ps_identifiable, 300_000, 20260706)
        .expect("simulated sweep succeeds");
    let out_of_envelope = InvarianceSweep::default()
        .simulated(&truth, &[0.3], 300_000, 20260706)
        .expect("out-of-envelope row succeeds");

    let to_out = |mode: &str, rep: &palu::invariance::InvarianceReport| Sweep {
        mode: mode.to_string(),
        ps: rep.rows.iter().map(|r| r.p).collect(),
        core: rep.rows.iter().map(|r| r.recovered.core).collect(),
        leaves: rep.rows.iter().map(|r| r.recovered.leaves).collect(),
        unattached: rep.rows.iter().map(|r| r.recovered.unattached).collect(),
        lambda: rep.rows.iter().map(|r| r.recovered.lambda).collect(),
        alpha: rep.rows.iter().map(|r| r.recovered.alpha).collect(),
        worst_spread: rep.worst_spread(),
    };
    let a = to_out("ANALYTIC (noise-free)", &analytic);
    let s = to_out(
        "SIMULATED, identifiable windows λp ≥ 1.5 (one network, fresh sampling per window)",
        &simulated,
    );
    print_sweep(&a, &truth);
    print_sweep(&s, &truth);
    let oe = &out_of_envelope.rows[0].recovered;
    println!(
        "out-of-envelope row (p = 0.3, λp = 0.9): λ reported {:.2}, U {:.3} — the bump is \
         buried under the core and the estimator says so instead of guessing.",
        oe.lambda, oe.unattached
    );
    println!();

    assert!(
        a.worst_spread < 0.3,
        "analytic invariance spread {} too large",
        a.worst_spread
    );
    assert!(
        s.worst_spread < 0.45,
        "simulated invariance spread {} too large",
        s.worst_spread
    );
    assert!(
        oe.unattached < 0.5,
        "out-of-envelope U {} absurd",
        oe.unattached
    );
    println!(
        "invariance gates passed (analytic < 0.3, simulated < 0.45 relative spread in-envelope)"
    );
    let sweep_json = |s: &Sweep| {
        JsonValue::obj([
            ("mode", s.mode.as_str().into()),
            ("ps", s.ps.as_slice().into()),
            ("core", s.core.as_slice().into()),
            ("leaves", s.leaves.as_slice().into()),
            ("unattached", s.unattached.as_slice().into()),
            ("lambda", s.lambda.as_slice().into()),
            ("alpha", s.alpha.as_slice().into()),
            ("worst_spread", s.worst_spread.into()),
        ])
    };
    record_json(
        "invariance",
        &JsonValue::Array(vec![sweep_json(&a), sweep_json(&s)]),
    );
}
