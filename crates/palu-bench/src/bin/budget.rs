//! E-BUD — resource-budget governor: overhead, estimate accuracy, and
//! the degradation curve.
//!
//! The governor (DESIGN.md §4g) must earn its keep three ways: an
//! ample budget may not meaningfully slow a capture down (the ledger
//! is touched only at window boundaries), the admission estimate must
//! upper-bound the actually-accounted peak at every thread count (or
//! admission would pass captures that later hit the hard watermark),
//! and shrinking budgets must trade throughput for memory through the
//! rung ladder while the pooled output stays **bit-identical**. This
//! binary measures all three on a 48-window workload and records
//! `BENCH_budget.json`.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_traffic::budget::{BudgetFault, CostModel, Governor, ResourceBudget};
use palu_traffic::metrics::Metrics;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement, Pipeline};
use palu_traffic::{FailurePolicy, MetricsSnapshot, PipelineError};
use std::time::Instant;

const WINDOWS: usize = 48;
const N_V: u64 = 20_000;
const SEED: u64 = 20260807;

fn run(
    threads: usize,
    governor: Option<&Governor<'_>>,
) -> Result<(FaultTolerantPool, f64, MetricsSnapshot), PipelineError> {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    let mut obs = scenario.observatory(SEED);
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let ft = Pipeline::pool_observatory_governed(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        Some(&metrics),
        &FailurePolicy::strict(),
        None,
        None,
        None,
        governor,
    )?;
    Ok((ft, t0.elapsed().as_secs_f64(), metrics.snapshot()))
}

fn cost_model(threads: usize) -> CostModel {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    let obs = scenario.observatory(SEED);
    CostModel {
        n_v: N_V,
        n_nodes: obs.underlying().n_nodes() as u64,
        windows: WINDOWS as u64,
        threads: threads as u64,
    }
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}");
    for (i, ((ga, wa), (gs, ws))) in a
        .pooled
        .mean
        .iter()
        .zip(b.pooled.mean.iter())
        .zip(a.pooled.sigma.iter().zip(b.pooled.sigma.iter()))
        .enumerate()
    {
        assert_eq!(ga.1.to_bits(), wa.1.to_bits(), "{what}: mean bin {i}");
        assert_eq!(gs.to_bits(), ws.to_bits(), "{what}: sigma bin {i}");
    }
}

fn main() {
    println!("E-BUD — resource-budget governor: overhead, estimate accuracy, degradation curve");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}");
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    // 1. Baseline: the same capture with no governor at all.
    let (baseline, base_s, _) = run(threads, None).expect("baseline capture");

    // 2. Ample budget: the ledger runs but never bites.
    let ample = ResourceBudget::with_limit(1 << 40);
    let gov = Governor {
        budget: &ample,
        strict_admission: false,
    };
    let (governed, gov_s, _) = run(threads, Some(&gov)).expect("governed capture");
    assert_bit_identical(&governed, &baseline, "ample budget vs baseline");
    assert!(
        governed.report.degradations.is_empty(),
        "ample must not degrade"
    );
    let overhead = gov_s / base_s.max(1e-9) - 1.0;
    println!(
        "  governed capture (ample): wall {gov_s:.2}s vs {base_s:.2}s baseline \
         ({:+.1}% overhead)",
        overhead * 100.0
    );

    // 3. Estimate vs actual peak across thread counts: the admission
    // estimate must upper-bound what the ledger actually records.
    let mut sweep = Vec::new();
    let mut peak8 = 0u64;
    for t in [1usize, 2, 4, 8] {
        let budget = ResourceBudget::with_limit(1 << 40);
        let g = Governor {
            budget: &budget,
            strict_admission: false,
        };
        let (pool, _, snap) = run(t, Some(&g)).expect("sweep capture");
        assert_bit_identical(&pool, &baseline, "sweep vs baseline");
        let estimate = snap.admission_estimate_bytes;
        let peak = snap.peak_accounted_bytes;
        assert!(
            estimate >= peak,
            "estimate {estimate} < actual peak {peak} at {t} threads"
        );
        let slack = estimate as f64 / peak.max(1) as f64;
        if t == 8 {
            peak8 = peak;
        }
        println!("  threads {t}: estimate {estimate} B ≥ peak {peak} B ({slack:.2}x slack)");
        sweep.push(JsonValue::obj([
            ("threads", (t as u64).into()),
            ("estimate_bytes", estimate.into()),
            ("peak_accounted_bytes", peak.into()),
            ("slack", slack.into()),
        ]));
    }

    // 4. Degradation curve: shrink the budget from the 8-thread peak
    // toward the degraded floor; each rung trades throughput for
    // memory, the pooled result never changes. Pinned to 8 workers so
    // the curve is comparable across machines.
    const CURVE_THREADS: usize = 8;
    let model = cost_model(CURVE_THREADS);
    let floor = model.floor_bytes().saturating_add(model.window_bytes());
    let peak = peak8.max(floor);
    let mut curve = Vec::new();
    for (label, limit) in [
        ("peak", peak),
        ("3/4 peak", peak * 3 / 4),
        ("1/2 peak", peak / 2),
        ("floor+1w", floor),
    ] {
        let limit = limit.max(floor);
        let budget = ResourceBudget::with_limit(limit);
        let g = Governor {
            budget: &budget,
            strict_admission: false,
        };
        let (pool, wall, snap) = run(CURVE_THREADS, Some(&g)).expect("degraded capture");
        assert_bit_identical(&pool, &baseline, "degraded vs baseline");
        assert!(
            snap.peak_accounted_bytes <= limit,
            "ledger peak {} exceeds the {limit} B limit",
            snap.peak_accounted_bytes
        );
        let rungs: Vec<&str> = pool
            .report
            .degradations
            .iter()
            .map(|d| d.rung.name())
            .collect();
        println!(
            "  limit {limit} B ({label}): wall {wall:.2}s, peak {} B, rungs {:?}",
            snap.peak_accounted_bytes, rungs
        );
        curve.push(JsonValue::obj([
            ("label", JsonValue::Str(label.to_string())),
            ("limit_bytes", limit.into()),
            ("wall_s", wall.into()),
            ("peak_accounted_bytes", snap.peak_accounted_bytes.into()),
            (
                "degradations",
                (pool.report.degradations.len() as u64).into(),
            ),
            (
                "rungs",
                JsonValue::Array(
                    rungs
                        .iter()
                        .map(|r| JsonValue::Str((*r).to_string()))
                        .collect(),
                ),
            ),
        ]));
    }

    // 5. Admission: a budget below the degraded floor is refused with
    // a typed fault before any window is synthesized.
    let impossible = ResourceBudget::with_limit(model.floor_bytes() / 2);
    let g = Governor {
        budget: &impossible,
        strict_admission: false,
    };
    match run(threads, Some(&g)) {
        Err(PipelineError::Budget(BudgetFault::AdmissionRefused { floor, limit, .. })) => {
            println!("  admission: floor {floor} B refused under {limit} B limit — OK");
        }
        other => panic!("impossible budget must be refused, got {other:?}"),
    }
    println!("bounded-memory capture: pooled distribution is bit-identical at every rung — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("baseline_wall_s", base_s.into()),
        ("governed_wall_s", gov_s.into()),
        ("governor_overhead_frac", overhead.into()),
        ("estimate_sweep", JsonValue::Array(sweep)),
        ("degradation_curve", JsonValue::Array(curve)),
        ("floor_bytes", model.floor_bytes().into()),
    ]);
    record_json("BENCH_budget", &snapshot);
}
