//! E-JRNL — durable capture journal: overhead, replay speedup, and
//! crash-equivalence.
//!
//! The write-ahead journal (DESIGN.md §4f) must earn its keep twice
//! over: appending every completed window may not meaningfully slow a
//! capture down, and resuming from a torn journal must (a) replay the
//! completed prefix instead of recomputing it and (b) reproduce the
//! uninterrupted pooled result **bit-identically**. This binary
//! measures all three on a 48-window workload, simulating the crash by
//! chopping the journal to 2/3 of its length (mid-record, so torn-tail
//! handling is exercised too), and records `BENCH_journal.json`.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_traffic::journal::{Journal, JournalHeader};
use palu_traffic::metrics::Metrics;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement, Pipeline};
use palu_traffic::{FailurePolicy, MetricsSnapshot, Recovery};
use std::time::Instant;

const WINDOWS: usize = 48;
const N_V: u64 = 20_000;
const SEED: u64 = 20260807;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "bench=journal".to_string(),
            "measurement=undirected-degree".to_string(),
        ],
    )
}

fn run(
    journal: Option<&Journal>,
    recovery: Option<&Recovery>,
) -> (FaultTolerantPool, f64, MetricsSnapshot) {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    let mut obs = scenario.observatory(SEED);
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let ft = Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        std::thread::available_parallelism().map_or(4, |p| p.get()),
        Some(&metrics),
        &FailurePolicy::strict(),
        None,
        journal,
        recovery,
    )
    .expect("bench capture succeeds");
    (ft, t0.elapsed().as_secs_f64(), metrics.snapshot())
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}");
    for (i, ((ga, wa), (gs, ws))) in a
        .pooled
        .mean
        .iter()
        .zip(b.pooled.mean.iter())
        .zip(a.pooled.sigma.iter().zip(b.pooled.sigma.iter()))
        .enumerate()
    {
        assert_eq!(ga.1.to_bits(), wa.1.to_bits(), "{what}: mean bin {i}");
        assert_eq!(gs.to_bits(), ws.to_bits(), "{what}: sigma bin {i}");
    }
}

fn main() {
    println!("E-JRNL — durable capture journal: overhead, replay speedup, crash-equivalence");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}");

    let path = std::env::temp_dir().join("palu-bench-journal.journal");
    let _ = std::fs::remove_file(&path);

    // 1. Baseline: the same capture with no journal at all.
    let (baseline, base_s, _) = run(None, None);

    // 2. Durable capture: journal every completed window.
    let journal = Journal::create(&path, header()).expect("journal create");
    let (durable, durable_s, _) = run(Some(&journal), None);
    let journal_bytes = journal.appended_bytes();
    drop(journal);
    assert_bit_identical(&durable, &baseline, "durable vs baseline");
    let overhead = durable_s / base_s.max(1e-9) - 1.0;
    println!(
        "  durable capture: wall {durable_s:.2}s vs {base_s:.2}s baseline \
         ({:+.1}% overhead, {journal_bytes} journal bytes)",
        overhead * 100.0
    );

    // 3. Crash at ~2/3: chop the journal mid-record and resume.
    let bytes = std::fs::read(&path).expect("journal readable");
    let cut = bytes.len() * 2 / 3;
    std::fs::write(&path, &bytes[..cut]).expect("journal truncatable");
    let (resumed_journal, recovery) = Journal::resume(&path, header()).expect("journal resume");
    let replayed = recovery.windows.len();
    let torn = recovery.torn_records_dropped;
    let (resumed, resume_s, snap) = run(Some(&resumed_journal), Some(&recovery));
    drop(resumed_journal);
    assert_bit_identical(&resumed, &baseline, "resumed vs baseline");
    assert_eq!(snap.windows_recovered as usize, replayed);
    assert!(
        replayed > 0 && replayed < WINDOWS,
        "cut must land mid-capture"
    );
    assert_eq!(torn, 1, "a mid-record cut leaves exactly one torn record");
    let speedup = durable_s / resume_s.max(1e-9);
    println!(
        "  resume after kill at 2/3: replayed {replayed}/{WINDOWS} windows \
         ({} bytes, {torn} torn record dropped), wall {resume_s:.2}s → {speedup:.2}x \
         vs full durable capture",
        snap.journal_bytes_replayed
    );
    println!("crash-equivalence: resumed pooled distribution is bit-identical — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("baseline_wall_s", base_s.into()),
        ("durable_wall_s", durable_s.into()),
        ("journal_overhead_frac", overhead.into()),
        ("journal_bytes", journal_bytes.into()),
        ("resume_wall_s", resume_s.into()),
        ("resume_speedup", speedup.into()),
        ("windows_recovered", (replayed as u64).into()),
        ("bytes_replayed", snap.journal_bytes_replayed.into()),
        ("torn_records_dropped", torn.into()),
    ]);
    record_json("BENCH_journal", &snapshot);
    let _ = std::fs::remove_file(&path);
}
