//! E-F3 — Figure 3: measured distributions and model fits.
//!
//! For each of six synthetic observatories (locations/dates/window
//! sizes), pools many consecutive windows into `D(d_i) ± σ(d_i)` and
//! fits the modified Zipf–Mandelbrot model — the paper's "best-fit
//! modified Zipf-Mandelbrot models with parameters α and δ". Panel 2
//! is botnet-heavy traffic where the ZM fit visibly degrades (the
//! paper's upper-right panel); the same panel fit with the PALU curve
//! (Equation 5) shows the hybrid model explains the deviation.

use palu::zm_fit::{FitObjective, ZmFitter};
use palu_bench::{fmt_p, record_json, rule, Scenario};
use palu_cli::json::JsonValue;
use palu_traffic::pipeline::{Measurement, Pipeline};

struct Panel {
    name: String,
    windows: u64,
    n_v: u64,
    effective_p: f64,
    d_max: u64,
    series: Vec<(u64, f64, f64)>, // (d_i, D, sigma)
    zm_alpha: f64,
    zm_delta: f64,
    zm_residual: f64,
    palu_residual: Option<f64>,
    botnet_heavy: bool,
}

fn run_panel(scenario: &Scenario, seed: u64) -> Panel {
    let mut obs = scenario.observatory(seed);
    let effective_p = obs.effective_p();
    let windows = obs.windows_parallel(scenario.windows);
    let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);

    let fit = ZmFitter::with_objective(FitObjective::LeastSquares)
        .fit(&pooled.mean, None)
        .expect("panel has data");
    let zm_residual = fit.objective.sqrt();

    // For the botnet panel, also fit the full PALU model: run the
    // Section IV-B estimation pipeline on the merged multi-window
    // degree histogram, rebuild the simplified degree law
    // (Equations 2–3), and compare its pooled form to the
    // measurement. This is the paper's "PALU(d) model has the
    // potential to explain some observations that deviate from the
    // Zipf-Mandelbrot distribution".
    let palu_residual = if scenario.botnet_heavy {
        let mut merged = palu_stats::histogram::DegreeHistogram::new();
        for w in &windows {
            merged.merge(&Measurement::UndirectedDegree.histogram(w));
        }
        let est = palu::estimate::PaluEstimator::default()
            .estimate(&merged)
            .expect("botnet panel estimable");
        let s = est.simplified;
        let d_max = fit.d_max;
        let raw = |d: u64| -> f64 {
            if d == 1 {
                s.degree_one_fraction()
            } else {
                s.degree_fraction_poisson(d)
            }
        };
        let z: f64 = (1..=d_max).map(raw).sum();
        let model_pooled =
            palu_stats::logbin::DifferentialCumulative::from_pmf(|d| raw(d) / z, d_max);
        Some(model_pooled.l2_distance_sq(&pooled.mean).sqrt())
    } else {
        None
    };

    Panel {
        name: scenario.name.to_string(),
        windows: pooled.windows,
        n_v: scenario.n_v,
        effective_p,
        d_max: pooled.d_max,
        series: pooled
            .mean
            .iter()
            .zip(pooled.sigma.iter())
            .map(|((d_i, v), &s)| (d_i, v, s))
            .collect(),
        zm_alpha: fit.alpha,
        zm_delta: fit.delta,
        zm_residual,
        palu_residual,
        botnet_heavy: scenario.botnet_heavy,
    }
}

fn main() {
    println!("FIGURE 3 — Measured distributions and model fits");
    println!("(undirected degree D(d_i) ± σ over consecutive windows; best-fit modified ZM)");
    println!();

    let scenarios = palu_bench::fig3_scenarios();
    let mut panels = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let panel = run_panel(s, 20260706 + i as u64);
        println!("panel {}: {}", i + 1, panel.name);
        println!(
            "  {} windows × N_V = {}  (effective p ≈ {:.3}, d_max = {})",
            panel.windows, panel.n_v, panel.effective_p, panel.d_max
        );
        println!("  {}", rule(48));
        println!("  {:>8} {:>12} {:>12}", "d_i", "D(d_i)", "σ(d_i)");
        for &(d_i, v, s) in panel.series.iter().filter(|&&(_, v, _)| v > 0.0) {
            println!("  {:>8} {:>12} {:>12}", d_i, fmt_p(v), fmt_p(s));
        }
        println!(
            "  best-fit ZM: α = {:.3}, δ = {:.3}   (L2 residual {:.4})",
            panel.zm_alpha, panel.zm_delta, panel.zm_residual
        );
        // Terminal rendition of the panel: measured points vs fitted
        // model, log-log like the paper's figure.
        let measured = palu_stats::logbin::DifferentialCumulative::from_values(
            panel.series.iter().map(|&(_, v, _)| v).collect(),
        );
        if let Ok(model) =
            palu::zm::ZipfMandelbrot::new(panel.zm_alpha, panel.zm_delta, panel.d_max.max(1))
        {
            print!(
                "{}",
                palu_bench::ascii_loglog(&[("measured", &measured), ("ZM fit", &model.pooled())])
            );
        }
        if let Some(pr) = panel.palu_residual {
            println!(
                "  botnet-heavy panel: full PALU model residual {:.4} vs ZM {:.4}  ({}x better)",
                pr,
                panel.zm_residual,
                (panel.zm_residual / pr.max(1e-12)) as u32
            );
        }
        println!();
        panels.push(panel);
    }

    // Paper-shape assertions:
    // (1) Every clean panel's ZM fit is tight.
    for p in panels.iter().filter(|p| !p.botnet_heavy) {
        assert!(
            p.zm_residual < 0.05,
            "{}: ZM residual {} too large for a clean panel",
            p.name,
            p.zm_residual
        );
    }
    // (2) The botnet panel is the worst ZM fit of the set…
    let botnet = panels.iter().find(|p| p.botnet_heavy).unwrap();
    let worst_clean = panels
        .iter()
        .filter(|p| !p.botnet_heavy)
        .map(|p| p.zm_residual)
        .fold(0.0f64, f64::max);
    assert!(
        botnet.zm_residual > worst_clean,
        "botnet panel should be the hardest for ZM ({} vs {worst_clean})",
        botnet.zm_residual
    );
    // (3) …and the PALU curve does better there.
    let palu_res = botnet.palu_residual.unwrap();
    assert!(
        palu_res < botnet.zm_residual,
        "PALU Eq.5 ({palu_res}) should beat ZM ({}) on botnet traffic",
        botnet.zm_residual
    );
    println!("shape checks: clean panels fit ZM tightly; botnet panel deviates and PALU explains it — OK");
    let snapshot = JsonValue::array(panels.iter().map(|p| {
        JsonValue::obj([
            ("name", p.name.as_str().into()),
            ("windows", p.windows.into()),
            ("n_v", p.n_v.into()),
            ("effective_p", p.effective_p.into()),
            ("d_max", p.d_max.into()),
            ("series", JsonValue::array(p.series.iter().copied())),
            ("zm_alpha", p.zm_alpha.into()),
            ("zm_delta", p.zm_delta.into()),
            ("zm_residual", p.zm_residual.into()),
            ("palu_residual", p.palu_residual.into()),
            ("botnet_heavy", p.botnet_heavy.into()),
        ])
    }));
    record_json("fig3", &snapshot);
}
