//! E-PERF — pipeline throughput at paper scale.
//!
//! The paper's methodology runs "over a wide range of windows from
//! N_V = 100,000 to N_V = 100,000,000". This experiment demonstrates
//! the substrate holds up at the 10⁷-packet scale on one machine:
//! serial vs thread-sharded window assembly (design-choice #4),
//! Table-I aggregation, and the five Figure-1 quantities, with
//! throughput in packets/second and bit-identical results across
//! strategies.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_sparse::aggregates::Aggregates;
use palu_sparse::parallel::{build_csr_parallel, default_threads, quantities_parallel};
use palu_sparse::quantities::QuantityHistograms;
use std::time::Instant;

fn main() {
    let n = 10_000_000usize;
    println!("E-PERF — window pipeline at N_V = {n} packets");

    // Synthesize a heavy-tailed packet stream cheaply (zeta-ish source
    // popularity via the multiplicative hash trick).
    let t0 = Instant::now();
    let mut x = 0x9E3779B97F4A7C15u64;
    let packets: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Skew ids: low ids vastly more popular (supernode-ish).
            let a = ((x >> 33) as f64 / 2f64.powi(31)).powf(3.0);
            let b = ((x & 0xFFFF_FFFF) as f64 / 2f64.powi(32)).powf(3.0);
            ((a * 500_000.0) as u32, (b * 500_000.0) as u32)
        })
        .collect();
    println!("  synthesized in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let serial = build_csr_parallel(&packets, 1);
    let serial_build_s = t0.elapsed().as_secs_f64();
    println!(
        "  serial build:    {serial_build_s:.2}s ({:.1} Mpkt/s)",
        n as f64 / serial_build_s / 1e6
    );

    let threads = default_threads();
    let t0 = Instant::now();
    let parallel = build_csr_parallel(&packets, threads);
    let parallel_build_s = t0.elapsed().as_secs_f64();
    if threads > 1 {
        println!(
            "  parallel build:  {parallel_build_s:.2}s on {threads} threads ({:.1} Mpkt/s, {:.2}x)",
            n as f64 / parallel_build_s / 1e6,
            serial_build_s / parallel_build_s
        );
    } else {
        println!(
            "  parallel build:  {parallel_build_s:.2}s — single-core host, sharded path \
             degenerates to serial (timing delta is cache warmth, not speedup)"
        );
    }
    assert_eq!(serial, parallel, "strategies must agree bit-for-bit");

    let t0 = Instant::now();
    let agg = Aggregates::compute(&parallel);
    let aggregate_s = t0.elapsed().as_secs_f64();
    println!(
        "  Table-I aggregates in {aggregate_s:.3}s: N_V = {}, links = {}, sources = {}, dests = {}",
        agg.valid_packets, agg.unique_links, agg.unique_sources, agg.unique_destinations
    );
    assert_eq!(agg.valid_packets, n as u64);

    let t0 = Instant::now();
    let qs = QuantityHistograms::compute(&parallel);
    let quantities_serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let qp = quantities_parallel(&parallel);
    let quantities_parallel_s = t0.elapsed().as_secs_f64();
    assert_eq!(qs.link_packets, qp.link_packets);
    println!(
        "  five quantities: serial {quantities_serial_s:.3}s, parallel {quantities_parallel_s:.3}s"
    );
    println!(
        "  source-packet d_max = {} (supernode), link-packet d_max = {}",
        qs.source_packets.d_max().unwrap_or(0),
        qs.link_packets.d_max().unwrap_or(0)
    );

    record_json(
        "scale",
        &JsonValue::obj([
            ("n_packets", n.into()),
            ("serial_build_s", serial_build_s.into()),
            ("parallel_build_s", parallel_build_s.into()),
            ("parallel_threads", threads.into()),
            ("speedup", (serial_build_s / parallel_build_s).into()),
            ("aggregate_s", aggregate_s.into()),
            ("quantities_serial_s", quantities_serial_s.into()),
            ("quantities_parallel_s", quantities_parallel_s.into()),
            ("unique_links", agg.unique_links.into()),
        ]),
    );
}
