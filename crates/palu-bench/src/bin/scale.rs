//! E-PERF — pipeline throughput at paper scale.
//!
//! The paper's methodology runs "over a wide range of windows from
//! N_V = 100,000 to N_V = 100,000,000". This experiment demonstrates
//! the substrate holds up at the 10⁷-packet scale on one machine:
//! serial vs thread-sharded window assembly (design-choice #4),
//! Table-I aggregation, and the five Figure-1 quantities, with
//! throughput in packets/second and bit-identical results across
//! strategies.

use palu_bench::record_json;
use palu_cli::commands::metrics_json;
use palu_cli::json::JsonValue;
use palu_sparse::aggregates::Aggregates;
use palu_sparse::parallel::{build_csr_parallel, default_threads, quantities_parallel};
use palu_sparse::quantities::QuantityHistograms;
use palu_traffic::metrics::Metrics;
use palu_traffic::pipeline::{Measurement, Pipeline, PooledDistribution};
use palu_traffic::MetricsSnapshot;
use std::time::Instant;

/// Run the full multi-window pipeline (synthesize → window → histogram
/// → bin → merge) over `windows` consecutive windows with the given
/// thread count, returning the pooled result plus wall time and the
/// per-stage metrics snapshot.
fn run_pipeline(windows: usize, threads: usize) -> (PooledDistribution, f64, MetricsSnapshot) {
    // A fixed mid-size scenario (first Figure-3 panel, shrunk N_V so
    // the serial baseline stays cheap) re-seeded identically per run:
    // the serial and sharded paths see the same window indices and
    // must agree bit-for-bit.
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = 20_000;
    scenario.windows = windows;
    let mut obs = scenario.observatory(20260807);
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let pooled = Pipeline::pool_observatory_parallel(
        Measurement::UndirectedDegree,
        &mut obs,
        windows,
        threads,
        Some(&metrics),
    );
    (pooled, t0.elapsed().as_secs_f64(), metrics.snapshot())
}

fn main() {
    let n = 10_000_000usize;
    println!("E-PERF — window pipeline at N_V = {n} packets");

    // Synthesize a heavy-tailed packet stream cheaply (zeta-ish source
    // popularity via the multiplicative hash trick).
    let t0 = Instant::now();
    let mut x = 0x9E3779B97F4A7C15u64;
    let packets: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Skew ids: low ids vastly more popular (supernode-ish).
            let a = ((x >> 33) as f64 / 2f64.powi(31)).powf(3.0);
            let b = ((x & 0xFFFF_FFFF) as f64 / 2f64.powi(32)).powf(3.0);
            ((a * 500_000.0) as u32, (b * 500_000.0) as u32)
        })
        .collect();
    println!("  synthesized in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let serial = build_csr_parallel(&packets, 1);
    let serial_build_s = t0.elapsed().as_secs_f64();
    println!(
        "  serial build:    {serial_build_s:.2}s ({:.1} Mpkt/s)",
        n as f64 / serial_build_s / 1e6
    );

    let threads = default_threads();
    let t0 = Instant::now();
    let parallel = build_csr_parallel(&packets, threads);
    let parallel_build_s = t0.elapsed().as_secs_f64();
    if threads > 1 {
        println!(
            "  parallel build:  {parallel_build_s:.2}s on {threads} threads ({:.1} Mpkt/s, {:.2}x)",
            n as f64 / parallel_build_s / 1e6,
            serial_build_s / parallel_build_s
        );
    } else {
        println!(
            "  parallel build:  {parallel_build_s:.2}s — single-core host, sharded path \
             degenerates to serial (timing delta is cache warmth, not speedup)"
        );
    }
    assert_eq!(serial, parallel, "strategies must agree bit-for-bit");

    let t0 = Instant::now();
    let agg = Aggregates::compute(&parallel);
    let aggregate_s = t0.elapsed().as_secs_f64();
    println!(
        "  Table-I aggregates in {aggregate_s:.3}s: N_V = {}, links = {}, sources = {}, dests = {}",
        agg.valid_packets, agg.unique_links, agg.unique_sources, agg.unique_destinations
    );
    assert_eq!(agg.valid_packets, n as u64);

    let t0 = Instant::now();
    let qs = QuantityHistograms::compute(&parallel);
    let quantities_serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let qp = quantities_parallel(&parallel);
    let quantities_parallel_s = t0.elapsed().as_secs_f64();
    assert_eq!(qs.link_packets, qp.link_packets);
    println!(
        "  five quantities: serial {quantities_serial_s:.3}s, parallel {quantities_parallel_s:.3}s"
    );
    println!(
        "  source-packet d_max = {} (supernode), link-packet d_max = {}",
        qs.source_packets.d_max().unwrap_or(0),
        qs.link_packets.d_max().unwrap_or(0)
    );

    // Multi-window measurement pipeline: serial vs sharded end-to-end
    // (synthesize → window → histogram → bin → window-ordered merge),
    // with per-stage wall-times from the metrics instrumentation. The
    // speedup here is measured from the snapshot, not asserted.
    let pipeline_windows = 64usize;
    let pipeline_threads = default_threads().max(2);
    println!("  multi-window pipeline: {pipeline_windows} windows × N_V = 20000");
    let (pooled_serial, pipeline_serial_s, _) = run_pipeline(pipeline_windows, 1);
    let (pooled_parallel, pipeline_parallel_s, pipeline_snap) =
        run_pipeline(pipeline_windows, pipeline_threads);
    assert_eq!(
        pooled_serial.mean, pooled_parallel.mean,
        "parallel pipeline must be bit-identical to serial"
    );
    assert_eq!(pooled_serial.sigma, pooled_parallel.sigma);
    assert_eq!(pooled_serial.d_max, pooled_parallel.d_max);
    let pipeline_speedup = pipeline_serial_s / pipeline_parallel_s.max(1e-9);
    println!(
        "    serial {pipeline_serial_s:.2}s, {} threads {pipeline_parallel_s:.2}s → measured speedup {pipeline_speedup:.2}x (bit-identical)",
        pipeline_snap.threads
    );
    for (name, ns) in pipeline_snap.stages() {
        println!("    stage {name:<10} {:.3}s", ns as f64 / 1e9);
    }

    record_json(
        "scale",
        &JsonValue::obj([
            ("n_packets", n.into()),
            ("serial_build_s", serial_build_s.into()),
            ("parallel_build_s", parallel_build_s.into()),
            ("parallel_threads", threads.into()),
            ("speedup", (serial_build_s / parallel_build_s).into()),
            ("aggregate_s", aggregate_s.into()),
            ("quantities_serial_s", quantities_serial_s.into()),
            ("quantities_parallel_s", quantities_parallel_s.into()),
            ("unique_links", agg.unique_links.into()),
            ("pipeline_windows", pipeline_windows.into()),
            ("pipeline_serial_s", pipeline_serial_s.into()),
            ("pipeline_parallel_s", pipeline_parallel_s.into()),
            ("pipeline_speedup", pipeline_speedup.into()),
            ("pipeline_metrics", metrics_json(&pipeline_snap)),
        ]),
    );
}
