//! E-PIPE — parallel pipeline determinism, throughput, and scaling.
//!
//! The sharded multi-window pipeline's hard contract: for any thread
//! count, `Pipeline::pool_observatory_parallel` produces a pooled
//! `D(d_i) ± σ(d_i)` **bit-identical** to the serial fold. This binary
//! checks that contract at 1, 2, and 8 threads on a 64-window workload
//! and records `BENCH_pipeline.json` with the per-stage wall-times,
//! packets/sec throughput, and speedups, so scaling is measured rather
//! than asserted.
//!
//! With `--gate` the binary additionally enforces the CI scaling
//! floor: the 8-thread speedup must reach
//! `0.75 × min(threads, effective_cores)`. The floor is core-aware
//! because speedup is physically bounded by the cores actually
//! present — on an 8-core box the gate demands 6×, on a single-core
//! CI runner it only demands that parallel dispatch is not
//! pathologically slower than serial (the allocation-bound regression
//! this gate exists to catch showed 0.77× at 8 threads).

use palu_bench::record_json;
use palu_cli::commands::metrics_json;
use palu_cli::json::JsonValue;
use palu_traffic::metrics::Metrics;
use palu_traffic::pipeline::{Measurement, Pipeline, PooledDistribution};
use palu_traffic::MetricsSnapshot;
use std::time::Instant;

const WINDOWS: usize = 64;
const N_V: u64 = 20_000;
const SEED: u64 = 20260807;
/// Required parallel efficiency at the gated thread count: speedup
/// must reach this fraction of the ideal `min(threads, cores)`.
const GATE_EFFICIENCY: f64 = 0.75;
/// The thread count the `--gate` mode enforces.
const GATE_THREADS: usize = 8;

/// Cores the scheduler will actually give us — the physical ceiling
/// on any speedup this process can observe.
fn effective_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The scaling floor for a run at `threads` on `cores` cores.
fn gate_threshold(threads: usize, cores: usize) -> f64 {
    GATE_EFFICIENCY * threads.min(cores) as f64
}

fn run(threads: usize) -> (PooledDistribution, f64, MetricsSnapshot) {
    // Identical scenario + seed per run: every thread count must see
    // the same per-window RNG streams and hence the same windows.
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    let mut obs = scenario.observatory(SEED);
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let pooled = Pipeline::pool_observatory_parallel(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        Some(&metrics),
    );
    (pooled, t0.elapsed().as_secs_f64(), metrics.snapshot())
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let cores = effective_cores();
    println!("E-PIPE — sharded multi-window pipeline: determinism + scaling");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}, effective cores: {cores}");

    let (reference, serial_s, _) = run(1);
    let mut serial_best = serial_s;
    let mut runs = Vec::new();
    for threads in [1usize, 2, GATE_THREADS] {
        let (pooled, wall_s, snap) = run(threads);
        // Bit-identity: every pooled mean/σ value, the window count,
        // and d_max must match the serial reference exactly.
        assert_eq!(pooled.windows, reference.windows, "threads = {threads}");
        assert_eq!(pooled.d_max, reference.d_max, "threads = {threads}");
        for (i, ((got, want), (gs, ws))) in pooled
            .mean
            .iter()
            .zip(reference.mean.iter())
            .zip(pooled.sigma.iter().zip(reference.sigma.iter()))
            .enumerate()
        {
            assert_eq!(
                got.1.to_bits(),
                want.1.to_bits(),
                "mean bin {i} differs at {threads} threads"
            );
            assert_eq!(
                gs.to_bits(),
                ws.to_bits(),
                "sigma bin {i} differs at {threads} threads"
            );
        }
        if threads == 1 {
            // Two serial measurements are available (the reference and
            // this run); gate against the faster one so scheduler
            // noise in a single sample cannot fail an honest build.
            serial_best = serial_best.min(wall_s);
        }
        let stage_s = snap.total_ns() as f64 / 1e9;
        println!(
            "  threads = {threads}: bit-identical, wall {wall_s:.2}s, stage time {stage_s:.2}s, \
             {:.2}M packets/s, speedup vs serial {:.2}x",
            snap.packets_per_sec() / 1e6,
            serial_s / wall_s.max(1e-9)
        );
        runs.push((threads, wall_s, snap));
    }
    println!("determinism: pooled distribution is thread-count invariant — OK");

    let mut gate_wall = runs
        .iter()
        .filter(|&&(threads, _, _)| threads == GATE_THREADS)
        .map(|&(_, wall_s, _)| wall_s)
        .fold(f64::INFINITY, f64::min);
    if gate {
        // One more sample at the gated count, best-of-two: a single
        // preemption on a busy runner must not fail an honest build.
        let (_, wall_s, _) = run(GATE_THREADS);
        gate_wall = gate_wall.min(wall_s);
    }
    let gate_speedup = serial_best / gate_wall.max(1e-9);
    let threshold = gate_threshold(GATE_THREADS, cores);
    let gate_pass = gate_speedup >= threshold;

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("serial_wall_s", serial_s.into()),
        ("effective_cores", cores.into()),
        (
            "runs",
            JsonValue::array(runs.iter().map(|&(threads, wall_s, ref snap)| {
                JsonValue::obj([
                    ("threads", threads.into()),
                    ("wall_s", wall_s.into()),
                    ("speedup_vs_serial", (serial_s / wall_s.max(1e-9)).into()),
                    ("packets_per_sec", snap.packets_per_sec().into()),
                    ("metrics", metrics_json(snap)),
                ])
            })),
        ),
        (
            "scaling_gate",
            JsonValue::obj([
                ("threads", GATE_THREADS.into()),
                ("speedup", gate_speedup.into()),
                ("threshold", threshold.into()),
                ("pass", gate_pass.into()),
            ]),
        ),
    ]);
    record_json("BENCH_pipeline", &snapshot);

    if gate {
        println!(
            "scaling gate: {GATE_THREADS}-thread speedup {gate_speedup:.2}x \
             vs floor {threshold:.2}x ({cores} core(s))"
        );
        if !gate_pass {
            eprintln!(
                "scaling gate FAILED: {GATE_THREADS}-thread speedup {gate_speedup:.2}x \
                 is below the {threshold:.2}x floor — the worker loop has \
                 re-grown a serial bottleneck (allocator churn, lock, or \
                 load imbalance)"
            );
            std::process::exit(1);
        }
    }
}
