//! E-PIPE — parallel pipeline determinism and per-stage timings.
//!
//! The sharded multi-window pipeline's hard contract: for any thread
//! count, `Pipeline::pool_observatory_parallel` produces a pooled
//! `D(d_i) ± σ(d_i)` **bit-identical** to the serial fold. This binary
//! checks that contract at 1, 2, and 8 threads on a 64-window workload
//! and records `BENCH_pipeline.json` with the per-stage wall-times
//! from the metrics snapshot, so the speedup is measured rather than
//! asserted.

use palu_bench::record_json;
use palu_cli::commands::metrics_json;
use palu_cli::json::JsonValue;
use palu_traffic::metrics::Metrics;
use palu_traffic::pipeline::{Measurement, Pipeline, PooledDistribution};
use palu_traffic::MetricsSnapshot;
use std::time::Instant;

const WINDOWS: usize = 64;
const N_V: u64 = 20_000;
const SEED: u64 = 20260807;

fn run(threads: usize) -> (PooledDistribution, f64, MetricsSnapshot) {
    // Identical scenario + seed per run: every thread count must see
    // the same per-window RNG streams and hence the same windows.
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    let mut obs = scenario.observatory(SEED);
    let metrics = Metrics::new();
    let t0 = Instant::now();
    let pooled = Pipeline::pool_observatory_parallel(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        Some(&metrics),
    );
    (pooled, t0.elapsed().as_secs_f64(), metrics.snapshot())
}

fn main() {
    println!("E-PIPE — sharded multi-window pipeline: determinism + per-stage timings");
    println!("  workload: {WINDOWS} windows × N_V = {N_V}");

    let (reference, serial_s, _) = run(1);
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let (pooled, wall_s, snap) = run(threads);
        // Bit-identity: every pooled mean/σ value, the window count,
        // and d_max must match the serial reference exactly.
        assert_eq!(pooled.windows, reference.windows, "threads = {threads}");
        assert_eq!(pooled.d_max, reference.d_max, "threads = {threads}");
        for (i, ((got, want), (gs, ws))) in pooled
            .mean
            .iter()
            .zip(reference.mean.iter())
            .zip(pooled.sigma.iter().zip(reference.sigma.iter()))
            .enumerate()
        {
            assert_eq!(
                got.1.to_bits(),
                want.1.to_bits(),
                "mean bin {i} differs at {threads} threads"
            );
            assert_eq!(
                gs.to_bits(),
                ws.to_bits(),
                "sigma bin {i} differs at {threads} threads"
            );
        }
        let stage_s = snap.total_ns() as f64 / 1e9;
        println!(
            "  threads = {threads}: bit-identical, wall {wall_s:.2}s, stage time {stage_s:.2}s, speedup vs serial {:.2}x",
            serial_s / wall_s.max(1e-9)
        );
        runs.push((threads, wall_s, snap));
    }
    println!("determinism: pooled distribution is thread-count invariant — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("serial_wall_s", serial_s.into()),
        (
            "runs",
            JsonValue::array(runs.iter().map(|&(threads, wall_s, ref snap)| {
                JsonValue::obj([
                    ("threads", threads.into()),
                    ("wall_s", wall_s.into()),
                    ("speedup_vs_serial", (serial_s / wall_s.max(1e-9)).into()),
                    ("metrics", metrics_json(snap)),
                ])
            })),
        ),
    ]);
    record_json("BENCH_pipeline", &snapshot);
}
