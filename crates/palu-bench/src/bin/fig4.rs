//! E-F4 — Figure 4: PALU model curve families.
//!
//! For α ∈ {2, 2.5, 3} (the paper varies α from 2 to 3 top-to-bottom)
//! and a per-α Zipf–Mandelbrot offset δ, sweeps the Equation-5 decay
//! parameter r to produce a family of PALU(d) differential cumulative
//! curves, shows the family bracketing the ZM target, and reports the
//! best-r approximation error — the paper's claim that "the PALU model
//! can be made to fit a Zipf-Mandelbrot distribution".

use palu::zm::ZipfMandelbrot;
use palu::zm_connection::PaluCurve;
use palu_bench::{fmt_p, record_json, rule};
use palu_cli::json::JsonValue;

const D_MAX: u64 = 1 << 12;

struct Family {
    alpha: f64,
    delta: f64,
    zm_pooled: Vec<(u64, f64)>,
    curves: Vec<CurveOut>,
    best_r: f64,
    best_distance: f64,
}

struct CurveOut {
    r: f64,
    distance_to_zm: f64,
    pooled: Vec<(u64, f64)>,
}

fn main() {
    println!("FIGURE 4 — PALU model curve families vs Zipf–Mandelbrot");
    println!("(pooled D(d_i); per α, the δ offset is fixed and r sweeps the family)");
    println!();

    let mut families = Vec::new();
    for &(alpha, delta) in &[(2.0, -0.5), (2.5, -0.6), (3.0, -0.7)] {
        let zm = ZipfMandelbrot::new(alpha, delta, D_MAX).unwrap();
        let zm_pooled = zm.pooled();

        // The r sweep (family members like the paper's grey curves).
        let rs = [1.2f64, 1.5, 2.0, 3.0, 5.0, 10.0];
        let mut curves = Vec::new();
        for &r in &rs {
            let c = PaluCurve::new(alpha, delta, r, D_MAX).unwrap();
            curves.push(CurveOut {
                r,
                distance_to_zm: c.distance_to_zm(&zm),
                pooled: c.pooled().iter().collect(),
            });
        }
        // Best-r member.
        let best = PaluCurve::fit_r_to_zm(alpha, delta, D_MAX).unwrap();
        let best_distance = best.distance_to_zm(&zm);

        println!("family α = {alpha}, δ = {delta}  (ZM target, then PALU(d) members)");
        println!("{}", rule(76));
        print!("{:>8} {:>10}", "d_i", "ZM");
        for &r in &rs {
            print!(" {:>9}", format!("r={r}"));
        }
        println!();
        let n_show = zm_pooled.n_bins().min(10);
        for i in 0..n_show {
            let d_i = 1u64 << i;
            print!("{:>8} {:>10}", d_i, fmt_p(zm_pooled.value(i)));
            for c in &curves {
                print!(" {:>9}", fmt_p(c.pooled[i].1));
            }
            println!();
        }
        println!(
            "best-fit member: r = {:.3}, pooled L2 distance {:.5}",
            best.r, best_distance
        );
        println!();

        // Paper-shape assertions: the family converges to ZM at the
        // best r, and the sweep brackets it (distance varies).
        assert!(
            best_distance < 0.02,
            "α={alpha}: best PALU member too far from ZM ({best_distance})"
        );
        let dists: Vec<f64> = curves.iter().map(|c| c.distance_to_zm).collect();
        let spread = dists.iter().cloned().fold(0.0f64, f64::max)
            - dists.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 0.001,
            "α={alpha}: the r sweep should actually move the curve"
        );

        families.push(Family {
            alpha,
            delta,
            zm_pooled: zm_pooled.iter().collect(),
            curves,
            best_r: best.r,
            best_distance,
        });
    }

    println!("shape checks: each family sweeps with r and converges to its ZM target — OK");
    let snapshot = JsonValue::array(families.iter().map(|f| {
        JsonValue::obj([
            ("alpha", f.alpha.into()),
            ("delta", f.delta.into()),
            ("zm_pooled", JsonValue::array(f.zm_pooled.iter().copied())),
            (
                "curves",
                JsonValue::array(f.curves.iter().map(|c| {
                    JsonValue::obj([
                        ("r", c.r.into()),
                        ("distance_to_zm", c.distance_to_zm.into()),
                        ("pooled", JsonValue::array(c.pooled.iter().copied())),
                    ])
                })),
            ),
            ("best_r", f.best_r.into()),
            ("best_distance", f.best_distance.into()),
        ])
    }));
    record_json("fig4", &snapshot);
}
