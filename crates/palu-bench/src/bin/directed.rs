//! E-EXT3 — directedness has a small impact (paper §III).
//!
//! "In reality these edge connections are directed … however for the
//! sake of the model we will consider this undirected. Using a
//! directed model has a small impact on overall the degree
//! distribution analysis." This experiment quantifies that claim on
//! synthetic traffic: fit the modified Zipf–Mandelbrot model to the
//! fan-out (out-degree), fan-in (in-degree), and undirected-degree
//! distributions of the same windows and compare the fitted (α, δ).

use palu::zm_fit::ZmFitter;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_sparse::quantities::NetworkQuantity;
use palu_traffic::pipeline::{Measurement, Pipeline};

struct DirectedRow {
    scenario: String,
    alpha_out: f64,
    delta_out: f64,
    alpha_in: f64,
    delta_in: f64,
    alpha_undirected: f64,
    delta_undirected: f64,
    max_alpha_spread: f64,
}

fn main() {
    println!("E-EXT3 — directed vs undirected degree analysis");
    println!("(ZM fits to fan-out, fan-in, and undirected degree of the same traffic)");
    println!();
    println!(
        "{:<56} {:>16} {:>16} {:>16} {:>8}",
        "scenario", "out (α, δ)", "in (α, δ)", "undirected (α, δ)", "Δα"
    );
    println!("{}", rule(118));

    let measurements = [
        Measurement::Quantity(NetworkQuantity::SourceFanOut),
        Measurement::Quantity(NetworkQuantity::DestinationFanIn),
        Measurement::UndirectedDegree,
    ];
    let mut rows = Vec::new();
    for (i, s) in palu_bench::fig3_scenarios().iter().enumerate() {
        let mut obs = s.observatory(77_000 + i as u64);
        let windows = obs
            .windows_parallel(s.windows.min(8), 8)
            .expect("non-zero window count");
        let pooled = Pipeline::pool_many(&measurements, &windows);
        let fits: Vec<_> = pooled
            .iter()
            .map(|p| {
                ZmFitter::default()
                    .fit(&p.mean, None)
                    .expect("fit succeeds")
            })
            .collect();
        let alphas = [fits[0].alpha, fits[1].alpha, fits[2].alpha];
        let spread = alphas.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - alphas.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{:<56} ({:>5.2},{:>6.2}) ({:>5.2},{:>6.2}) ({:>5.2},{:>6.2}) {:>8.3}",
            s.name,
            fits[0].alpha,
            fits[0].delta,
            fits[1].alpha,
            fits[1].delta,
            fits[2].alpha,
            fits[2].delta,
            spread
        );
        rows.push(DirectedRow {
            scenario: s.name.to_string(),
            alpha_out: fits[0].alpha,
            delta_out: fits[0].delta,
            alpha_in: fits[1].alpha,
            delta_in: fits[1].delta,
            alpha_undirected: fits[2].alpha,
            delta_undirected: fits[2].delta,
            max_alpha_spread: spread,
        });
    }

    println!();
    // The paper's claim, quantified in two parts:
    // (a) the two directed views are interchangeable — in- and
    //     out-degree fits agree to ~0.01 in α on every scenario
    //     (packets are oriented uniformly per conversation, so the
    //     laws coincide up to Binomial splitting);
    // (b) the undirected view agrees with the directed ones on every
    //     clean panel. The botnet-heavy panel is the documented
    //     exception: its undirected fit diverges because ZM is the
    //     wrong family for that traffic in ANY orientation (E-F3) —
    //     a misfit artifact, not a directedness effect.
    for r in &rows {
        assert!(
            (r.alpha_out - r.alpha_in).abs() < 0.05,
            "{}: in/out asymmetry {:.3}",
            r.scenario,
            (r.alpha_out - r.alpha_in).abs()
        );
        if !r.scenario.contains("botnet") {
            assert!(
                r.max_alpha_spread < 0.35,
                "{}: direction changes α by {:.3}",
                r.scenario,
                r.max_alpha_spread
            );
        }
    }
    let worst_clean = rows
        .iter()
        .filter(|r| !r.scenario.contains("botnet"))
        .map(|r| r.max_alpha_spread)
        .fold(0.0f64, f64::max);
    println!(
        "directedness gates passed: in/out α agree to < 0.05 everywhere; clean-panel \
         spread ≤ {worst_clean:.3} — 'a small impact on overall the degree \
         distribution analysis'. OK"
    );
    let snapshot = JsonValue::array(rows.iter().map(|r| {
        JsonValue::obj([
            ("scenario", r.scenario.as_str().into()),
            ("alpha_out", r.alpha_out.into()),
            ("delta_out", r.delta_out.into()),
            ("alpha_in", r.alpha_in.into()),
            ("delta_in", r.delta_in.into()),
            ("alpha_undirected", r.alpha_undirected.into()),
            ("delta_undirected", r.delta_undirected.into()),
            ("max_alpha_spread", r.max_alpha_spread.into()),
        ])
    }));
    record_json("directed", &snapshot);
}
