//! E-A1 — Section IV analytic validation.
//!
//! Simulates the PALU model end-to-end (generate underlying network →
//! Erdős–Rényi edge sampling) across a sweep of window sizes `p` and
//! compares every Section IV closed-form prediction against measured
//! counts: visible fraction, role fractions, unattached links,
//! degree-1 fraction, and the degree law at selected `d`. Includes the
//! core-generator ablation (configuration model vs Barabási–Albert).

use palu::analytic::ObservedPrediction;
use palu::params::PaluParams;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_graph::census::TopologyCensus;
use palu_graph::palu_gen::{CoreGenerator, NodeRole};
use palu_graph::sample::sample_edges;
use palu_stats::rng::{streams, SeedSequence};

struct ValidationRow {
    p: f64,
    core_gen: String,
    predicted_core_frac: f64,
    measured_core_frac: f64,
    predicted_leaf_frac: f64,
    measured_leaf_frac: f64,
    predicted_unattached_frac: f64,
    measured_unattached_frac: f64,
    predicted_unattached_links: f64,
    measured_unattached_links: f64,
    /// All 2-node components in the observed graph, including pairs
    /// shed by the sampled core — structure the model does not
    /// predict (see EXPERIMENTS.md).
    census_pair_components: f64,
    predicted_degree1: f64,
    measured_degree1: f64,
    // Count-level comparisons against the *exact* model numerators
    // (per underlying normalization n), free of the V-denominator
    // approximation:
    predicted_star_pair_count: f64,
    measured_star_pair_count: u64,
    predicted_leaf_visible_count: f64,
    measured_leaf_visible_count: u64,
    predicted_star_visible_count: f64,
    measured_star_visible_count: u64,
}

fn validate(params: &PaluParams, core_gen: CoreGenerator, n: u64, seed: u64) -> ValidationRow {
    let seq = SeedSequence::new(seed);
    let gen = params.generator(n).unwrap().with_core_generator(core_gen);
    let net = gen.generate(&mut seq.rng(streams::CORE));
    let observed = sample_edges(&net.graph, params.p, &mut seq.rng(streams::SAMPLING));

    let degrees = observed.degrees();
    let visible: u64 = degrees.iter().filter(|&&d| d > 0).count() as u64;

    // Role-resolved visible counts.
    let mut core_v = 0u64;
    let mut leaf_v = 0u64;
    let mut star_v = 0u64;
    let mut degree1 = 0u64;
    // Star-derived unattached links = star centers whose observed
    // degree is exactly 1 (their single surviving leaf always has
    // degree 1). This is precisely the quantity the Section IV
    // formula U·λp·e^{−λp}/V predicts.
    let mut star_pair_links = 0u64;
    for (node, &d) in degrees.iter().enumerate() {
        if d == 0 {
            continue;
        }
        match net.role(node as u32) {
            NodeRole::Core => core_v += 1,
            NodeRole::Leaf => leaf_v += 1,
            NodeRole::StarCenter => {
                star_v += 1;
                if d == 1 {
                    star_pair_links += 1;
                }
            }
            NodeRole::StarLeaf => star_v += 1,
        }
        if d == 1 {
            degree1 += 1;
        }
    }
    let census = TopologyCensus::of(&observed);
    let pred = ObservedPrediction::new(params).unwrap();
    let lp = params.lambda * params.p;
    let nf = n as f64;

    ValidationRow {
        predicted_star_pair_count: params.unattached * lp * (-lp).exp() * nf,
        measured_star_pair_count: star_pair_links,
        predicted_leaf_visible_count: params.leaves * params.p * nf,
        measured_leaf_visible_count: leaf_v,
        predicted_star_visible_count: params.unattached * (1.0 + lp - (-lp).exp()) * nf,
        measured_star_visible_count: star_v,
        p: params.p,
        core_gen: format!("{core_gen:?}"),
        predicted_core_frac: pred.core_fraction,
        measured_core_frac: core_v as f64 / visible as f64,
        predicted_leaf_frac: pred.leaf_fraction,
        measured_leaf_frac: leaf_v as f64 / visible as f64,
        predicted_unattached_frac: pred.unattached_fraction,
        measured_unattached_frac: star_v as f64 / visible as f64,
        predicted_unattached_links: pred.unattached_link_fraction,
        measured_unattached_links: star_pair_links as f64 / visible as f64,
        census_pair_components: census.unattached_links as f64 / visible as f64,
        predicted_degree1: pred.degree_one_fraction,
        measured_degree1: degree1 as f64 / visible as f64,
    }
}

fn main() {
    let base = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
    let n = 400_000u64;

    println!("E-A1 — Section IV analytic predictions vs simulation");
    println!(
        "model: C={}, L={}, U={:.4}, λ={}, α={}, n={n}",
        base.core, base.leaves, base.unattached, base.lambda, base.alpha
    );
    println!();
    println!(
        "{:<6} {:<14} {:>18} {:>18} {:>18} {:>20} {:>18}",
        "p",
        "core gen",
        "core frac (p/m)",
        "leaf frac (p/m)",
        "unatt frac (p/m)",
        "unatt links (p/m)",
        "degree-1 (p/m)"
    );
    println!("{}", rule(120));

    let mut rows = Vec::new();
    for (i, &p) in [0.2f64, 0.4, 0.6, 0.8].iter().enumerate() {
        let params = base.with_p(p).unwrap();
        let row = validate(&params, CoreGenerator::ConfigModel, n, 77 + i as u64);
        println!(
            "{:<6} {:<14} {:>8.4}/{:<8.4} {:>8.4}/{:<8.4} {:>8.4}/{:<8.4} {:>9.5}/{:<9.5} {:>8.4}/{:<8.4}",
            p, "ConfigModel",
            row.predicted_core_frac, row.measured_core_frac,
            row.predicted_leaf_frac, row.measured_leaf_frac,
            row.predicted_unattached_frac, row.measured_unattached_frac,
            row.predicted_unattached_links, row.measured_unattached_links,
            row.predicted_degree1, row.measured_degree1,
        );
        rows.push(row);
    }
    // Ablation: BA-growth core at the same nominal α.
    let params = base.with_p(0.5).unwrap();
    let row = validate(&params, CoreGenerator::BarabasiAlbert { m: 2 }, n, 999);
    println!(
        "{:<6} {:<14} {:>8.4}/{:<8.4} {:>8.4}/{:<8.4} {:>8.4}/{:<8.4} {:>9.5}/{:<9.5} {:>8.4}/{:<8.4}",
        0.5, "BA(m=2)",
        row.predicted_core_frac, row.measured_core_frac,
        row.predicted_leaf_frac, row.measured_leaf_frac,
        row.predicted_unattached_frac, row.measured_unattached_frac,
        row.predicted_unattached_links, row.measured_unattached_links,
        row.predicted_degree1, row.measured_degree1,
    );
    rows.push(row);

    // Accuracy gates at the COUNT level, where the model arithmetic is
    // exact (star pairs, visible leaves, visible star nodes): these
    // must track within sampling noise. The fraction-level columns
    // divide by the paper's approximate visible-count V and inherit
    // its small-p bias — documented, not gated.
    println!();
    println!(
        "{:<6} {:>24} {:>24} {:>24}",
        "p", "star pairs (pred/meas)", "visible leaves (p/m)", "visible star nodes (p/m)"
    );
    println!("{}", rule(84));
    for r in &rows {
        println!(
            "{:<6} {:>11.0}/{:<11} {:>11.0}/{:<11} {:>11.0}/{:<11}",
            r.p,
            r.predicted_star_pair_count,
            r.measured_star_pair_count,
            r.predicted_leaf_visible_count,
            r.measured_leaf_visible_count,
            r.predicted_star_visible_count,
            r.measured_star_visible_count,
        );
        let rel = |pred: f64, meas: u64| (pred - meas as f64).abs() / pred.max(1.0);
        assert!(
            rel(r.predicted_star_pair_count, r.measured_star_pair_count) < 0.1,
            "p={}: star-pair count off",
            r.p
        );
        assert!(
            rel(
                r.predicted_leaf_visible_count,
                r.measured_leaf_visible_count
            ) < 0.1,
            "p={}: visible-leaf count off",
            r.p
        );
        assert!(
            rel(
                r.predicted_star_visible_count,
                r.measured_star_visible_count
            ) < 0.1,
            "p={}: visible-star count off",
            r.p
        );
    }
    println!();
    println!("count-level gates passed (exact model terms within 10% of simulation)");
    println!();
    println!("findings recorded for EXPERIMENTS.md:");
    println!(" * star-section predictions (exact Poisson arithmetic) track simulation tightly;");
    println!(" * the observed graph contains MORE pair components than the model's unattached");
    println!("   links — edge sampling fragments the core into pairs the model does not count:");
    for r in &rows {
        println!(
            "     p={}: star pairs {:.5} vs all pair components {:.5}",
            r.p, r.measured_unattached_links, r.census_pair_components
        );
    }
    println!(" * the paper's visible-core term C·p^(α−1)/((α−1)ζ(α)) underestimates core");
    println!("   visibility by up to ~2x at moderate p (it is a small-p leading-order term),");
    println!("   which propagates into all role-fraction denominators.");
    let snapshot = JsonValue::array(rows.iter().map(|r| {
        JsonValue::obj([
            ("p", r.p.into()),
            ("core_gen", r.core_gen.as_str().into()),
            ("predicted_core_frac", r.predicted_core_frac.into()),
            ("measured_core_frac", r.measured_core_frac.into()),
            ("predicted_leaf_frac", r.predicted_leaf_frac.into()),
            ("measured_leaf_frac", r.measured_leaf_frac.into()),
            (
                "predicted_unattached_frac",
                r.predicted_unattached_frac.into(),
            ),
            (
                "measured_unattached_frac",
                r.measured_unattached_frac.into(),
            ),
            (
                "predicted_unattached_links",
                r.predicted_unattached_links.into(),
            ),
            (
                "measured_unattached_links",
                r.measured_unattached_links.into(),
            ),
            ("census_pair_components", r.census_pair_components.into()),
            ("predicted_degree1", r.predicted_degree1.into()),
            ("measured_degree1", r.measured_degree1.into()),
            (
                "predicted_star_pair_count",
                r.predicted_star_pair_count.into(),
            ),
            (
                "measured_star_pair_count",
                r.measured_star_pair_count.into(),
            ),
            (
                "predicted_leaf_visible_count",
                r.predicted_leaf_visible_count.into(),
            ),
            (
                "measured_leaf_visible_count",
                r.measured_leaf_visible_count.into(),
            ),
            (
                "predicted_star_visible_count",
                r.predicted_star_visible_count.into(),
            ),
            (
                "measured_star_visible_count",
                r.measured_star_visible_count.into(),
            ),
        ])
    }));
    record_json("validate_analytic", &snapshot);
}
