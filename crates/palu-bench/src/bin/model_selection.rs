//! E-EXT2 — Future work: "determining if there is a better fitting
//! model than the Zipf-Mandelbrot distribution" (Section VII).
//!
//! For each Figure 3 scenario, fits three full-support models to the
//! merged multi-window degree histogram — the modified Zipf–Mandelbrot
//! (2 parameters), a discretized lognormal (2), and the PALU simplified
//! law (5) — and compares them by AIC. A Vuong likelihood-ratio test
//! additionally adjudicates power law vs lognormal on the tail.

use palu::estimate::PaluEstimator;
use palu::zm_fit::ZmFitter;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::mle::fit_alpha_discrete;
use palu_stats::model_select::{fit_lognormal_tail, vuong_test, ModelVerdict};
use palu_traffic::pipeline::Measurement;

#[derive(Debug)]
struct Row {
    scenario: String,
    aic_zm: f64,
    aic_lognormal: f64,
    aic_palu: f64,
    best: String,
    vuong_z: f64,
    vuong_verdict: String,
}

/// Full-support log-likelihood of a pmf closure against a histogram.
fn ln_likelihood<F: Fn(u64) -> f64>(h: &DegreeHistogram, pmf: F) -> f64 {
    h.iter()
        .map(|(d, c)| {
            let p = pmf(d);
            if p > 0.0 {
                c as f64 * p.ln()
            } else {
                // Off-support observation: heavily penalized, finite.
                c as f64 * -700.0
            }
        })
        .sum()
}

fn main() {
    println!("E-EXT2 — model selection on the Figure 3 scenarios");
    println!("(AIC = 2k − 2 ln L over the full support; lower is better)");
    println!();
    println!(
        "{:<56} {:>12} {:>12} {:>12} {:>12} {:>8} {:>14}",
        "scenario", "AIC(ZM)", "AIC(logn)", "AIC(PALU)", "best", "Vuong z", "PL-vs-logn"
    );
    println!("{}", rule(132));

    let mut rows = Vec::new();
    for (i, s) in palu_bench::fig3_scenarios().iter().enumerate() {
        let mut obs = s.observatory(20260706 + i as u64);
        let windows = obs
            .windows_parallel(s.windows.min(8), 8)
            .expect("non-zero window count");
        let mut merged = DegreeHistogram::new();
        for w in &windows {
            merged.merge(&Measurement::UndirectedDegree.histogram(w));
        }
        let d_cap = merged.d_max().expect("non-empty");

        // Modified Zipf–Mandelbrot (2 parameters).
        let pooled = DifferentialCumulative::from_histogram(&merged);
        let zm_fit = ZmFitter::default().fit(&pooled, None).expect("zm fit");
        let zm = zm_fit.model().expect("valid model");
        let ll_zm = ln_likelihood(&merged, |d| zm.pmf(d.min(zm.d_max())));
        let aic_zm = 2.0 * 2.0 - 2.0 * ll_zm;

        // Discretized lognormal (2 parameters), full support.
        let logn = fit_lognormal_tail(&merged, 1).expect("lognormal fit");
        let aic_logn = 2.0 * 2.0 - 2.0 * logn.ln_likelihood;

        // PALU simplified law (5 parameters).
        let est = PaluEstimator::default()
            .estimate(&merged)
            .expect("palu fit");
        let sp = est.simplified;
        let raw = |d: u64| {
            if d == 1 {
                sp.degree_one_fraction()
            } else {
                sp.degree_fraction_poisson(d)
            }
        };
        let z: f64 = (1..=d_cap).map(raw).sum();
        let ll_palu = ln_likelihood(&merged, |d| raw(d) / z);
        let aic_palu = 2.0 * 5.0 - 2.0 * ll_palu;

        // Tail Vuong: power law vs lognormal past the head.
        let x_min = 4u64;
        let vuong = match (
            fit_alpha_discrete(&merged, x_min),
            fit_lognormal_tail(&merged, x_min),
        ) {
            (Ok(pl), Ok(ln)) => vuong_test(&merged, &pl, &ln, 0.05).ok(),
            _ => None,
        };
        let (vz, verdict) = vuong
            .map(|v| {
                (
                    v.z,
                    match v.verdict {
                        ModelVerdict::PowerLaw => "power-law",
                        ModelVerdict::LogNormal => "lognormal",
                        ModelVerdict::Inconclusive => "tie",
                    },
                )
            })
            .unwrap_or((f64::NAN, "n/a"));

        let best = if aic_zm <= aic_logn && aic_zm <= aic_palu {
            "ZM"
        } else if aic_logn <= aic_palu {
            "lognormal"
        } else {
            "PALU"
        };
        println!(
            "{:<56} {:>12.0} {:>12.0} {:>12.0} {:>12} {:>8.2} {:>14}",
            s.name, aic_zm, aic_logn, aic_palu, best, vz, verdict
        );
        rows.push(Row {
            scenario: s.name.to_string(),
            aic_zm,
            aic_lognormal: aic_logn,
            aic_palu,
            best: best.to_string(),
            vuong_z: vz,
            vuong_verdict: verdict.to_string(),
        });
    }

    println!();
    // Shape gate: on the botnet-heavy scenario the 5-parameter PALU
    // law must beat the 2-parameter families even after the AIC
    // complexity penalty.
    let botnet = rows
        .iter()
        .find(|r| r.scenario.contains("botnet"))
        .expect("botnet scenario present");
    assert!(
        botnet.aic_palu < botnet.aic_zm && botnet.aic_palu < botnet.aic_lognormal,
        "PALU must win the botnet scenario: {botnet:?}"
    );
    println!("gate passed: PALU wins the botnet-heavy scenario on AIC despite its 5 parameters");
    let snapshot = JsonValue::array(rows.iter().map(|r| {
        JsonValue::obj([
            ("scenario", r.scenario.as_str().into()),
            ("aic_zm", r.aic_zm.into()),
            ("aic_lognormal", r.aic_lognormal.into()),
            ("aic_palu", r.aic_palu.into()),
            ("best", r.best.as_str().into()),
            ("vuong_z", r.vuong_z.into()),
            ("vuong_verdict", r.vuong_verdict.as_str().into()),
        ])
    }));
    record_json("model_selection", &snapshot);
}
