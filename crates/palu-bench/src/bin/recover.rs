//! E-A2 — Section IV-B parameter recovery.
//!
//! Generates PALU networks with known `(C, L, U, λ, α)`, observes them
//! at a known `p`, and runs the estimation pipeline: tail regression →
//! moment-ratio Λ solve → u → l → underlying-parameter inversion.
//! Reports recovery error per parameter, the ratio-vs-pointwise Λ
//! estimator ablation, and the CSN single-power-law baseline (which
//! sees only a single exponent where PALU separates populations).

use palu::estimate::{EstimateOptions, LambdaMethod, PaluEstimator};
use palu::params::PaluParams;
use palu_bench::{record_json, rule};
use palu_cli::json::JsonValue;
use palu_graph::sample::ObservedNetwork;
use palu_stats::mle::{fit_csn, CsnOptions};
use palu_stats::rng::{streams, SeedSequence};

struct Recovery {
    label: String,
    truth_lambda: f64,
    truth_alpha: f64,
    recovered_lambda: f64,
    recovered_alpha: f64,
    recovered_core: f64,
    truth_core: f64,
    recovered_leaves: f64,
    truth_leaves: f64,
    recovered_unattached: f64,
    truth_unattached: f64,
    lambda_pointwise: f64,
    csn_alpha: f64,
    csn_xmin: u64,
}

fn recover(truth: &PaluParams, n: u64, seed: u64, label: &str) -> Recovery {
    let seq = SeedSequence::new(seed);
    let net = truth
        .generator(n)
        .unwrap()
        .generate(&mut seq.rng(streams::CORE));
    let obs = ObservedNetwork::observe(&net, truth.p, &mut seq.rng(streams::SAMPLING));
    let h = obs.degree_histogram();

    // Simulated data is genuinely edge-thinned → exact pipeline.
    let (_, rec) = PaluEstimator::default()
        .estimate_exact(&h, truth.p)
        .expect("estimation succeeds on PALU data");

    let pointwise = PaluEstimator::new(EstimateOptions {
        lambda_method: LambdaMethod::Pointwise,
        ..Default::default()
    })
    .estimate(&h)
    .expect("pointwise estimation succeeds");

    let csn = fit_csn(&h, &CsnOptions::default()).expect("CSN baseline fits");

    Recovery {
        label: label.to_string(),
        truth_lambda: truth.lambda,
        truth_alpha: truth.alpha,
        recovered_lambda: rec.lambda,
        recovered_alpha: rec.alpha,
        recovered_core: rec.core,
        truth_core: truth.core,
        recovered_leaves: rec.leaves,
        truth_leaves: truth.leaves,
        recovered_unattached: rec.unattached,
        truth_unattached: truth.unattached,
        lambda_pointwise: pointwise.simplified.lambda_p() / truth.p,
        csn_alpha: csn.alpha,
        csn_xmin: csn.x_min,
    }
}

fn main() {
    println!("E-A2 — Section IV-B parameter recovery on simulated PALU networks");
    println!();
    let cases = [
        (
            "balanced",
            PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap(),
        ),
        (
            "leaf-heavy",
            PaluParams::from_core_leaf_fractions(0.35, 0.40, 2.0, 2.2, 0.6).unwrap(),
        ),
        (
            "star-heavy",
            PaluParams::from_core_leaf_fractions(0.30, 0.10, 5.0, 2.0, 0.7).unwrap(),
        ),
    ];

    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14} {:>16} {:>12}",
        "case",
        "λ (true/est)",
        "α (true/est)",
        "C (true/est)",
        "L (true/est)",
        "U (true/est)",
        "λ ratio/ptwise",
        "CSN α@xmin"
    );
    println!("{}", rule(120));
    let mut rows = Vec::new();
    for (i, (label, truth)) in cases.iter().enumerate() {
        let r = recover(truth, 400_000, 314159 + i as u64, label);
        println!(
            "{:<12} {:>6.2}/{:<7.2} {:>6.2}/{:<7.2} {:>6.3}/{:<7.3} {:>6.3}/{:<7.3} {:>6.3}/{:<7.3} {:>7.2}/{:<8.2} {:>6.2}@{:<5}",
            r.label,
            r.truth_lambda, r.recovered_lambda,
            r.truth_alpha, r.recovered_alpha,
            r.truth_core, r.recovered_core,
            r.truth_leaves, r.recovered_leaves,
            r.truth_unattached, r.recovered_unattached,
            r.recovered_lambda, r.lambda_pointwise,
            r.csn_alpha, r.csn_xmin,
        );
        rows.push(r);
    }

    println!();
    // Gates: λ and the role proportions recovered within model-family
    // tolerances; the CSN baseline cannot see any of this structure
    // (it reports a single exponent only).
    for r in &rows {
        let lam_rel = (r.recovered_lambda - r.truth_lambda).abs() / r.truth_lambda;
        assert!(
            lam_rel < 0.35,
            "{}: λ recovery off by {lam_rel:.2}",
            r.label
        );
        assert!(
            (r.recovered_alpha - r.truth_alpha).abs() < 0.45,
            "{}: α recovery off ({} vs {})",
            r.label,
            r.recovered_alpha,
            r.truth_alpha
        );
        assert!(
            (r.recovered_leaves - r.truth_leaves).abs() < 0.15,
            "{}: L recovery off ({} vs {})",
            r.label,
            r.recovered_leaves,
            r.truth_leaves
        );
    }
    println!("recovery gates passed (λ < 35% rel. error; α < 0.45 abs; L < 0.15 abs)");
    println!("note: the CSN baseline reduces each network to one exponent — it has no");
    println!("      leaf/unattached decomposition at all, which is the paper's point.");
    let snapshot = JsonValue::array(rows.iter().map(|r| {
        JsonValue::obj([
            ("label", r.label.as_str().into()),
            ("truth_lambda", r.truth_lambda.into()),
            ("truth_alpha", r.truth_alpha.into()),
            ("recovered_lambda", r.recovered_lambda.into()),
            ("recovered_alpha", r.recovered_alpha.into()),
            ("recovered_core", r.recovered_core.into()),
            ("truth_core", r.truth_core.into()),
            ("recovered_leaves", r.recovered_leaves.into()),
            ("truth_leaves", r.truth_leaves.into()),
            ("recovered_unattached", r.recovered_unattached.into()),
            ("truth_unattached", r.truth_unattached.into()),
            ("lambda_pointwise", r.lambda_pointwise.into()),
            ("csn_alpha", r.csn_alpha.into()),
            ("csn_xmin", r.csn_xmin.into()),
        ])
    }));
    record_json("recover", &snapshot);
}
