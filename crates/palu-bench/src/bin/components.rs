//! E-EXT1 — Future-work extensions: component-size distribution and
//! clustering coefficients.
//!
//! Section VII of the paper lists as future work (a) "extrapolating
//! the results of the PALU model to observe and define the large
//! clusters of small disconnected components" and (b) "deeper study
//! into the degree distribution and clustering coefficients". This
//! experiment does both on simulated PALU traffic:
//!
//! * the observed star-component size distribution against the
//!   truncated-Poisson closed form `P(size = s) ∝ (λp)^{s−1}/(s−1)!`;
//! * clustering coefficients of the observed network, showing all
//!   transitivity lives in the PA core (leaves and stars are
//!   triangle-free by construction).

use palu::analytic::star_component_size_pmf;
use palu::params::PaluParams;
use palu_bench::{fmt_p, record_json, rule};
use palu_cli::json::JsonValue;
use palu_graph::clustering::clustering;
use palu_graph::components::Components;
use palu_graph::graph::Graph;
use palu_graph::palu_gen::NodeRole;
use palu_graph::sample::sample_edges;
use palu_stats::rng::{streams, SeedSequence};

fn main() {
    let params = PaluParams::from_core_leaf_fractions(0.35, 0.15, 4.0, 2.0, 0.5).unwrap();
    let n = 300_000u64;
    let seq = SeedSequence::new(20260706);
    let net = params
        .generator(n)
        .unwrap()
        .generate(&mut seq.rng(streams::CORE));
    let obs = sample_edges(&net.graph, params.p, &mut seq.rng(streams::SAMPLING));

    // ---- star component sizes ----
    let comps = Components::of(&obs);
    // A star component = component whose nodes are all star-section.
    let mut comp_is_star = vec![true; comps.count()];
    let mut comp_size = vec![0u64; comps.count()];
    for v in 0..obs.n_nodes() {
        let label = comps.label(v) as usize;
        comp_size[label] += 1;
        match net.role(v) {
            NodeRole::StarCenter | NodeRole::StarLeaf => {}
            _ => comp_is_star[label] = false,
        }
    }
    let mut size_counts: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut star_components = 0u64;
    for (label, (&is_star, &size)) in comp_is_star.iter().zip(&comp_size).enumerate() {
        // Skip invisible singletons and the non-star components.
        if !is_star || size < 2 || comps.edge_count(label as u32) == 0 {
            continue;
        }
        *size_counts.entry(size).or_insert(0) += 1;
        star_components += 1;
    }

    println!("E-EXT1 — observed star-component sizes vs truncated-Poisson closed form");
    println!(
        "model: λ = {}, p = {} (λp = {})",
        params.lambda,
        params.p,
        params.lambda * params.p
    );
    println!("{}", rule(52));
    println!("{:>6} {:>14} {:>14}", "size", "predicted", "measured");
    let mut rows = Vec::new();
    let mut worst_rel: f64 = 0.0;
    for (&size, &count) in size_counts.iter().take(10) {
        let predicted = star_component_size_pmf(params.lambda, params.p, size).unwrap();
        let measured = count as f64 / star_components as f64;
        println!("{size:>6} {:>14} {:>14}", fmt_p(predicted), fmt_p(measured));
        if predicted > 0.01 {
            worst_rel = worst_rel.max((predicted - measured).abs() / predicted);
        }
        rows.push((size, predicted, measured));
    }
    println!(
        "worst relative deviation on sizes with ≥1% mass: {:.1}%",
        worst_rel * 100.0
    );
    assert!(worst_rel < 0.1, "component-size law off by {worst_rel:.3}");

    // ---- clustering ----
    let whole = clustering(&obs);
    let mut core_only = Graph::with_nodes(obs.n_nodes());
    for &(u, v) in obs.edges() {
        if net.role(u) == NodeRole::Core && net.role(v) == NodeRole::Core {
            core_only.add_edge(u, v);
        }
    }
    let core = clustering(&core_only);

    println!();
    println!("E-EXT1 — clustering coefficients (observed network)");
    println!("{}", rule(52));
    println!(
        "  whole network: global = {:.5}, avg local = {:.5}, triangles = {}",
        whole.global, whole.average_local, whole.triangles
    );
    println!(
        "  core only:     global = {:.5}, triangles = {}",
        core.global, core.triangles
    );
    assert_eq!(
        whole.triangles, core.triangles,
        "every triangle must be core-internal"
    );
    println!("  every triangle is core-internal — leaves and stars are transitivity-free. OK");

    record_json(
        "components",
        &JsonValue::obj([
            ("size_rows", JsonValue::array(rows.iter().copied())),
            ("clustering_whole_global", whole.global.into()),
            ("clustering_whole_avg_local", whole.average_local.into()),
            ("clustering_core_global", core.global.into()),
            ("triangles_whole", whole.triangles.into()),
            ("triangles_core", core.triangles.into()),
        ]),
    );
}
