//! E-FED — federated observatories: merge cost, re-capture overhead,
//! and single-process equivalence.
//!
//! The federation layer (DESIGN.md §4j) claims a sharded capture is
//! free at the output: merging N clean shard journals must reproduce
//! the single-process pooled distribution **bit-identically**, and the
//! merge itself must cost a small fraction of capture time. This
//! binary measures both on a 48-window workload split 4 ways, then
//! kills one shard at ~half its journal and measures the
//! re-capture-and-merge path against the uninterrupted baseline, and
//! records `BENCH_federation.json`.

use palu_bench::record_json;
use palu_cli::json::JsonValue;
use palu_traffic::federation::{capture_shard, merge_shard_journals, ShardPlan};
use palu_traffic::journal::{Journal, JournalHeader};
use palu_traffic::pipeline::{FaultTolerantPool, Measurement, Pipeline};
use palu_traffic::FailurePolicy;
use std::path::PathBuf;
use std::time::Instant;

const WINDOWS: usize = 48;
const SHARDS: u64 = 4;
const N_V: u64 = 20_000;
const SEED: u64 = 20260809;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "bench=federation".to_string(),
            "measurement=undirected-degree".to_string(),
        ],
    )
}

fn observatory() -> palu_traffic::Observatory {
    let mut scenario = palu_bench::fig3_scenarios().remove(0);
    scenario.n_v = N_V;
    scenario.windows = WINDOWS;
    scenario.observatory(SEED)
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}");
    assert_eq!(a.histogram, b.histogram, "{what}: merged histogram");
    for (i, ((ga, wa), (gs, ws))) in a
        .pooled
        .mean
        .iter()
        .zip(b.pooled.mean.iter())
        .zip(a.pooled.sigma.iter().zip(b.pooled.sigma.iter()))
        .enumerate()
    {
        assert_eq!(ga.1.to_bits(), wa.1.to_bits(), "{what}: mean bin {i}");
        assert_eq!(gs.to_bits(), ws.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Capture shard `i` of the plan into its own journal, returning the
/// journal path and the shard's wall time.
fn run_shard(plan: &ShardPlan, shard: u64, dir: &std::path::Path) -> (PathBuf, f64) {
    let path = dir.join(format!("bench-shard-{shard}.journal"));
    let _ = std::fs::remove_file(&path);
    let journal = Journal::create(&path, header()).expect("shard journal create");
    let mut obs = observatory();
    let t0 = Instant::now();
    capture_shard(
        Measurement::UndirectedDegree,
        &mut obs,
        plan,
        shard,
        threads(),
        None,
        &FailurePolicy::strict(),
        None,
        Some(&journal),
        None,
        None,
    )
    .expect("shard capture succeeds");
    (path, t0.elapsed().as_secs_f64())
}

fn merge(paths: &[PathBuf], recapture: bool) -> (palu_traffic::federation::FederatedMerge, f64) {
    let mut obs = if recapture { Some(observatory()) } else { None };
    let t0 = Instant::now();
    let merged = merge_shard_journals(
        Measurement::UndirectedDegree,
        &header(),
        paths,
        &FailurePolicy::strict(),
        0.0,
        threads(),
        None,
        obs.as_mut(),
        None,
    )
    .expect("merge succeeds");
    (merged, t0.elapsed().as_secs_f64())
}

fn main() {
    println!(
        "E-FED — federated observatories: merge cost and re-capture overhead vs single-process"
    );
    println!("  workload: {WINDOWS} windows × N_V = {N_V}, {SHARDS} shards");

    let dir = std::env::temp_dir().join("palu-bench-federation");
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // 1. Single-process baseline (durable engine, no journal).
    let mut obs = observatory();
    let t0 = Instant::now();
    let baseline = Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads(),
        None,
        &FailurePolicy::strict(),
        None,
        None,
        None,
    )
    .expect("baseline capture succeeds");
    let base_s = t0.elapsed().as_secs_f64();

    // 2. Shard the capture 4 ways (sequentially here; the per-shard
    //    max is what a real federation would pay in parallel).
    let plan = ShardPlan::new(WINDOWS as u64, SHARDS).expect("plan");
    let mut paths = Vec::new();
    let mut shard_total_s = 0.0f64;
    let mut shard_max_s = 0.0f64;
    for shard in 0..SHARDS {
        let (path, wall) = run_shard(&plan, shard, &dir);
        paths.push(path);
        shard_total_s += wall;
        shard_max_s = shard_max_s.max(wall);
    }

    // 3. Pure hierarchical merge of the clean shard journals.
    let (clean, merge_s) = merge(&paths, false);
    assert_bit_identical(&clean.pool, &baseline, "federated merge vs single-process");
    assert_eq!(clean.federation.covered, WINDOWS as u64);
    assert_eq!(clean.federation.merge_levels, 2, "4 shards → 2 levels");
    let merge_frac = merge_s / base_s.max(1e-9);
    println!(
        "  capture: single-process {base_s:.2}s; shards {shard_total_s:.2}s total \
         ({shard_max_s:.2}s slowest)"
    );
    println!(
        "  clean merge: {merge_s:.4}s across {} level(s) — {:.1}% of capture time, bit-identical",
        clean.federation.merge_levels,
        merge_frac * 100.0
    );

    // 4. Kill one shard at ~half its journal; merge with deterministic
    //    re-capture of the gap.
    let victim = &paths[1];
    let bytes = std::fs::read(victim).expect("victim journal readable");
    std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("victim truncatable");
    let (healed, recapture_s) = merge(&paths, true);
    assert_bit_identical(
        &healed.pool,
        &baseline,
        "re-captured merge vs single-process",
    );
    let recaptured = healed.federation.recaptured;
    assert!(
        recaptured > 0 && recaptured < plan.shard_range(1).map_or(0, |r| r.window_count()) + 1,
        "kill must cost some but not all of shard 1's windows"
    );
    let recapture_frac = recapture_s / base_s.max(1e-9);
    println!(
        "  kill + re-capture: {recaptured} window(s) recomputed in {recapture_s:.2}s \
         ({:.1}% of a full capture), bit-identical",
        recapture_frac * 100.0
    );
    println!("single-process equivalence: federated pooled distribution is bit-identical — OK");

    let snapshot = JsonValue::obj([
        ("windows", WINDOWS.into()),
        ("n_v", N_V.into()),
        ("shards", SHARDS.into()),
        ("baseline_wall_s", base_s.into()),
        ("shard_total_wall_s", shard_total_s.into()),
        ("shard_max_wall_s", shard_max_s.into()),
        ("merge_wall_s", merge_s.into()),
        ("merge_frac_of_capture", merge_frac.into()),
        ("merge_levels", clean.federation.merge_levels.into()),
        ("recapture_wall_s", recapture_s.into()),
        ("recapture_frac_of_capture", recapture_frac.into()),
        ("windows_recaptured", recaptured.into()),
    ]);
    record_json("BENCH_federation", &snapshot);
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}
