//! E-F1 — Figure 1: streaming network traffic quantities.
//!
//! From one synthetic window, computes the five quantities the paper's
//! Figure 1 defines — source packets, source fan-out, link packets,
//! destination fan-in, destination packets — and prints each pooled
//! distribution `D(d_i)`, demonstrating they are all heavy-tailed with
//! dominant `d = 1` mass.

use palu_bench::{fmt_p, record_json, rule};
use palu_cli::json::JsonValue;
use palu_sparse::quantities::NetworkQuantity;
use palu_stats::logbin::DifferentialCumulative;

struct Series {
    quantity: String,
    total_observations: u64,
    d_max: u64,
    pooled: Vec<(u64, f64)>,
}

fn main() {
    // Scenario 3 uses heavy-tailed (Pareto) per-link intensities, so
    // all five quantities — including packets-per-link — show the
    // paper's heavy tails. (Uniform intensity gives each link a
    // near-Poisson packet count: realistic only for idealized traffic.)
    let scenario = &palu_bench::fig3_scenarios()[3];
    let mut obs = scenario.observatory(20260706);
    let window = obs.next_window();

    println!("FIGURE 1 — Streaming network traffic quantities");
    println!(
        "window: {} packets from '{}' (unique links: {})",
        window.n_v(),
        scenario.name,
        window.aggregates().unique_links
    );
    println!();

    let mut all = Vec::new();
    for q in NetworkQuantity::ALL {
        let h = q.histogram(window.matrix());
        let pooled = DifferentialCumulative::from_histogram(&h);
        println!("{} — D(d_i), d_i = 2^i", q.name());
        println!("{}", rule(44));
        println!("{:>10} {:>12}", "d_i", "D(d_i)");
        for (d_i, v) in pooled.iter().filter(|&(_, v)| v > 0.0) {
            println!("{d_i:>10} {:>12}", fmt_p(v));
        }
        println!(
            "{:>10} observations, d_max = {}",
            h.total(),
            h.d_max().unwrap_or(0)
        );
        println!();
        all.push(Series {
            quantity: q.name().to_string(),
            total_observations: h.total(),
            d_max: h.d_max().unwrap_or(0),
            pooled: pooled.iter().collect(),
        });
    }

    // Shape assertions mirroring the paper's qualitative claims.
    for s in &all {
        assert!(
            s.pooled[0].1 > 0.25,
            "{}: d=1 bin should dominate, got {}",
            s.quantity,
            s.pooled[0].1
        );
        assert!(s.d_max >= 8, "{}: expected a heavy tail", s.quantity);
    }
    println!("shape check: every quantity has dominant d=1 mass and a heavy tail — OK");
    let snapshot = JsonValue::array(all.iter().map(|s| {
        JsonValue::obj([
            ("quantity", s.quantity.as_str().into()),
            ("total_observations", s.total_observations.into()),
            ("d_max", s.d_max.into()),
            ("pooled", JsonValue::array(s.pooled.iter().copied())),
        ])
    }));
    record_json("fig1", &snapshot);
}
