//! Shared support for the reproduction harness.
//!
//! Each paper table/figure has a binary in `src/bin/` that prints the
//! regenerated rows/series and records a JSON snapshot under
//! `results/`. This library holds what they share: the six synthetic
//! observatory scenarios standing in for the paper's
//! locations/dates/window sizes (Figure 3), plus small formatting and
//! result-recording helpers.

use palu::params::PaluParams;
use palu_cli::json::JsonValue;
use palu_traffic::observatory::{Observatory, ObservatoryConfig};
use palu_traffic::packets::EdgeIntensity;
use std::io::Write;
use std::path::PathBuf;

/// One synthetic vantage point standing in for a Figure 3 panel.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Panel label ("location, date" in the paper's figure).
    pub name: &'static str,
    /// Underlying-network parameters (window `p` is nominal; the
    /// packet budget below determines the realized `p`).
    pub params: PaluParams,
    /// Visible-node budget for the underlying network.
    pub n_nodes: u64,
    /// Packets per window `N_V`.
    pub n_v: u64,
    /// Number of consecutive windows pooled.
    pub windows: usize,
    /// Per-link traffic intensity model.
    pub intensity: EdgeIntensity,
    /// Whether this panel is the paper's "upper right": botnet-heavy
    /// traffic where the plain ZM fit visibly degrades.
    pub botnet_heavy: bool,
}

/// The six Figure 3 panels. Parameters vary location-to-location the
/// way the paper's panels vary across sites/dates/window sizes; panel
/// index 1 is the deviant botnet-heavy one.
pub fn fig3_scenarios() -> Vec<Scenario> {
    let mk = |c: f64, l: f64, lam: f64, alpha: f64| {
        PaluParams::from_core_leaf_fractions(c, l, lam, alpha, 0.5)
            .expect("scenario parameters are valid")
    };
    vec![
        Scenario {
            name: "Synthetic-Tokyo 2026-03-12 (N_V=1e5)",
            params: mk(0.55, 0.20, 2.0, 2.0),
            n_nodes: 120_000,
            n_v: 100_000,
            windows: 16,
            intensity: EdgeIntensity::Uniform,
            botnet_heavy: false,
        },
        Scenario {
            name: "Synthetic-Chicago 2026-04-02 (botnet-heavy, N_V=1e5)",
            // Tiny core, huge unattached population with larger stars:
            // the ZM misfit panel (paper's upper right).
            params: mk(0.10, 0.05, 6.0, 2.5),
            n_nodes: 150_000,
            n_v: 100_000,
            windows: 16,
            intensity: EdgeIntensity::Uniform,
            botnet_heavy: true,
        },
        Scenario {
            name: "Synthetic-Amsterdam 2026-02-27 (N_V=3e5)",
            params: mk(0.65, 0.15, 1.0, 1.8),
            n_nodes: 200_000,
            n_v: 300_000,
            windows: 12,
            intensity: EdgeIntensity::Uniform,
            botnet_heavy: false,
        },
        Scenario {
            name: "Synthetic-SanJose 2026-05-19 (N_V=3e5)",
            params: mk(0.45, 0.30, 3.0, 2.2),
            n_nodes: 150_000,
            n_v: 300_000,
            windows: 12,
            intensity: EdgeIntensity::Pareto { shape: 1.5 },
            botnet_heavy: false,
        },
        Scenario {
            name: "Synthetic-Singapore 2026-01-08 (N_V=1e6)",
            params: mk(0.60, 0.10, 4.0, 2.6),
            n_nodes: 300_000,
            n_v: 1_000_000,
            windows: 8,
            intensity: EdgeIntensity::Uniform,
            botnet_heavy: false,
        },
        Scenario {
            name: "Synthetic-Frankfurt 2026-06-30 (N_V=1e6)",
            params: mk(0.50, 0.25, 1.5, 3.0),
            n_nodes: 250_000,
            n_v: 1_000_000,
            windows: 8,
            intensity: EdgeIntensity::Uniform,
            botnet_heavy: false,
        },
    ]
}

impl Scenario {
    /// Stand up this scenario's observatory (deterministic for a given
    /// master seed).
    pub fn observatory(&self, seed: u64) -> Observatory {
        let gen = self
            .params
            .generator(self.n_nodes)
            .expect("scenario generator is valid");
        Observatory::new(
            ObservatoryConfig {
                name: self.name.to_string(),
                date: String::new(),
                n_v: self.n_v,
            },
            &gen,
            self.intensity,
            seed,
        )
    }
}

/// Format a probability for table output: fixed-point for large
/// values, scientific for small.
pub fn fmt_p(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// Print a separator line sized to a header.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Record an experiment's machine-readable snapshot under
/// `results/<id>.json` (repo root), creating the directory on demand.
/// Failures to write are reported but non-fatal — the printed output
/// is the primary artifact. The JSON is produced by the workspace's
/// own writer ([`palu_cli::json`]); no serde in the dependency graph.
pub fn record_json(experiment_id: &str, value: &JsonValue) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment_id}.json"));
    if let Err(e) =
        std::fs::File::create(&path).and_then(|mut f| f.write_all(value.pretty().as_bytes()))
    {
        eprintln!("note: could not write {}: {e}", path.display());
    } else {
        eprintln!("[recorded {}]", path.display());
    }
}

/// Render one or more pooled `D(d_i)` series as an ASCII log-log
/// chart (degrees across, log-probability down), the terminal
/// equivalent of the paper's figures. Series beyond the first are
/// drawn with distinct glyphs; bins where a series is zero are left
/// blank.
pub fn ascii_loglog(series: &[(&str, &palu_stats::logbin::DifferentialCumulative)]) -> String {
    const GLYPHS: [char; 6] = ['o', '*', '+', 'x', '#', '@'];
    const HEIGHT: usize = 16;
    let n_bins = series.iter().map(|(_, s)| s.n_bins()).max().unwrap_or(0);
    if n_bins == 0 {
        return String::from("(empty series)\n");
    }
    // Log-probability range across all series.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in series {
        for i in 0..s.n_bins() {
            let v = s.value(i);
            if v > 0.0 {
                lo = lo.min(v.log10());
                hi = hi.max(v.log10());
            }
        }
    }
    if !lo.is_finite() {
        return String::from("(all-zero series)\n");
    }
    let span = (hi - lo).max(1e-9);
    let col_width = 3usize;
    let mut grid = vec![vec![' '; n_bins * col_width]; HEIGHT];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for i in 0..s.n_bins() {
            let v = s.value(i);
            if v <= 0.0 {
                continue;
            }
            let row = ((hi - v.log10()) / span * (HEIGHT - 1) as f64).round() as usize;
            grid[row.min(HEIGHT - 1)][i * col_width + 1] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("1e{hi:>6.1} |")
        } else if r == HEIGHT - 1 {
            format!("1e{lo:>6.1} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(n_bins * col_width));
    out.push('\n');
    out.push_str("          ");
    for i in 0..n_bins {
        let tick = if i % 4 == 0 {
            format!("{:<width$}", format!("2^{i}"), width = col_width * 4)
        } else {
            String::new()
        };
        if i % 4 == 0 {
            out.push_str(&tick);
        }
    }
    out.push('\n');
    if series.len() > 1 {
        out.push_str("          legend: ");
        for (si, (name, _)) in series.iter().enumerate() {
            out.push_str(&format!("{} = {}  ", GLYPHS[si % GLYPHS.len()], name));
        }
        out.push('\n');
    }
    out
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/palu-bench → ../../results.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_valid_and_distinct() {
        let scenarios = fig3_scenarios();
        assert_eq!(scenarios.len(), 6);
        let names: std::collections::HashSet<_> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(scenarios.iter().filter(|s| s.botnet_heavy).count(), 1);
        for s in &scenarios {
            // Constraint holds for every panel.
            let cv = PaluParams::constraint_value(
                s.params.core,
                s.params.leaves,
                s.params.unattached,
                s.params.lambda,
            );
            assert!((cv - 1.0).abs() < 1e-9, "{}", s.name);
            assert!(s.windows >= 8);
        }
    }

    #[test]
    fn observatories_stand_up() {
        let s = &fig3_scenarios()[0];
        let mut obs = s.observatory(42);
        let w = obs.next_window();
        assert_eq!(w.n_v(), s.n_v);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_p(0.0), "0");
        assert_eq!(fmt_p(0.5), "0.5000");
        assert!(fmt_p(1e-6).contains('e'));
        assert_eq!(rule(3), "---");
    }

    #[test]
    fn ascii_loglog_renders_series() {
        use palu_stats::logbin::DifferentialCumulative;
        let a = DifferentialCumulative::from_values(vec![0.5, 0.25, 0.125, 0.125]);
        let b = DifferentialCumulative::from_values(vec![0.6, 0.3, 0.1]);
        let chart = ascii_loglog(&[("measured", &a), ("model", &b)]);
        assert!(chart.contains('o'));
        assert!(chart.contains('*'));
        assert!(chart.contains("legend"));
        assert!(chart.contains("2^0"));
        // Empty / all-zero inputs degrade gracefully.
        assert!(ascii_loglog(&[]).contains("empty"));
        let z = DifferentialCumulative::from_values(vec![0.0, 0.0]);
        assert!(ascii_loglog(&[("z", &z)]).contains("all-zero"));
    }

    #[test]
    fn results_dir_points_at_workspace_root() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists());
    }
}
