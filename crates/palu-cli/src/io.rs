//! Text file formats for graphs and histograms.
//!
//! * **edge list** — one `u v` pair of node ids per line; `#` comments
//!   and blank lines ignored. The interchange format for networks.
//! * **degree histogram** — one `degree count` pair per line; same
//!   comment rules. The interchange format for fitted distributions.
//!
//! Both formats match what one gets from standard tools (SNAP-style
//! edge lists; `sort | uniq -c`-style histograms), so real data drops
//! in directly.

use palu_graph::graph::Graph;
use palu_stats::histogram::DegreeHistogram;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Read an edge list from a reader.
///
/// Node ids may be arbitrary `u32`s; the graph is sized to the largest
/// id seen. Lines failing to parse yield an error naming the line
/// number.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `u v`", lineno + 1));
        };
        if parts.next().is_some() {
            return Err(format!("line {}: too many fields", lineno + 1));
        }
        let u: u32 = a
            .parse()
            .map_err(|e| format!("line {}: bad node id {a:?} ({e})", lineno + 1))?;
        let v: u32 = b
            .parse()
            .map_err(|e| format!("line {}: bad node id {b:?} ({e})", lineno + 1))?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let mut g = Graph::with_nodes(if edges.is_empty() { 0 } else { max_id + 1 });
    for (u, v) in edges {
        g.add_edge(u, v);
    }
    Ok(g)
}

/// Write a graph as an edge list.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# palu edge list: {} nodes, {} edges",
        g.n_nodes(),
        g.n_edges()
    )?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read a degree histogram (`degree count` per line).
pub fn read_histogram<R: Read>(reader: R) -> Result<DegreeHistogram, String> {
    let mut h = DegreeHistogram::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `degree count`", lineno + 1));
        };
        let d: u64 = a
            .parse()
            .map_err(|e| format!("line {}: bad degree {a:?} ({e})", lineno + 1))?;
        let c: u64 = b
            .parse()
            .map_err(|e| format!("line {}: bad count {b:?} ({e})", lineno + 1))?;
        h.increment(d, c);
    }
    Ok(h)
}

/// Write a degree histogram (`degree count` per line, ascending).
pub fn write_histogram<W: Write>(h: &DegreeHistogram, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# palu degree histogram: {} observations", h.total())?;
    for (d, c) in h.iter() {
        writeln!(w, "{d} {c}")?;
    }
    w.flush()
}

/// Lazily iterate packets (`src dst` per line) from a reader — the
/// streaming input for window pooling. Malformed lines surface as
/// `Err` items carrying the line number; comments/blank lines are
/// skipped.
pub fn packet_stream<R: Read>(
    reader: R,
) -> impl Iterator<Item = Result<palu_traffic::packets::Packet, String>> {
    BufReader::new(reader)
        .lines()
        .enumerate()
        .filter_map(|(lineno, line)| {
            let line = match line {
                Ok(l) => l,
                Err(e) => return Some(Err(format!("line {}: {e}", lineno + 1))),
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return None;
            }
            let mut parts = trimmed.split_whitespace();
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return Some(Err(format!("line {}: expected `src dst`", lineno + 1)));
            };
            let src: u32 = match a.parse() {
                Ok(v) => v,
                Err(e) => return Some(Err(format!("line {}: bad src ({e})", lineno + 1))),
            };
            let dst: u32 = match b.parse() {
                Ok(v) => v,
                Err(e) => return Some(Err(format!("line {}: bad dst ({e})", lineno + 1))),
            };
            Some(Ok(palu_traffic::packets::Packet { src, dst }))
        })
}

/// Convenience: read an edge list from a path.
pub fn read_edge_list_path(path: &Path) -> Result<Graph, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_edge_list(f)
}

/// Convenience: read a histogram from a path.
pub fn read_histogram_path(path: &Path) -> Result<DegreeHistogram, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_histogram(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        g.add_edge(1, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.edges(), g.edges());
        assert_eq!(back.n_nodes(), 5);
    }

    #[test]
    fn edge_list_tolerates_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n  # indented comment\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.n_nodes(), 4);
    }

    #[test]
    fn edge_list_rejects_malformed_lines() {
        assert!(read_edge_list("0".as_bytes()).is_err());
        assert!(read_edge_list("0 1 2".as_bytes()).is_err());
        assert!(read_edge_list("a b".as_bytes()).is_err());
        assert!(read_edge_list("0 -1".as_bytes()).is_err());
        // Error messages carry the line number.
        let e = read_edge_list("0 1\nbroken".as_bytes()).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn histogram_round_trip() {
        let h = DegreeHistogram::from_counts([(1, 100), (2, 50), (10, 3)]);
        let mut buf = Vec::new();
        write_histogram(&h, &mut buf).unwrap();
        let back = read_histogram(buf.as_slice()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn histogram_accumulates_duplicate_lines() {
        let h = read_histogram("1 5\n1 7\n2 1\n".as_bytes()).unwrap();
        assert_eq!(h.count(1), 12);
        assert_eq!(h.count(2), 1);
    }

    #[test]
    fn histogram_rejects_malformed() {
        assert!(read_histogram("1".as_bytes()).is_err());
        assert!(read_histogram("x 1".as_bytes()).is_err());
        assert!(read_histogram("1 y".as_bytes()).is_err());
    }

    #[test]
    fn packet_stream_is_lazy_and_validates() {
        let text = "# trace\n0 1\n2 3\n\nbad line here\n4 5\n";
        let items: Vec<_> = packet_stream(text.as_bytes()).collect();
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].as_ref().unwrap().src, 0);
        assert_eq!(items[1].as_ref().unwrap().dst, 3);
        let err = items[2].as_ref().unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        assert_eq!(items[3].as_ref().unwrap().src, 4);
    }
}
