//! The `palu` subcommands.
//!
//! | command | function |
//! |---|---|
//! | `generate` | PALU underlying network → edge list |
//! | `observe` | edge list + `p` → sampled edge list |
//! | `degrees` | edge list → degree histogram |
//! | `fit` | degree histogram → ZM + PALU + CSN fits |
//! | `census` | edge list → Figure-2 topology census |
//! | `help` | usage |
//!
//! Every command writes its primary output to `--out` (or stdout) and
//! human-readable progress to stderr, so pipelines compose:
//!
//! ```text
//! palu-cli generate --nodes 100000 --core 0.5 --leaves 0.2 --lambda 3 \
//!               --alpha 2 --seed 1 --out net.txt
//! palu-cli observe  --in net.txt --p 0.5 --seed 2 --out obs.txt
//! palu-cli degrees  --in obs.txt --out deg.txt
//! palu-cli fit      --in deg.txt --p 0.5
//! ```

use crate::args::ParsedArgs;
use crate::io;
use palu::estimate::PaluEstimator;
use palu::params::PaluParams;
use palu::zm_fit::ZmFitter;
use palu_graph::census::TopologyCensus;
use palu_graph::clustering::clustering;
use palu_graph::sample::sample_edges;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::mle::{fit_csn, CsnOptions};
use palu_stats::rng::Xoshiro256pp;
use std::io::Write;
use std::path::Path;

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

/// Process exit codes for typed refusals, so scripts (ci.sh smokes
/// included) can assert the precise failure class instead of a
/// generic nonzero.
pub mod exit {
    /// Unclassified runtime failure (I/O, aborted window, …).
    pub const RUNTIME: i32 = 1;
    /// Bad command line.
    pub const USAGE: i32 = 2;
    /// The budget governor's admission control refused the capture.
    pub const ADMISSION_REFUSED: i32 = 3;
    /// A journal is corrupt: checksum mismatch, malformed record, or
    /// not a journal at all.
    pub const JOURNAL_CORRUPT: i32 = 4;
    /// A journal's identity (seed, version, or fingerprinted
    /// parameter) does not match the run.
    pub const CONFIG_MISMATCH: i32 = 5;
    /// A federated merge ended below its `--min-coverage` threshold.
    pub const COVERAGE: i32 = 6;
    /// Quarantine dropped more windows than the policy tolerates.
    pub const QUARANTINE_OVERFLOW: i32 = 7;
    /// The federation service could not be reached (or a session
    /// could not complete) before the retry deadline.
    pub const SERVICE_UNAVAILABLE: i32 = 8;
    /// A zombie worker presented a stale fencing token and was
    /// refused by the dispatcher.
    pub const DISPATCH_FENCED: i32 = 9;
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: exit::USAGE,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: exit::RUNTIME,
        }
    }

    fn with_code(message: impl Into<String>, code: i32) -> Self {
        CliError {
            message: message.into(),
            code,
        }
    }
}

/// Exit code for a typed journal refusal: corruption vs identity
/// mismatch vs plain I/O.
fn journal_fault_code(fault: &palu_traffic::JournalFault) -> i32 {
    use palu_traffic::JournalFault;
    match fault {
        JournalFault::Io { .. } => exit::RUNTIME,
        JournalFault::NotAJournal { .. }
        | JournalFault::ChecksumMismatch { .. }
        | JournalFault::Malformed { .. } => exit::JOURNAL_CORRUPT,
        JournalFault::VersionSkew { .. }
        | JournalFault::SeedMismatch { .. }
        | JournalFault::ConfigMismatch { .. } => exit::CONFIG_MISMATCH,
    }
}

/// Map a journal refusal to a [`CliError`] with its typed exit code.
/// A `ConfigMismatch` names the exact parameter that skewed (the
/// fingerprint diagnosis), so the operator sees *which* flag differs.
fn journal_fault_error(context: &str, fault: &palu_traffic::JournalFault) -> CliError {
    CliError::with_code(format!("{context}: {fault}"), journal_fault_code(fault))
}

/// Map a pipeline failure to a [`CliError`] with its typed exit code.
fn pipeline_error(e: &palu_traffic::PipelineError) -> CliError {
    use palu_traffic::{BudgetFault, PipelineError};
    let code = match e {
        PipelineError::Journal(fault) => journal_fault_code(fault),
        PipelineError::QuarantineOverflow { .. } => exit::QUARANTINE_OVERFLOW,
        PipelineError::Budget(BudgetFault::AdmissionRefused { .. }) => exit::ADMISSION_REFUSED,
        _ => exit::RUNTIME,
    };
    CliError::with_code(format!("pipeline: {e}"), code)
}

/// Map a federation failure to a [`CliError`] with its typed exit
/// code: identity skew and coverage shortfall are the headline typed
/// refusals; plan/input problems are usage errors.
fn federation_error(e: &palu_traffic::FederationError) -> CliError {
    use palu_traffic::FederationError;
    match e {
        FederationError::BadPlan { .. }
        | FederationError::BadShardIndex { .. }
        | FederationError::BadCoverage { .. }
        | FederationError::NoJournals => CliError::usage(e.to_string()),
        FederationError::IdentitySkew { .. } => {
            CliError::with_code(e.to_string(), exit::CONFIG_MISMATCH)
        }
        FederationError::Coverage { .. } => CliError::with_code(e.to_string(), exit::COVERAGE),
        FederationError::Overlap(_) => CliError::with_code(e.to_string(), exit::JOURNAL_CORRUPT),
        FederationError::Pipeline(p) => pipeline_error(p),
    }
}

/// Map a typed service fault to a [`CliError`] with the exit code of
/// its refusal class — the same convention as the merge: corruption →
/// 4, identity skew → 5, coverage → 6, plus 8 for transport
/// exhaustion (`SERVICE_UNAVAILABLE`) and 9 for a fenced zombie
/// lease (`DISPATCH_FENCED`).
fn service_fault_error(context: &str, fault: &palu_traffic::ServiceFault) -> CliError {
    use palu_traffic::RefusalClass;
    let code = match fault.refusal() {
        RefusalClass::Usage => exit::USAGE,
        RefusalClass::Corrupt => exit::JOURNAL_CORRUPT,
        RefusalClass::IdentitySkew => exit::CONFIG_MISMATCH,
        RefusalClass::Coverage => exit::COVERAGE,
        RefusalClass::Unavailable => exit::SERVICE_UNAVAILABLE,
        RefusalClass::Fenced => exit::DISPATCH_FENCED,
    };
    CliError::with_code(format!("{context}: {fault}"), code)
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

/// Checked `u64 → usize` for CLI options: a clear usage error instead
/// of a silent narrowing cast on 32-bit platforms.
fn usize_opt(v: u64, option: &str) -> Result<usize, CliError> {
    usize::try_from(v).map_err(|_| {
        CliError::usage(format!(
            "--{option} = {v} does not fit in usize on this platform"
        ))
    })
}

/// Parse a byte-size option value: a plain integer with an optional
/// `k`/`M`/`G` suffix (powers of 1024). `64M` → 67 108 864.
fn parse_bytes(spec: &str) -> Result<u64, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Err("empty size (expected e.g. 64M or 1073741824)".to_string());
    }
    let (digits, shift) = match spec.as_bytes()[spec.len() - 1] {
        b'k' | b'K' => (&spec[..spec.len() - 1], 10),
        b'M' => (&spec[..spec.len() - 1], 20),
        b'G' => (&spec[..spec.len() - 1], 30),
        _ => (spec, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|e| format!("not a byte count ({e}); expected e.g. 64M or 1073741824"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("{spec} overflows a 64-bit byte count"))
}

/// Serialize a pipeline metrics snapshot as a JSON object: per-stage
/// wall-times in nanoseconds plus packet/window/thread counters.
/// Shared by `simulate --metrics` and the palu-bench binaries.
pub fn metrics_json(snap: &palu_traffic::MetricsSnapshot) -> crate::json::JsonValue {
    use crate::json::JsonValue;
    let stages = JsonValue::obj(
        snap.stages()
            .iter()
            .map(|&(name, ns)| (name, JsonValue::UInt(ns))),
    );
    JsonValue::obj([
        ("stage_ns", stages),
        ("total_stage_ns", JsonValue::UInt(snap.total_ns())),
        ("capture_wall_ns", JsonValue::UInt(snap.capture_wall_ns)),
        ("packets", JsonValue::UInt(snap.packets)),
        ("packets_per_sec", JsonValue::Float(snap.packets_per_sec())),
        ("windows", JsonValue::UInt(snap.windows)),
        ("threads", JsonValue::UInt(snap.threads)),
        ("retries", JsonValue::UInt(snap.retries)),
        ("quarantined", JsonValue::UInt(snap.quarantined)),
    ])
}

/// Serialize a [`palu_traffic::FaultReport`] as a JSON object:
/// headline counters, per-window fault records (window order, so the
/// document is deterministic for a given seed and injection spec),
/// the fit-restart ladder's rung histogram, and the budget governor's
/// degradation events (empty unless a memory budget was set).
pub fn fault_report_json(report: &palu_traffic::FaultReport) -> crate::json::JsonValue {
    use crate::json::JsonValue;
    let records = JsonValue::Array(
        report
            .records
            .iter()
            .map(|r| {
                JsonValue::obj([
                    ("window", JsonValue::UInt(r.window)),
                    ("kind", JsonValue::Str(r.kind.name().to_string())),
                    ("attempts", JsonValue::UInt(u64::from(r.attempts))),
                    ("outcome", JsonValue::Str(r.outcome.name().to_string())),
                ])
            })
            .collect(),
    );
    let ladder = JsonValue::obj(
        report
            .ladder
            .entries()
            .into_iter()
            .map(|(name, count)| (name, JsonValue::UInt(count))),
    );
    let degradations = JsonValue::Array(
        report
            .degradations
            .iter()
            .map(|d| {
                JsonValue::obj([
                    ("rung", JsonValue::Str(d.rung.name().to_string())),
                    ("window", JsonValue::UInt(d.window)),
                    ("accounted_bytes", JsonValue::UInt(d.accounted_bytes)),
                ])
            })
            .collect(),
    );
    JsonValue::obj([
        ("windows", JsonValue::UInt(report.windows)),
        ("survivors", JsonValue::UInt(report.survivors)),
        ("quarantined", JsonValue::UInt(report.quarantined)),
        ("substituted", JsonValue::UInt(report.substituted)),
        ("recovered", JsonValue::UInt(report.recovered)),
        ("injected", JsonValue::UInt(report.injected)),
        ("retries", JsonValue::UInt(report.retries)),
        ("records", records),
        ("ladder", ladder),
        ("degradations", degradations),
    ])
}

/// Usage text.
pub const USAGE: &str = "\
palu — PALU hybrid power-law network-traffic model (Devlin et al. 2021)

USAGE: palu-cli <command> [--option value]...

COMMANDS:
  generate   Generate a PALU underlying network as an edge list
             --nodes N --core C --leaves L --lambda λ --alpha α
             [--p P=0.5] [--seed S=1] [--out FILE=stdout]
  observe    Keep each edge of an edge list independently with prob. p
             --in FILE --p P [--seed S=1] [--out FILE=stdout]
  degrees    Reduce an edge list to a degree histogram (degree ≥ 1)
             --in FILE [--out FILE=stdout]
  fit        Fit models to a degree histogram
             --in FILE [--p P] [--boot N=0]
             (ZM (α, δ); CSN baseline; PALU constants; with --p also
              the recovered underlying (C, L, U, λ); with --boot N
              bootstrap CIs on the ZM fit)
             Service mode: query a federation server's rolling merged
             fit instead of reading a histogram. Output is the
             canonical pooled format, byte-identical to single-process
             `simulate` at full coverage; below the server's coverage
             threshold the fit refuses (exit 6) unless --allow-partial
             --server ADDR [--allow-partial] [+ retry options, see
             submit]
  census     Figure-2 topology census + clustering of an edge list
             --in FILE
  simulate   Run a synthetic observatory end to end: PALU network →
             packet windows → pooled D(d_i) ± σ series. Windows are
             processed in parallel; output is bit-identical for any
             --threads value
             --core C --leaves L --lambda λ --alpha α
             [--nodes N=100000] [--nv NV=100000] [--windows W=8]
             [--seed S=1] [--threads T=auto] [--metrics FILE]
             [--out FILE=stdout]
             Fault tolerance (deterministic per seed+spec):
             [--inject-faults SPEC]   seeded fault injector; SPEC is a
               bare rate (split evenly) or kind=rate pairs from
               truncate,nan,dup,panic,stall, e.g. 0.5 or
               truncate=0.2,panic=0.1
             [--fail-policy abort|quarantine|substitute]  (default abort)
             [--max-retries K=1]      fresh-seed retries per window
             [--quarantine-threshold F=1.0]  max quarantined fraction
             [--window-deadline-ms MS]  stall watchdog: an attempt
               exceeding MS is classified `stalled` and retried /
               quarantined like any other window fault
             With injection active a fault report (per-window kind,
             attempts, outcome; restart-ladder rungs) is appended to
             the --metrics JSON and summarized on stderr
             Durable checkpoint/resume (crash-equivalent capture):
             [--journal FILE]  append each completed window to a CRC32
               write-ahead journal; [--resume] replay completed windows
               from FILE instead of recomputing them. A resumed capture
               is bit-identical to an uninterrupted one at any kill
               point and --threads value; a journal from a different
               seed/parameter set (or with corrupt records) is refused
             Bounded memory (resource-budget governor):
             [--memory-budget BYTES]  account every capture-phase
               allocation against a hard watermark (suffix k/M/G =
               2^10/2^20/2^30 bytes). Admission projects the peak
               footprint before any window is synthesized and refuses
               configurations whose floor cannot fit (exit 1, with a
               feasible suggestion); past the soft watermark the
               capture degrades through deterministic rungs —
               coarsen_bins, shrink_workers, spill_pooled — recorded
               in the fault report. Pooled output stays bit-identical
               to an unbudgeted run for any --threads value
             [--admission]  strict admission: also refuse configs that
               would only complete by degrading (projected undegraded
               peak above the hard watermark)
  shard      Run one shard of a federated capture: the simulate
             engine over shard i's window range of an n-shard plan,
             journaling under the full capture's identity. Takes every
             simulate option; --journal is required (the merge
             consumes shard journals); --resume re-captures only the
             shard's missing windows after a crash
             --shard-index I --shards N --journal FILE
             + all simulate options
             Merge shard journals with `pool --merge` (below); a
             merge of clean shards is bit-identical to the
             single-process `simulate` output for any shard/thread
             count
  gof        Goodness-of-fit report for a degree histogram: CSN
             semiparametric bootstrap p-value + power-law-vs-lognormal
             Vuong test; the CSN fit runs a deterministic restart
             ladder and reports which rung produced the estimate
             --in FILE [--boot N=50] [--seed S=1]
  pool       Stream a packet trace (`src dst` per line) through
             fixed-N_V windows into pooled D(d_i) ± σ, constant memory
             --in FILE --nv NV [--out FILE=stdout]
             Federated merge mode: pool shard journals instead of a
             trace. Shard-local failures quarantine as typed
             ShardFaults; identity skew (seed/parameter fingerprint)
             is a hard refusal naming the skewed parameter
             --merge A.journal B.journal … [--min-coverage F=1.0]
             [--recapture]  recompute missing windows
             deterministically instead of quarantining them
             + the simulate options naming the capture's identity
             With --metrics FILE a `federation` section (coverage
             arithmetic, per-shard rows, typed faults) is included
  serve      Run the federation service: accept shard-journal
             submissions over TCP, persist them through per-shard
             journals (a SIGKILL'd server rebuilds coverage from disk
             on restart), and serve the rolling merged fit. Drains
             gracefully on `submit --shutdown`
             --journal-dir DIR [--listen ADDR=127.0.0.1:0]
             [--shards N=1] [--min-coverage F=1.0]
             [--read-timeout-ms MS=5000] [--addr-file FILE]
             [--metrics FILE]
             + the simulate options naming the capture's identity
  submit     Submit one shard journal to a federation service with
             deadline + jittered-backoff retries; resubmission is
             idempotent, and a client killed mid-frame resumes from
             the server's acknowledged window set
             --server ADDR --journal FILE
             [--shard-index I=0] [--shards N=1]
             [--retry-deadline-ms MS=30000] [--backoff-base-ms MS=20]
             [--backoff-cap-ms MS=500] [--io-timeout-ms MS=5000]
             [--wire-faults SPEC]  seeded wire-fault injector; SPEC is
               a bare rate (split evenly) or kind=rate pairs from
               drop,corrupt,dup,delay,truncate
             + the simulate options naming the capture's identity
             With --shutdown (and no journal) the server drains and
             exits after in-flight sessions finish
  dispatch   Run the federation dispatcher: a serve collector wrapped
             with lease-based shard supervision. Hands out
             window-range leases to `work` clients, monitors liveness
             via heartbeats, re-dispatches expired leases
             (deterministically: lowest incomplete shard first), and
             fences zombie workers with a typed refusal. Exits when
             every shard completes unless --linger; a SIGKILL'd
             dispatcher restarted over the same --journal-dir derives
             completion from the shard journals and re-dispatches
             only what is missing
             --journal-dir DIR [--listen ADDR=127.0.0.1:0]
             [--shards N=1] [--min-coverage F=1.0]
             [--lease-ms MS=10000] [--heartbeat-ms MS=lease/4]
             [--linger] [--stall-ms MS]  stall watchdog: give up when
               coverage is incomplete but no lease is live or renewed
               for MS (exit 1 with the typed DispatchStalled event)
             [--read-timeout-ms MS=5000] [--addr-file FILE]
             [--metrics FILE]  dispatch + service sections
             + the simulate options naming the capture's identity
  work       Serve leases from a dispatcher: request a lease, capture
             the granted window range into a local journal under
             --work-dir, submit it through the idempotent submit
             path, heartbeat on a jittered interval, repeat until the
             dispatcher reports the capture complete
             --server ADDR --work-dir DIR [--worker ID=0]
             [--poll-ms MS=50] [+ retry and wire-fault options, see
             submit] + the simulate options naming the capture's
             identity
             [--chaos-kill pre-lease|mid-capture|pre-submit]  die at
               that phase exactly as a SIGKILL would (mid-capture
               leaves a half-journaled range; pre-submit a complete
               local journal the collector never saw)
             [--resume-lease]  wake up as a zombie holding the lease
               state a killed incarnation left in --work-dir: the
               heartbeat draws the typed fenced refusal (exit 9) and
               the journal resubmission is a byte-idempotent no-op
  help       This message

EXIT CODES (the one authoritative table):
  0 ok
  1 runtime failure (I/O, aborted window, dispatch stall, …)
  2 usage
  3 admission refused (budget governor)
  4 journal corrupt (checksum / malformed / not a journal)
  5 journal identity mismatch (seed, version, or fingerprint skew)
  6 merge coverage below threshold
  7 quarantine overflow
  8 service unreachable before the retry deadline
  9 lease fenced (zombie worker refused by the dispatcher)
";

/// Write `f`'s output to `--out` or stdout.
fn with_output<F>(args: &ParsedArgs, f: F) -> Result<(), CliError>
where
    F: FnOnce(&mut dyn Write) -> Result<(), CliError>,
{
    match args.options.get("out").filter(|s| !s.is_empty()) {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            f(&mut w)?;
            w.flush()
                .map_err(|e| CliError::runtime(format!("{path}: {e}")))
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            f(&mut lock)
        }
    }
}

fn cmd_generate(args: &ParsedArgs) -> Result<(), CliError> {
    let nodes = args.u64_or("nodes", 100_000)?;
    let core = args.require_f64("core")?;
    let leaves = args.require_f64("leaves")?;
    let lambda = args.require_f64("lambda")?;
    let alpha = args.require_f64("alpha")?;
    let p = args.f64_or("p", 0.5)?;
    let seed = args.u64_or("seed", 1)?;

    let params = PaluParams::from_core_leaf_fractions(core, leaves, lambda, alpha, p)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let net = params
        .generator(nodes)
        .map_err(|e| CliError::usage(e.to_string()))?
        .generate(&mut Xoshiro256pp::seed_from_u64(seed));
    eprintln!(
        "generated {} nodes, {} edges (C={core}, L={leaves}, U={:.4}, λ={lambda}, α={alpha})",
        net.graph.n_nodes(),
        net.graph.n_edges(),
        params.unattached
    );
    with_output(args, |w| {
        io::write_edge_list(&net.graph, w).map_err(|e| CliError::runtime(e.to_string()))
    })
}

fn cmd_observe(args: &ParsedArgs) -> Result<(), CliError> {
    let input = args.require("in")?.to_string();
    let p = args.require_f64("p")?;
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage(format!("--p must be in [0,1], got {p}")));
    }
    let seed = args.u64_or("seed", 1)?;
    let g = io::read_edge_list_path(Path::new(&input)).map_err(CliError::usage)?;
    let sampled = sample_edges(&g, p, &mut Xoshiro256pp::seed_from_u64(seed));
    eprintln!(
        "observed {} of {} edges at p = {p}",
        sampled.n_edges(),
        g.n_edges()
    );
    with_output(args, |w| {
        io::write_edge_list(&sampled, w).map_err(|e| CliError::runtime(e.to_string()))
    })
}

fn cmd_degrees(args: &ParsedArgs) -> Result<(), CliError> {
    let input = args.require("in")?.to_string();
    let g = io::read_edge_list_path(Path::new(&input)).map_err(CliError::usage)?;
    let h = g.degree_histogram();
    eprintln!(
        "{} visible nodes, d_max = {}",
        h.total(),
        h.d_max().unwrap_or(0)
    );
    with_output(args, |w| {
        io::write_histogram(&h, w).map_err(|e| CliError::runtime(e.to_string()))
    })
}

fn cmd_fit(args: &ParsedArgs) -> Result<(), CliError> {
    if args
        .options
        .get("server")
        .filter(|s| !s.is_empty())
        .is_some()
    {
        return cmd_fit_server(args);
    }
    let input = args.require("in")?.to_string();
    let h = io::read_histogram_path(Path::new(&input)).map_err(CliError::usage)?;
    if h.is_empty() {
        return Err(CliError::usage("histogram is empty"));
    }
    let pooled = DifferentialCumulative::from_histogram(&h);

    with_output(args, |w| {
        let mut run = || -> Result<(), String> {
            writeln!(w, "# palu fit report for {input}").map_err(|e| e.to_string())?;
            writeln!(
                w,
                "observations: {}   f(1) = {:.4}   d_max = {}",
                h.total(),
                h.fraction_degree_one(),
                h.d_max().unwrap_or(0)
            )
            .map_err(|e| e.to_string())?;

            // Modified Zipf–Mandelbrot.
            let zm = ZmFitter::default()
                .fit(&pooled, None)
                .map_err(|e| e.to_string())?;
            writeln!(
                w,
                "zipf-mandelbrot: alpha = {:.4}  delta = {:+.4}  residual = {:.5}",
                zm.alpha,
                zm.delta,
                zm.objective.sqrt()
            )
            .map_err(|e| e.to_string())?;

            // Optional bootstrap CIs.
            let n_boot = args.u64_or("boot", 0).map_err(|e| e.to_string())?;
            if n_boot > 0 {
                let mut rng =
                    Xoshiro256pp::seed_from_u64(args.u64_or("seed", 1).map_err(|e| e.to_string())?);
                let n_boot = usize_opt(n_boot, "boot").map_err(|e| e.message)?;
                let boot = ZmFitter::default()
                    .fit_bootstrap(&h, n_boot, 0.9, &mut rng)
                    .map_err(|e| e.to_string())?;
                writeln!(
                    w,
                    "  90% CI: alpha in [{:.4}, {:.4}]  delta in [{:+.4}, {:+.4}]  ({} replicates)",
                    boot.alpha_ci.0,
                    boot.alpha_ci.1,
                    boot.delta_ci.0,
                    boot.delta_ci.1,
                    boot.replicates.len()
                )
                .map_err(|e| e.to_string())?;
            }

            // CSN baseline.
            match fit_csn(&h, &CsnOptions::default()) {
                Ok(csn) => writeln!(
                    w,
                    "csn power law:   alpha = {:.4}  x_min = {}  KS = {:.5}  (n_tail = {})",
                    csn.alpha, csn.x_min, csn.ks, csn.n_tail
                )
                .map_err(|e| e.to_string())?,
                Err(e) => {
                    writeln!(w, "csn power law:   not fittable ({e})").map_err(|e| e.to_string())?
                }
            }

            // PALU constants, and the underlying inversion when p known.
            let est = PaluEstimator::default()
                .estimate(&h)
                .map_err(|e| e.to_string())?;
            writeln!(
                w,
                "palu constants:  alpha = {:.4}  c = {:.5}  l = {:.5}  u = {:.5}  Lambda = {:.4}",
                est.simplified.alpha,
                est.simplified.c,
                est.simplified.l,
                est.simplified.u,
                est.simplified.capital_lambda
            )
            .map_err(|e| e.to_string())?;
            if let Some(p_str) = args.options.get("p").filter(|s| !s.is_empty()) {
                let p: f64 = p_str.parse().map_err(|e| format!("--p: {e}"))?;
                let (_, rec) = PaluEstimator::default()
                    .estimate_exact(&h, p)
                    .map_err(|e| e.to_string())?;
                writeln!(
                    w,
                    "palu underlying: C = {:.4}  L = {:.4}  U = {:.4}  lambda = {:.4}  (at p = {p})",
                    rec.core, rec.leaves, rec.unattached, rec.lambda
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        };
        run().map_err(CliError::runtime)
    })
}

fn cmd_census(args: &ParsedArgs) -> Result<(), CliError> {
    let input = args.require("in")?.to_string();
    let g = io::read_edge_list_path(Path::new(&input)).map_err(CliError::usage)?;
    let census = TopologyCensus::of(&g);
    let clust = clustering(&g);
    with_output(args, |w| {
        (|| -> std::io::Result<()> {
            writeln!(w, "# palu census for {input}")?;
            writeln!(w, "nodes                 {}", census.n_nodes)?;
            writeln!(w, "edges                 {}", census.n_edges)?;
            writeln!(w, "isolated nodes        {}", census.isolated_nodes)?;
            writeln!(w, "core nodes            {}", census.core_nodes)?;
            writeln!(w, "core edges            {}", census.core_edges)?;
            writeln!(w, "supernode degree      {}", census.supernode_degree)?;
            writeln!(w, "supernode leaves      {}", census.supernode_leaves)?;
            writeln!(w, "core leaves           {}", census.core_leaves)?;
            writeln!(w, "unattached links      {}", census.unattached_links)?;
            writeln!(w, "detached stars        {}", census.detached_stars)?;
            writeln!(w, "components (w/ edges) {}", census.nontrivial_components)?;
            writeln!(w, "global clustering     {:.6}", clust.global)?;
            writeln!(w, "avg local clustering  {:.6}", clust.average_local)?;
            writeln!(w, "triangles             {}", clust.triangles)?;
            Ok(())
        })()
        .map_err(|e| CliError::runtime(e.to_string()))
    })
}

/// Parse the `--fail-policy` / `--max-retries` /
/// `--quarantine-threshold` / `--window-deadline-ms` options into a
/// [`palu_traffic::FailurePolicy`].
fn parse_fail_policy(args: &ParsedArgs) -> Result<palu_traffic::FailurePolicy, CliError> {
    use palu_traffic::{FailurePolicy, FaultAction};
    let max_retries = args.u64_or("max-retries", 1)?;
    let max_retries = u32::try_from(max_retries)
        .map_err(|_| CliError::usage(format!("--max-retries = {max_retries} is out of range")))?;
    let threshold = args.f64_or("quarantine-threshold", 1.0)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(CliError::usage(format!(
            "--quarantine-threshold must be in [0,1], got {threshold}"
        )));
    }
    let on_fault = match args.options.get("fail-policy").map(String::as_str) {
        None | Some("") | Some("abort") => FaultAction::Abort,
        Some("quarantine") => FaultAction::Quarantine,
        Some("substitute") => FaultAction::Substitute,
        Some(other) => {
            return Err(CliError::usage(format!(
                "--fail-policy must be abort, quarantine, or substitute, got {other:?}"
            )))
        }
    };
    let window_deadline_ms = match args.options.get("window-deadline-ms") {
        None => None,
        Some(_) => {
            let ms = args.u64_or("window-deadline-ms", 0)?;
            if ms == 0 {
                return Err(CliError::usage(
                    "--window-deadline-ms must be a positive number of milliseconds",
                ));
            }
            Some(ms)
        }
    };
    Ok(FailurePolicy {
        on_fault,
        max_retries,
        quarantine_threshold: threshold,
        window_deadline_ms,
    })
}

/// The shared `simulate`/`shard`/`pool --merge` parameter set:
/// everything that shapes a capture's identity (and therefore its
/// journal fingerprint) plus the operational fault/budget knobs.
struct SimCapture {
    nodes: u64,
    core: f64,
    leaves: f64,
    lambda: f64,
    alpha: f64,
    n_v: u64,
    n_windows: usize,
    seed: u64,
    policy: palu_traffic::FailurePolicy,
    injector: Option<palu_traffic::Injector>,
    inject_spec: String,
    budget: Option<palu_traffic::ResourceBudget>,
    strict_admission: bool,
}

impl SimCapture {
    fn parse(args: &ParsedArgs) -> Result<SimCapture, CliError> {
        use palu_traffic::budget::ResourceBudget;
        use palu_traffic::{InjectionSpec, Injector};

        let nodes = args.u64_or("nodes", 100_000)?;
        let core = args.require_f64("core")?;
        let leaves = args.require_f64("leaves")?;
        let lambda = args.require_f64("lambda")?;
        let alpha = args.require_f64("alpha")?;
        let n_v = args.u64_or("nv", 100_000)?;
        let n_windows = usize_opt(args.u64_or("windows", 8)?, "windows")?;
        if n_windows == 0 {
            return Err(CliError::usage(
                "--windows must be positive (an explicit 0-window capture has no pooled result)",
            ));
        }
        let seed = args.u64_or("seed", 1)?;
        let policy = parse_fail_policy(args)?;
        let inject_spec = args.get_or("inject-faults", "").to_string();
        let injector = match args.options.get("inject-faults").filter(|s| !s.is_empty()) {
            Some(spec) => {
                let spec = InjectionSpec::parse(spec)
                    .map_err(|e| CliError::usage(format!("--inject-faults: {e}")))?;
                Some(Injector::new(spec, seed))
            }
            None => None,
        };
        let memory_budget = match args.options.get("memory-budget") {
            Some(spec) => Some(
                parse_bytes(spec).map_err(|e| CliError::usage(format!("--memory-budget: {e}")))?,
            ),
            None => None,
        };
        let strict_admission = args.options.contains_key("admission");
        if strict_admission && memory_budget.is_none() {
            return Err(CliError::usage(
                "--admission requires --memory-budget <bytes>",
            ));
        }
        Ok(SimCapture {
            nodes,
            core,
            leaves,
            lambda,
            alpha,
            n_v,
            n_windows,
            seed,
            policy,
            injector,
            inject_spec,
            budget: memory_budget.map(ResourceBudget::with_limit),
            strict_admission,
        })
    }

    /// Worker count for a capture of `local_windows` windows: the
    /// same clamp the pipeline applies (no more workers than
    /// windows), so banners and metrics snapshots agree.
    fn threads(&self, args: &ParsedArgs, local_windows: usize) -> Result<usize, CliError> {
        Ok(match usize_opt(args.u64_or("threads", 0)?, "threads")? {
            0 => palu_sparse::parallel::default_threads(),
            t => t,
        }
        .clamp(1, local_windows.max(1)))
    }

    /// The fingerprinted parameter manifest: every result-shaping
    /// parameter — but NOT the thread count (the merge is
    /// bit-identical across --threads) and NOT the stall deadline
    /// (watchdog verdicts are operational, not captured data).
    fn fingerprint_parts(&self) -> Vec<String> {
        vec![
            "measurement=undirected-degree".to_string(),
            format!("nodes={}", self.nodes),
            format!("core={}", self.core),
            format!("leaves={}", self.leaves),
            format!("lambda={}", self.lambda),
            format!("alpha={}", self.alpha),
            format!("fail-policy={:?}", self.policy.on_fault),
            format!("max-retries={}", self.policy.max_retries),
            format!("quarantine-threshold={}", self.policy.quarantine_threshold),
            format!("inject-faults={}", self.inject_spec),
        ]
    }

    /// The journal identity this capture binds to (shared verbatim by
    /// `simulate`, every `shard`, and the merge's expectation).
    fn header(&self) -> palu_traffic::JournalHeader {
        palu_traffic::JournalHeader::with_params(
            self.seed,
            self.n_v,
            self.n_windows as u64,
            self.fingerprint_parts(),
        )
    }

    /// Build the observatory (PALU network + packet synthesizer).
    fn observatory(&self) -> Result<palu_traffic::Observatory, CliError> {
        use palu_traffic::observatory::{Observatory, ObservatoryConfig};
        use palu_traffic::packets::EdgeIntensity;
        let params = PaluParams::from_core_leaf_fractions(
            self.core,
            self.leaves,
            self.lambda,
            self.alpha,
            0.5,
        )
        .map_err(|e| CliError::usage(e.to_string()))?;
        let gen = params
            .generator(self.nodes)
            .map_err(|e| CliError::usage(e.to_string()))?;
        Ok(Observatory::new(
            ObservatoryConfig {
                name: "cli".into(),
                date: String::new(),
                n_v: self.n_v,
            },
            &gen,
            EdgeIntensity::Uniform,
            self.seed,
        ))
    }
}

/// Create or resume a capture journal at `path`, with the standard
/// stderr narration. `n_windows` is only for the resume banner.
fn open_journal(
    path: &str,
    header: palu_traffic::JournalHeader,
    resume: bool,
    n_windows: usize,
) -> Result<(palu_traffic::Journal, Option<palu_traffic::Recovery>), CliError> {
    use palu_traffic::Journal;
    if resume && Path::new(path).exists() {
        let (journal, recovery) =
            Journal::resume(path, header).map_err(|e| journal_fault_error("journal", &e))?;
        eprintln!(
            "journal: resumed {} of {} windows from {path} ({} bytes replayed, \
             {} torn record(s) dropped)",
            recovery.windows.len(),
            n_windows,
            recovery.bytes_replayed,
            recovery.torn_records_dropped
        );
        Ok((journal, Some(recovery)))
    } else {
        if resume {
            eprintln!("journal: {path} does not exist yet, starting a fresh capture");
        }
        let journal =
            Journal::create(path, header).map_err(|e| journal_fault_error("journal", &e))?;
        Ok((journal, None))
    }
}

/// Write a pooled `D(d_i) ± σ` series in the canonical `simulate`
/// format — also used by `shard` and `pool --merge`, so a federated
/// merge's output file is byte-comparable to a single-process run's.
fn write_pooled(
    args: &ParsedArgs,
    pooled: &palu_traffic::PooledDistribution,
) -> Result<(), CliError> {
    with_output(args, |w| {
        (|| -> std::io::Result<()> {
            writeln!(
                w,
                "# pooled D(d_i) ± σ over {} windows of the undirected degree",
                pooled.windows
            )?;
            writeln!(w, "# columns: d_i D sigma")?;
            for ((d_i, v), s) in pooled.mean.iter().zip(pooled.sigma.iter()) {
                writeln!(w, "{d_i} {v:.8e} {s:.8e}")?;
            }
            Ok(())
        })()
        .map_err(|e| CliError::runtime(e.to_string()))
    })
}

fn cmd_simulate(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_stats::mle::{fit_csn_with_restarts, CsnOptions};
    use palu_stats::restart::RestartPolicy;
    use palu_traffic::budget::Governor;
    use palu_traffic::metrics::Metrics;
    use palu_traffic::pipeline::{Measurement, Pipeline};

    let sc = SimCapture::parse(args)?;
    let n_windows = sc.n_windows;
    let threads = sc.threads(args, n_windows)?;
    let governor = sc.budget.as_ref().map(|b| Governor {
        budget: b,
        strict_admission: sc.strict_admission,
    });
    let mut obs = sc.observatory()?;
    eprintln!(
        "observatory up: {} windows × {} packets on {} threads (effective p ≈ {:.3})",
        n_windows,
        sc.n_v,
        threads,
        obs.effective_p()
    );
    // Durable checkpoint/resume: the journal identity binds the seed,
    // window geometry, and every result-shaping parameter (see
    // SimCapture::fingerprint_parts for what stays out).
    let resume = args.options.contains_key("resume");
    let journal_state = match args.options.get("journal").filter(|s| !s.is_empty()) {
        Some(path) => Some(open_journal(path, sc.header(), resume, n_windows)?),
        None => {
            if resume {
                return Err(CliError::usage("--resume requires --journal <path>"));
            }
            None
        }
    };
    // Sharded synthesize → window → histogram → bin with a
    // deterministic window-ordered merge: bit-identical to the serial
    // pipeline for any --threads value, fault-tolerant per --fail-policy.
    let metrics = Metrics::new();
    if let Some(b) = &sc.budget {
        eprintln!(
            "budget: {} byte hard watermark (soft {}), admission {}",
            b.hard().unwrap_or(0),
            b.soft().unwrap_or(0),
            if sc.strict_admission {
                "strict"
            } else {
                "floor"
            }
        );
    }
    let mut ft = Pipeline::pool_observatory_governed(
        Measurement::UndirectedDegree,
        &mut obs,
        n_windows,
        threads,
        Some(&metrics),
        &sc.policy,
        sc.injector.as_ref(),
        journal_state.as_ref().map(|(j, _)| j),
        journal_state.as_ref().and_then(|(_, r)| r.as_ref()),
        governor.as_ref(),
    )
    .map_err(|e| pipeline_error(&e))?;
    let injector = &sc.injector;
    let budget = &sc.budget;
    if injector.is_some() {
        // Fit the pooled histogram through the restart ladder so the
        // report shows how far recovery had to climb.
        match fit_csn_with_restarts(
            &ft.histogram,
            &CsnOptions::default(),
            &RestartPolicy::default(),
        ) {
            Ok(fit) => {
                ft.report.ladder.record(fit.rung);
                eprintln!(
                    "csn fit on pooled histogram: alpha = {:.4} via {} rung ({} attempt(s))",
                    fit.value.alpha,
                    fit.rung.name(),
                    fit.attempts
                );
            }
            Err(e) => eprintln!("csn fit on pooled histogram: not fittable ({e})"),
        }
    }
    if !ft.report.is_clean() {
        eprintln!(
            "fault report: {} injected, {} retries, {} recovered, {} quarantined, {} substituted \
             ({} of {} windows survive)",
            ft.report.injected,
            ft.report.retries,
            ft.report.recovered,
            ft.report.quarantined,
            ft.report.substituted,
            ft.report.survivors,
            ft.report.windows
        );
    }
    if !ft.report.degradations.is_empty() {
        eprintln!(
            "budget: {} degradation rung engagement(s) under pressure (peak accounted {} bytes); \
             pooled output is unaffected",
            ft.report.degradations.len(),
            budget.as_ref().map(|b| b.peak()).unwrap_or(0)
        );
    }
    let pooled = &ft.pooled;
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let snap = metrics.snapshot();
        let mut doc = metrics_json(&snap);
        if let JsonValue::Object(pairs) = &mut doc {
            // The budget and journal objects precede fault_report so
            // consumers slicing the document from "fault_report"
            // onward (the CI crash-recovery diff) see identical bytes
            // for a resumed and an uninterrupted capture.
            if let Some(b) = &budget {
                let mut rungs = [0u64; 3];
                for d in &ft.report.degradations {
                    rungs[usize::from(d.rung.code())] += 1;
                }
                pairs.push((
                    "budget".to_string(),
                    JsonValue::obj([
                        ("limit", JsonValue::UInt(b.hard().unwrap_or(0))),
                        ("soft", JsonValue::UInt(b.soft().unwrap_or(0))),
                        (
                            "admission_estimate_bytes",
                            JsonValue::UInt(snap.admission_estimate_bytes),
                        ),
                        (
                            "peak_accounted_bytes",
                            JsonValue::UInt(snap.peak_accounted_bytes),
                        ),
                        ("degradations", JsonValue::UInt(snap.budget_degradations)),
                        ("coarsen_bins", JsonValue::UInt(rungs[0])),
                        ("shrink_workers", JsonValue::UInt(rungs[1])),
                        ("spill_pooled", JsonValue::UInt(rungs[2])),
                    ]),
                ));
            }
            if let Some((journal, _)) = &journal_state {
                pairs.push((
                    "journal".to_string(),
                    JsonValue::obj([
                        ("windows_recovered", JsonValue::UInt(snap.windows_recovered)),
                        (
                            "bytes_replayed",
                            JsonValue::UInt(snap.journal_bytes_replayed),
                        ),
                        (
                            "torn_records_dropped",
                            JsonValue::UInt(snap.journal_torn_dropped),
                        ),
                        ("bytes_appended", JsonValue::UInt(journal.appended_bytes())),
                    ]),
                ));
            }
            pairs.push(("fault_report".to_string(), fault_report_json(&ft.report)));
        }
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        eprintln!(
            "metrics: {} packets in {:.1} ms of stage time across {} threads → {path}",
            snap.packets,
            snap.total_ns() as f64 / 1e6,
            snap.threads
        );
    }
    write_pooled(args, pooled)
}

/// `palu-cli shard --shard-index i --shards n …`: run one shard of a
/// federated capture — the simulate engine over the shard's window
/// range, journaling under the full capture's identity so the shard
/// journals merge back into a single-process-identical pool.
fn cmd_shard(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::budget::Governor;
    use palu_traffic::federation::{capture_shard, ShardPlan};
    use palu_traffic::metrics::Metrics;
    use palu_traffic::pipeline::Measurement;

    let sc = SimCapture::parse(args)?;
    let shards = args.u64_or("shards", 1)?;
    let shard = args.u64_or("shard-index", 0)?;
    let plan = ShardPlan::new(sc.n_windows as u64, shards).map_err(|e| federation_error(&e))?;
    let range = plan.shard_range(shard).ok_or_else(|| {
        CliError::usage(format!("--shard-index {shard} outside --shards {shards}"))
    })?;
    let local = usize_opt(range.window_count(), "shards")?;
    let threads = sc.threads(args, local)?;
    let governor = sc.budget.as_ref().map(|b| Governor {
        budget: b,
        strict_admission: sc.strict_admission,
    });
    let journal_path = args.require("journal").map_err(|_| {
        CliError::usage("shard requires --journal <path> (the merge consumes shard journals)")
    })?;
    let resume = args.options.contains_key("resume");
    let (journal, recovery) = open_journal(journal_path, sc.header(), resume, local)?;
    let mut obs = sc.observatory()?;
    eprintln!(
        "shard {shard}/{shards} up: windows [{}, {}) of {} × {} packets on {threads} threads",
        range.lo, range.hi, sc.n_windows, sc.n_v
    );
    let metrics = Metrics::new();
    let ft = capture_shard(
        Measurement::UndirectedDegree,
        &mut obs,
        &plan,
        shard,
        threads,
        Some(&metrics),
        &sc.policy,
        sc.injector.as_ref(),
        Some(&journal),
        recovery.as_ref(),
        governor.as_ref(),
    )
    .map_err(|e| federation_error(&e))?;
    if !ft.report.is_clean() {
        eprintln!(
            "shard fault report: {} injected, {} retries, {} quarantined \
             ({} of {} windows survive)",
            ft.report.injected,
            ft.report.retries,
            ft.report.quarantined,
            ft.report.survivors,
            ft.report.windows
        );
    }
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let snap = metrics.snapshot();
        let mut doc = metrics_json(&snap);
        if let JsonValue::Object(pairs) = &mut doc {
            pairs.push((
                "shard".to_string(),
                JsonValue::obj([
                    ("index", JsonValue::UInt(shard)),
                    ("shards", JsonValue::UInt(shards)),
                    ("lo", JsonValue::UInt(range.lo)),
                    ("hi", JsonValue::UInt(range.hi)),
                    ("bytes_appended", JsonValue::UInt(journal.appended_bytes())),
                ]),
            ));
            pairs.push(("fault_report".to_string(), fault_report_json(&ft.report)));
        }
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    eprintln!(
        "shard {shard} complete: {} windows journaled to {journal_path}",
        ft.report.survivors + ft.report.quarantined + ft.report.substituted
    );
    write_pooled(args, &ft.pooled)
}

/// Serialize a [`palu_traffic::FederationReport`] as a JSON object:
/// coverage arithmetic, per-shard accounting rows, and the typed
/// shard-fault list (all in shard order, so the document is
/// deterministic).
pub fn federation_json(report: &palu_traffic::FederationReport) -> crate::json::JsonValue {
    use crate::json::JsonValue;
    let shards = JsonValue::Array(
        report
            .shards
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("shard", JsonValue::UInt(s.shard)),
                    ("lo", JsonValue::UInt(s.lo)),
                    ("hi", JsonValue::UInt(s.hi)),
                    ("journaled", JsonValue::UInt(s.journaled)),
                    ("accepted", JsonValue::UInt(s.accepted)),
                    ("survivors", JsonValue::UInt(s.survivors)),
                    ("quarantined", JsonValue::UInt(s.quarantined)),
                    ("injected", JsonValue::UInt(s.injected)),
                    ("retries", JsonValue::UInt(s.retries)),
                    ("stalled", JsonValue::UInt(s.stalled)),
                    ("missing", JsonValue::UInt(s.missing)),
                    (
                        "torn_records_dropped",
                        JsonValue::UInt(s.torn_records_dropped),
                    ),
                    ("torn_bytes_dropped", JsonValue::UInt(s.torn_bytes_dropped)),
                    ("quarantined_shard", JsonValue::Bool(s.quarantined_shard)),
                ])
            })
            .collect(),
    );
    let faults = JsonValue::Array(
        report
            .faults
            .iter()
            .map(|f| {
                JsonValue::obj([
                    ("shard", JsonValue::UInt(f.shard())),
                    ("kind", JsonValue::Str(f.name().to_string())),
                    ("detail", JsonValue::Str(f.to_string())),
                ])
            })
            .collect(),
    );
    let torn_records: u64 = report.shards.iter().map(|s| s.torn_records_dropped).sum();
    let torn_bytes: u64 = report.shards.iter().map(|s| s.torn_bytes_dropped).sum();
    JsonValue::obj([
        ("windows", JsonValue::UInt(report.windows)),
        ("covered", JsonValue::UInt(report.covered)),
        ("missing", JsonValue::UInt(report.missing)),
        ("recaptured", JsonValue::UInt(report.recaptured)),
        ("survivors", JsonValue::UInt(report.survivors)),
        ("min_coverage", JsonValue::Float(report.min_coverage)),
        ("merge_levels", JsonValue::UInt(report.merge_levels)),
        (
            "duplicates_removed",
            JsonValue::UInt(report.duplicates_removed),
        ),
        ("torn_records_dropped", JsonValue::UInt(torn_records)),
        ("torn_bytes_dropped", JsonValue::UInt(torn_bytes)),
        ("shard_count", JsonValue::UInt(report.shards.len() as u64)),
        ("shards", shards),
        ("faults", faults),
    ])
}

/// `palu-cli pool --merge a.journal b.journal …`: hierarchical merge
/// of shard journals into one pooled series, with quarantine/coverage
/// semantics and optional deterministic re-capture of missing windows.
fn cmd_pool_merge(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::federation::merge_shard_journals;
    use palu_traffic::metrics::Metrics;
    use palu_traffic::pipeline::Measurement;
    use std::path::PathBuf;

    let sc = SimCapture::parse(args)?;
    let paths: Vec<PathBuf> = args
        .list("merge")
        .unwrap_or_default()
        .into_iter()
        .map(PathBuf::from)
        .collect();
    if paths.is_empty() {
        return Err(CliError::usage(
            "--merge requires at least one journal path",
        ));
    }
    let min_coverage = args.f64_or("min-coverage", 1.0)?;
    if !(0.0..=1.0).contains(&min_coverage) {
        return Err(CliError::usage(format!(
            "--min-coverage must be in [0,1], got {min_coverage}"
        )));
    }
    let threads = sc.threads(args, sc.n_windows)?;
    let recapture = args.options.contains_key("recapture");
    let mut obs = if recapture {
        Some(sc.observatory()?)
    } else {
        None
    };
    let expect = sc.header();
    eprintln!(
        "merging {} shard journal(s) over {} windows (min coverage {min_coverage}{})",
        paths.len(),
        sc.n_windows,
        if recapture { ", re-capturing gaps" } else { "" }
    );
    let metrics = Metrics::new();
    let merged = merge_shard_journals(
        Measurement::UndirectedDegree,
        &expect,
        &paths,
        &sc.policy,
        min_coverage,
        threads,
        sc.injector.as_ref(),
        obs.as_mut(),
        Some(&metrics),
    )
    .map_err(|e| federation_error(&e))?;
    let fed = &merged.federation;
    eprintln!(
        "merge complete: {}/{} windows covered ({} recaptured, {} survivors) \
         across {} level(s); {} shard fault(s)",
        fed.covered,
        fed.windows,
        fed.recaptured,
        fed.survivors,
        fed.merge_levels,
        fed.faults.len()
    );
    for fault in &fed.faults {
        eprintln!("  shard fault [{}]: {fault}", fault.name());
    }
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let snap = metrics.snapshot();
        let mut doc = metrics_json(&snap);
        if let JsonValue::Object(pairs) = &mut doc {
            // federation precedes fault_report for the same reason the
            // budget/journal objects do in simulate: consumers slicing
            // from "fault_report" onward compare identical bytes.
            pairs.push(("federation".to_string(), federation_json(fed)));
            pairs.push((
                "fault_report".to_string(),
                fault_report_json(&merged.pool.report),
            ));
        }
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    write_pooled(args, &merged.pool.pooled)
}

/// Serialize a [`palu_traffic::ServiceReport`] as a JSON object:
/// coverage and submission accounting, per-shard rows — including the
/// per-shard torn-tail drop counts from crash recovery — and the
/// typed service-fault rows.
pub fn service_json(report: &palu_traffic::ServiceReport) -> crate::json::JsonValue {
    use crate::json::JsonValue;
    let shards = JsonValue::Array(
        report
            .shard_rows
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("shard", JsonValue::UInt(s.shard)),
                    ("lo", JsonValue::UInt(s.lo)),
                    ("hi", JsonValue::UInt(s.hi)),
                    ("persisted", JsonValue::UInt(s.persisted)),
                    (
                        "torn_records_dropped",
                        JsonValue::UInt(s.torn_records_dropped),
                    ),
                    ("torn_bytes_dropped", JsonValue::UInt(s.torn_bytes_dropped)),
                ])
            })
            .collect(),
    );
    let faults = JsonValue::Array(
        report
            .faults
            .iter()
            .map(|f| {
                JsonValue::obj([
                    ("kind", JsonValue::Str(f.name.to_string())),
                    ("code", JsonValue::UInt(u64::from(f.code))),
                    ("detail", JsonValue::Str(f.detail.clone())),
                ])
            })
            .collect(),
    );
    JsonValue::obj([
        ("windows", JsonValue::UInt(report.windows)),
        ("covered", JsonValue::UInt(report.covered)),
        ("min_coverage", JsonValue::Float(report.min_coverage)),
        ("submissions", JsonValue::UInt(report.submissions)),
        ("frames_accepted", JsonValue::UInt(report.frames_accepted)),
        ("duplicates", JsonValue::UInt(report.duplicates)),
        ("rejected", JsonValue::UInt(report.rejected)),
        ("fits_served", JsonValue::UInt(report.fits_served)),
        (
            "torn_records_dropped",
            JsonValue::UInt(report.torn_records_dropped),
        ),
        (
            "torn_bytes_dropped",
            JsonValue::UInt(report.torn_bytes_dropped),
        ),
        ("shard_count", JsonValue::UInt(report.shards)),
        ("shards", shards),
        ("faults", faults),
    ])
}

/// The client retry knobs shared by `submit` and `fit --server`.
fn retry_policy(args: &ParsedArgs) -> Result<palu_traffic::RetryPolicy, CliError> {
    use std::time::Duration;
    Ok(palu_traffic::RetryPolicy {
        deadline: Duration::from_millis(args.u64_or("retry-deadline-ms", 30_000)?),
        backoff_base: Duration::from_millis(args.u64_or("backoff-base-ms", 20)?),
        backoff_cap: Duration::from_millis(args.u64_or("backoff-cap-ms", 500)?),
        io_timeout: Duration::from_millis(args.u64_or("io-timeout-ms", 5_000)?),
        seed: args.u64_or("seed", 1)?,
    })
}

/// `palu-cli serve`: the federation service daemon. Accepts shard
/// submissions over TCP, persists them through per-shard journals
/// under `--journal-dir` (so a SIGKILL'd server rebuilds coverage on
/// restart), and serves rolling merged fits until drained by
/// `submit --shutdown`.
fn cmd_serve(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::pipeline::Measurement;
    use palu_traffic::service::{Collector, Server, ServiceConfig};
    use std::path::PathBuf;

    let sc = SimCapture::parse(args)?;
    let shards = args.u64_or("shards", 1)?;
    let min_coverage = args.f64_or("min-coverage", 1.0)?;
    if !(0.0..=1.0).contains(&min_coverage) {
        return Err(CliError::usage(format!(
            "--min-coverage must be in [0,1], got {min_coverage}"
        )));
    }
    let journal_dir = args.require("journal-dir").map_err(|_| {
        CliError::usage("serve requires --journal-dir <dir> (one journal per shard persists there)")
    })?;
    let read_timeout = args.u64_or("read-timeout-ms", 5_000)?;
    let listen = args.get_or("listen", "127.0.0.1:0").to_string();
    let config = ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: sc.header(),
        shards,
        min_coverage,
        journal_dir: PathBuf::from(journal_dir),
        read_timeout: std::time::Duration::from_millis(read_timeout),
    };
    let collector = Collector::new(config).map_err(|e| service_fault_error("serve", &e))?;
    let recovered = collector.report();
    if recovered.covered > 0 {
        eprintln!(
            "serve: recovered {}/{} window(s) from {} shard journal(s) on disk \
             ({} torn record(s) dropped)",
            recovered.covered,
            recovered.windows,
            recovered.shard_rows.len(),
            recovered.torn_records_dropped
        );
    }
    let server = Server::bind(&listen, collector).map_err(|e| service_fault_error("serve", &e))?;
    let addr = server
        .local_addr()
        .map_err(|e| service_fault_error("serve", &e))?;
    eprintln!(
        "serve: listening on {addr} for {shards} shard(s) × {} windows (min coverage \
         {min_coverage})",
        sc.n_windows
    );
    if let Some(path) = args.options.get("addr-file").filter(|s| !s.is_empty()) {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    let report = server.run().map_err(|e| service_fault_error("serve", &e))?;
    eprintln!(
        "serve: drained after {} submission session(s): {}/{} windows covered, {} record(s) \
         accepted, {} duplicate(s), {} rejection(s), {} fit(s) served",
        report.submissions,
        report.covered,
        report.windows,
        report.frames_accepted,
        report.duplicates,
        report.rejected,
        report.fits_served
    );
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let doc = JsonValue::obj([("service", service_json(&report))]);
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    Ok(())
}

/// `palu-cli submit`: submit one shard journal to a federation
/// service with deadline + jittered-backoff retries and idempotent
/// resumption, or (with `--shutdown`) drain the service.
fn cmd_submit(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::service::{request_shutdown, submit_journal};
    use palu_traffic::{WireInjector, WireSpec};

    let server = args
        .require("server")
        .map_err(|_| CliError::usage("submit requires --server <addr>"))?
        .to_string();
    let retry = retry_policy(args)?;
    if args.options.contains_key("shutdown") {
        request_shutdown(&server, &retry)
            .map_err(|e| service_fault_error("submit --shutdown", &e))?;
        eprintln!("submit: server at {server} acknowledged shutdown");
        return Ok(());
    }
    let sc = SimCapture::parse(args)?;
    let journal = args
        .require("journal")
        .map_err(|_| CliError::usage("submit requires --journal <path> (the shard journal)"))?
        .to_string();
    let shards = args.u64_or("shards", 1)?;
    let shard = args.u64_or("shard-index", 0)?;
    let spec = match args.options.get("wire-faults").filter(|s| !s.is_empty()) {
        Some(spec) => {
            WireSpec::parse(spec).map_err(|e| CliError::usage(format!("--wire-faults: {e}")))?
        }
        None => WireSpec::none(),
    };
    let injector = WireInjector::new(spec, sc.seed);
    let expect = sc.header();
    eprintln!("submit: shard {shard}/{shards} from {journal} to {server}");
    let outcome = submit_journal(
        &server,
        Path::new(&journal),
        shard,
        shards,
        &expect,
        &retry,
        &injector,
    )
    .map_err(|e| service_fault_error("submit", &e))?;
    eprintln!(
        "submit: shard {} done in {} attempt(s): {}/{} assigned windows persisted \
         server-side ({} recovered locally, {} already present{})",
        outcome.shard,
        outcome.attempts,
        outcome.accepted,
        outcome.assigned,
        outcome.recovered,
        outcome.already_present,
        if outcome.torn_records_dropped > 0 {
            format!(
                ", {} torn record(s) dropped recovering the local journal",
                outcome.torn_records_dropped
            )
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Serialize a [`palu_traffic::DispatchReport`] as a JSON object:
/// lease counters, the typed supervision events in arrival order, and
/// the dispatcher's own fault report (kind codes 10–14) — kept
/// separate from the merged capture's report, which stays
/// bit-identical to a single-process run.
pub fn dispatch_json(report: &palu_traffic::DispatchReport) -> crate::json::JsonValue {
    use crate::json::JsonValue;
    let events = JsonValue::Array(
        report
            .events
            .iter()
            .map(|e| {
                JsonValue::obj([
                    ("kind", JsonValue::Str(e.kind().name().to_string())),
                    ("code", JsonValue::UInt(u64::from(e.kind().code()))),
                    ("detail", JsonValue::Str(e.to_string())),
                ])
            })
            .collect(),
    );
    JsonValue::obj([
        ("shards", JsonValue::UInt(report.shards)),
        ("windows", JsonValue::UInt(report.windows)),
        ("shards_done", JsonValue::UInt(report.shards_done)),
        ("leases_granted", JsonValue::UInt(report.leases_granted)),
        ("leases_expired", JsonValue::UInt(report.leases_expired)),
        ("leases_fenced", JsonValue::UInt(report.leases_fenced)),
        (
            "leases_redispatched",
            JsonValue::UInt(report.leases_redispatched),
        ),
        ("heartbeats", JsonValue::UInt(report.heartbeats)),
        ("stalled", JsonValue::Bool(report.stalled)),
        ("events", events),
        ("faults", fault_report_json(&report.faults)),
    ])
}

/// `palu-cli dispatch`: the lease-based federation dispatcher. Wraps
/// the `serve` collector behind one listener, hands out window-range
/// leases to `work` clients, re-dispatches expired leases, and fences
/// zombies. A SIGKILL'd dispatcher restarted over the same
/// `--journal-dir` re-derives completion from the shard journals and
/// re-dispatches only what is genuinely incomplete.
fn cmd_dispatch(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::pipeline::Measurement;
    use palu_traffic::service::{Collector, ServiceConfig};
    use palu_traffic::{DispatchConfig, DispatchServer, Dispatcher};
    use std::path::PathBuf;
    use std::time::Duration;

    let sc = SimCapture::parse(args)?;
    let shards = args.u64_or("shards", 1)?;
    let min_coverage = args.f64_or("min-coverage", 1.0)?;
    if !(0.0..=1.0).contains(&min_coverage) {
        return Err(CliError::usage(format!(
            "--min-coverage must be in [0,1], got {min_coverage}"
        )));
    }
    let journal_dir = args.require("journal-dir").map_err(|_| {
        CliError::usage(
            "dispatch requires --journal-dir <dir> (one journal per shard persists there)",
        )
    })?;
    let read_timeout = args.u64_or("read-timeout-ms", 5_000)?;
    let listen = args.get_or("listen", "127.0.0.1:0").to_string();
    let lease_ms = args.u64_or("lease-ms", 10_000)?;
    let heartbeat_ms = args.u64_or("heartbeat-ms", lease_ms / 4)?;
    if lease_ms == 0 || heartbeat_ms == 0 {
        return Err(CliError::usage(
            "--lease-ms and --heartbeat-ms must be positive",
        ));
    }
    let stall = match args.options.get("stall-ms") {
        None => None,
        Some(_) => {
            let ms = args.u64_or("stall-ms", 0)?;
            if ms == 0 {
                return Err(CliError::usage(
                    "--stall-ms must be a positive number of milliseconds",
                ));
            }
            Some(Duration::from_millis(ms))
        }
    };
    let config = ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: sc.header(),
        shards,
        min_coverage,
        journal_dir: PathBuf::from(journal_dir),
        read_timeout: Duration::from_millis(read_timeout),
    };
    let collector = Collector::new(config).map_err(|e| service_fault_error("dispatch", &e))?;
    let recovered = collector.report();
    if recovered.covered > 0 {
        eprintln!(
            "dispatch: recovered {}/{} window(s) from {} shard journal(s) on disk \
             ({} torn record(s) dropped)",
            recovered.covered,
            recovered.windows,
            recovered.shard_rows.len(),
            recovered.torn_records_dropped
        );
    }
    let dconfig = DispatchConfig {
        lease: Duration::from_millis(lease_ms),
        heartbeat: Duration::from_millis(heartbeat_ms),
        linger: args.options.contains_key("linger"),
        stall,
    };
    let dispatcher =
        Dispatcher::new(collector, dconfig).map_err(|e| service_fault_error("dispatch", &e))?;
    let server = DispatchServer::bind(&listen, dispatcher)
        .map_err(|e| service_fault_error("dispatch", &e))?;
    let addr = server
        .local_addr()
        .map_err(|e| service_fault_error("dispatch", &e))?;
    eprintln!(
        "dispatch: listening on {addr}, leasing {shards} shard(s) × {} windows \
         (lease {lease_ms} ms, heartbeat {heartbeat_ms} ms)",
        sc.n_windows
    );
    if let Some(path) = args.options.get("addr-file").filter(|s| !s.is_empty()) {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    // Keep a handle on the wrapped collector (the server consumes
    // itself in run()) so the metrics file can include the service
    // section alongside the dispatch section.
    let dispatcher = server.dispatcher().clone();
    let report = server
        .run()
        .map_err(|e| service_fault_error("dispatch", &e))?;
    eprintln!(
        "dispatch: {}/{} shard(s) done — {} lease(s) granted, {} expired, {} re-dispatched, \
         {} fenced refusal(s), {} heartbeat(s){}",
        report.shards_done,
        report.shards,
        report.leases_granted,
        report.leases_expired,
        report.leases_redispatched,
        report.leases_fenced,
        report.heartbeats,
        if report.stalled { " — STALLED" } else { "" }
    );
    for event in &report.events {
        eprintln!("dispatch: event: {event}");
    }
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let doc = JsonValue::obj([
            ("dispatch", dispatch_json(&report)),
            ("service", service_json(&dispatcher.collector().report())),
        ]);
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    if report.stalled {
        return Err(CliError::runtime(format!(
            "dispatch: stalled at {}/{} shard(s) with no live lease",
            report.shards_done, report.shards
        )));
    }
    Ok(())
}

/// `palu-cli work`: a dispatcher worker. Requests leases, captures
/// each granted window range into a local journal, submits it through
/// the idempotent `submit` path, and heartbeats on a jittered
/// interval so the lease stays live. `--resume-lease` instead wakes
/// up as a zombie holding the lease state a previous (killed)
/// incarnation persisted — the expected outcome is the typed fenced
/// refusal (exit 9) with coverage untouched.
fn cmd_work(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::pipeline::{Measurement, Pipeline};
    use palu_traffic::{
        resume_zombie, run_worker, FederationError, ServiceFault, WireInjector, WireSpec,
        WorkPhase, WorkerConfig,
    };
    use std::path::PathBuf;
    use std::time::Duration;

    let server = args
        .require("server")
        .map_err(|_| CliError::usage("work requires --server <addr> (the dispatcher)"))?
        .to_string();
    let worker = args.u64_or("worker", 0)?;
    let work_dir = args
        .require("work-dir")
        .map_err(|_| {
            CliError::usage("work requires --work-dir <dir> (local journals + lease state)")
        })?
        .to_string();
    std::fs::create_dir_all(&work_dir)
        .map_err(|e| CliError::runtime(format!("{work_dir}: {e}")))?;
    let retry = retry_policy(args)?;
    let sc = SimCapture::parse(args)?;
    let spec = match args.options.get("wire-faults").filter(|s| !s.is_empty()) {
        Some(spec) => {
            WireSpec::parse(spec).map_err(|e| CliError::usage(format!("--wire-faults: {e}")))?
        }
        None => WireSpec::none(),
    };
    let injector = WireInjector::new(spec, sc.seed);
    let cfg = WorkerConfig {
        addr: server,
        worker,
        journal_dir: PathBuf::from(&work_dir),
        expect: sc.header(),
        retry,
        poll: Duration::from_millis(args.u64_or("poll-ms", 50)?),
    };
    // The zombie-resume state file: written at each grant, removed on
    // a clean exit, so only a killed worker leaves one behind.
    let lease_state = PathBuf::from(&work_dir).join(format!("worker-{worker}.lease"));
    if args.options.contains_key("resume-lease") {
        let state = std::fs::read_to_string(&lease_state)
            .map_err(|e| CliError::usage(format!("{}: {e}", lease_state.display())))?;
        let mut fields = state.split_whitespace().map(str::parse::<u64>);
        let (shard, fence, shards) = match (fields.next(), fields.next(), fields.next()) {
            (Some(Ok(shard)), Some(Ok(fence)), Some(Ok(shards))) => (shard, fence, shards),
            _ => {
                return Err(CliError::usage(format!(
                    "{}: expected `shard fence shards`, got {state:?}",
                    lease_state.display()
                )))
            }
        };
        eprintln!(
            "work: zombie worker {worker} waking up on shard {shard}/{shards} with fence {fence}"
        );
        let outcome = resume_zombie(&cfg, &injector, shard, shards, fence)
            .map_err(|e| service_fault_error("work", &e))?;
        eprintln!(
            "work: zombie resubmitted {} window record(s) (byte-idempotent server-side); \
             fenced: {}",
            outcome.resubmitted, outcome.fenced
        );
        if outcome.fenced {
            return Err(service_fault_error(
                "work --resume-lease",
                &ServiceFault::LeaseFenced {
                    worker,
                    shard,
                    fence,
                },
            ));
        }
        return Ok(());
    }
    let chaos = match args.options.get("chaos-kill").map(String::as_str) {
        None => None,
        Some("pre-lease") => Some(WorkPhase::PreLease),
        Some("mid-capture") => Some(WorkPhase::MidCapture),
        Some("pre-submit") => Some(WorkPhase::PreSubmit),
        Some(other) => {
            return Err(CliError::usage(format!(
                "--chaos-kill must be pre-lease, mid-capture, or pre-submit, got {other:?}"
            )))
        }
    };
    let threads = sc.threads(args, sc.n_windows)?;
    let mut obs = sc.observatory()?;
    let report = run_worker(
        &cfg,
        &injector,
        chaos,
        |ticket, journal, limit| {
            obs.seek(ticket.lo);
            let n = usize::try_from(limit.unwrap_or(ticket.hi - ticket.lo)).map_err(|_| {
                FederationError::BadPlan {
                    windows: ticket.windows,
                    shards: ticket.shards,
                }
            })?;
            Pipeline::pool_observatory_durable(
                Measurement::UndirectedDegree,
                &mut obs,
                n,
                threads,
                None,
                &sc.policy,
                sc.injector.as_ref(),
                Some(journal),
                None,
            )
            .map(|_| ())
            .map_err(FederationError::Pipeline)
        },
        |ticket| {
            let _ = std::fs::write(
                &lease_state,
                format!("{} {} {}\n", ticket.shard, ticket.fence, ticket.shards),
            );
            eprintln!(
                "work: worker {} leased shard {}/{} — windows [{}, {}), fence {} \
                 (lease {} ms, heartbeat {} ms)",
                ticket.worker,
                ticket.shard,
                ticket.shards,
                ticket.lo,
                ticket.hi,
                ticket.fence,
                ticket.lease_ms,
                ticket.heartbeat_ms
            );
        },
    )
    .map_err(|e| service_fault_error("work", &e))?;
    eprintln!(
        "work: worker {} served {} lease(s): {} shard(s) completed{}, {} fenced refusal(s)",
        report.worker,
        report.leases,
        report.completed.len(),
        if report.completed.is_empty() {
            String::new()
        } else {
            format!(
                " ({})",
                report
                    .completed
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        },
        report.fenced
    );
    match report.killed {
        Some(phase) => eprintln!("work: chaos kill at {phase:?} — lease state left on disk"),
        None => {
            let _ = std::fs::remove_file(&lease_state);
        }
    }
    Ok(())
}

/// `fit --server`: query the federation service's rolling merged fit
/// and render it in the canonical pooled format. Rows cross the wire
/// as raw IEEE-754 bits, so at full coverage the output is
/// byte-identical to single-process `simulate`. A partial snapshot
/// refuses with the coverage exit code unless `--allow-partial`.
fn cmd_fit_server(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::service::query_fit;

    let server = args.require("server")?.to_string();
    let retry = retry_policy(args)?;
    let snap = query_fit(&server, &retry).map_err(|e| service_fault_error("fit", &e))?;
    eprintln!(
        "fit: {}/{} windows covered (min coverage {}), {} survivor(s), {} quarantined",
        snap.covered, snap.windows, snap.min_coverage, snap.survivors, snap.quarantined
    );
    if let Some(fault) = snap.partial_fault() {
        if !args.options.contains_key("allow-partial") {
            return Err(service_fault_error("fit", &fault));
        }
        eprintln!("fit: WARNING serving a partial pool ({fault})");
    }
    if let Some(path) = args.options.get("metrics").filter(|s| !s.is_empty()) {
        use crate::json::JsonValue;
        let shard_torn = JsonValue::Array(
            snap.shard_torn
                .iter()
                .map(|row| {
                    JsonValue::obj([
                        ("shard", JsonValue::UInt(row.shard)),
                        (
                            "torn_records_dropped",
                            JsonValue::UInt(row.torn_records_dropped),
                        ),
                        (
                            "torn_bytes_dropped",
                            JsonValue::UInt(row.torn_bytes_dropped),
                        ),
                    ])
                })
                .collect(),
        );
        let doc = JsonValue::obj([(
            "fit",
            JsonValue::obj([
                ("windows", JsonValue::UInt(snap.windows)),
                ("covered", JsonValue::UInt(snap.covered)),
                ("min_coverage", JsonValue::Float(snap.min_coverage)),
                ("partial", JsonValue::Bool(snap.partial)),
                ("survivors", JsonValue::UInt(snap.survivors)),
                ("quarantined", JsonValue::UInt(snap.quarantined)),
                ("pooled_windows", JsonValue::UInt(snap.pooled_windows)),
                ("shard_torn", shard_torn),
            ]),
        )]);
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    with_output(args, |w| {
        (|| -> std::io::Result<()> {
            writeln!(
                w,
                "# pooled D(d_i) ± σ over {} windows of the undirected degree",
                snap.pooled_windows
            )?;
            writeln!(w, "# columns: d_i D sigma")?;
            for row in &snap.rows {
                let v = f64::from_bits(row.mean_bits);
                let s = f64::from_bits(row.sigma_bits);
                writeln!(w, "{} {v:.8e} {s:.8e}", row.degree)?;
            }
            Ok(())
        })()
        .map_err(|e| CliError::runtime(e.to_string()))
    })
}

fn cmd_gof(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_stats::mle::{fit_csn_with_restarts, goodness_of_fit, CsnOptions};
    use palu_stats::model_select::{fit_lognormal_tail, vuong_test, ModelVerdict};
    use palu_stats::restart::RestartPolicy;

    let input = args.require("in")?.to_string();
    let h = io::read_histogram_path(Path::new(&input)).map_err(CliError::usage)?;
    let n_boot = usize_opt(args.u64_or("boot", 50)?, "boot")?;
    let seed = args.u64_or("seed", 1)?;

    with_output(args, |w| {
        let mut run = || -> Result<(), String> {
            let opts = CsnOptions::default();
            let laddered = fit_csn_with_restarts(&h, &opts, &RestartPolicy::default())
                .map_err(|e| e.to_string())?;
            let fit = laddered.value;
            writeln!(
                w,
                "csn fit: alpha = {:.4}, x_min = {}, KS = {:.5} (n_tail = {}, {} rung)",
                fit.alpha,
                fit.x_min,
                fit.ks,
                fit.n_tail,
                laddered.rung.name()
            )
            .map_err(|e| e.to_string())?;
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let gof = goodness_of_fit(&h, &opts, n_boot, &mut rng).map_err(|e| e.to_string())?;
            writeln!(
                w,
                "goodness of fit: p = {:.3} over {} replicates ({})",
                gof.p_value,
                gof.replicate_ks.len(),
                if gof.p_value > 0.1 {
                    "power law plausible"
                } else {
                    "power law RULED OUT per CSN's p <= 0.1 rule"
                }
            )
            .map_err(|e| e.to_string())?;
            match fit_lognormal_tail(&h, fit.x_min) {
                Ok(ln) => {
                    let v = vuong_test(&h, &fit, &ln, 0.05).map_err(|e| e.to_string())?;
                    writeln!(
                        w,
                        "vuong test vs lognormal (x_min = {}): z = {:.2}, p = {:.3} -> {}",
                        fit.x_min,
                        v.z,
                        v.p_value,
                        match v.verdict {
                            ModelVerdict::PowerLaw => "power law preferred",
                            ModelVerdict::LogNormal => "lognormal preferred",
                            ModelVerdict::Inconclusive => "inconclusive",
                        }
                    )
                    .map_err(|e| e.to_string())?;
                }
                Err(e) => {
                    writeln!(w, "vuong test: lognormal not fittable ({e})")
                        .map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        };
        run().map_err(CliError::runtime)
    })
}

fn cmd_pool(args: &ParsedArgs) -> Result<(), CliError> {
    use palu_traffic::pipeline::{Measurement, Pipeline};
    use palu_traffic::stream::WindowStream;

    if args.options.contains_key("merge") {
        return cmd_pool_merge(args);
    }
    let input = args.require("in")?.to_string();
    let n_v = usize_opt(args.u64_or("nv", 100_000)?, "nv")?;
    if n_v == 0 {
        return Err(CliError::usage("--nv must be positive"));
    }
    let file = std::fs::File::open(&input).map_err(|e| CliError::usage(format!("{input}: {e}")))?;
    // Streaming parse: surface the first malformed line as an error,
    // keep constant memory otherwise.
    let mut parse_error: Option<String> = None;
    let mut pipeline = Pipeline::new(Measurement::UndirectedDegree);
    {
        let err_slot = &mut parse_error;
        let packets = io::packet_stream(file).map_while(|item| match item {
            Ok(p) => Some(p),
            Err(e) => {
                *err_slot = Some(e);
                None
            }
        });
        for window in WindowStream::new(packets, n_v) {
            pipeline.push_window(&window);
        }
    }
    if let Some(e) = parse_error {
        return Err(CliError::usage(format!("{input}: {e}")));
    }
    if pipeline.windows() == 0 {
        return Err(CliError::usage(format!(
            "{input}: fewer than {n_v} packets — no complete window"
        )));
    }
    let pooled = pipeline.finish();
    eprintln!("pooled {} windows of {n_v} packets", pooled.windows);
    with_output(args, |w| {
        (|| -> std::io::Result<()> {
            writeln!(
                w,
                "# pooled undirected-degree D(d_i) ± σ over {} windows (N_V = {n_v})",
                pooled.windows
            )?;
            writeln!(w, "# columns: d_i D sigma")?;
            for ((d_i, v), s) in pooled.mean.iter().zip(pooled.sigma.iter()) {
                writeln!(w, "{d_i} {v:.8e} {s:.8e}")?;
            }
            Ok(())
        })()
        .map_err(|e| CliError::runtime(e.to_string()))
    })
}

/// Dispatch a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "observe" => cmd_observe(args),
        "degrees" => cmd_degrees(args),
        "fit" => cmd_fit(args),
        "census" => cmd_census(args),
        "simulate" => cmd_simulate(args),
        "shard" => cmd_shard(args),
        "gof" => cmd_gof(args),
        "pool" => cmd_pool(args),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "dispatch" => cmd_dispatch(args),
        "work" => cmd_work(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?} (try `palu-cli help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        parse_args(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("palu-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&parse(&["help"])).is_ok());
        let e = run(&parse(&["frobnicate"])).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn full_pipeline_generate_observe_degrees_fit() {
        let net = tmp("net.txt");
        let obs = tmp("obs.txt");
        let deg = tmp("deg.txt");
        let report = tmp("report.txt");

        run(&parse(&[
            "generate",
            "--nodes",
            "120000",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "3.0",
            "--alpha",
            "2.0",
            "--seed",
            "7",
            "--out",
            net.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "observe",
            "--in",
            net.to_str().unwrap(),
            "--p",
            "0.5",
            "--seed",
            "8",
            "--out",
            obs.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "degrees",
            "--in",
            obs.to_str().unwrap(),
            "--out",
            deg.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "fit",
            "--in",
            deg.to_str().unwrap(),
            "--p",
            "0.5",
            "--out",
            report.to_str().unwrap(),
        ]))
        .unwrap();

        let report_text = std::fs::read_to_string(&report).unwrap();
        assert!(report_text.contains("zipf-mandelbrot"), "{report_text}");
        assert!(report_text.contains("csn power law"));
        assert!(report_text.contains("palu underlying"));
        // Recovered λ in the report should be near 3.
        let lambda_line = report_text
            .lines()
            .find(|l| l.starts_with("palu underlying"))
            .unwrap();
        let lambda: f64 = lambda_line
            .split("lambda = ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((lambda - 3.0).abs() < 1.5, "recovered λ {lambda}");
    }

    #[test]
    fn census_on_generated_network() {
        let net = tmp("census_net.txt");
        let out = tmp("census_out.txt");
        run(&parse(&[
            "generate",
            "--nodes",
            "10000",
            "--core",
            "0.4",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--seed",
            "3",
            "--out",
            net.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "census",
            "--in",
            net.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("unattached links"));
        assert!(text.contains("global clustering"));
    }

    #[test]
    fn observe_validates_p() {
        let net = tmp("p_net.txt");
        std::fs::write(&net, "0 1\n1 2\n").unwrap();
        let e = run(&parse(&[
            "observe",
            "--in",
            net.to_str().unwrap(),
            "--p",
            "1.5",
        ]))
        .unwrap_err();
        assert!(e.message.contains("[0,1]"));
    }

    #[test]
    fn fit_errors_on_missing_and_empty_files() {
        let e = run(&parse(&["fit", "--in", "/nonexistent/x.txt"])).unwrap_err();
        assert_eq!(e.code, 2);
        let empty = tmp("empty_hist.txt");
        std::fs::write(&empty, "# nothing\n").unwrap();
        let e = run(&parse(&["fit", "--in", empty.to_str().unwrap()])).unwrap_err();
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn simulate_produces_pooled_series() {
        let out = tmp("sim_out.txt");
        run(&parse(&[
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "20000",
            "--windows",
            "4",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("pooled D(d_i)"));
        // Data lines: d_i D sigma, with D summing to ≈ 1.
        let total: f64 = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "pooled mass {total}");
    }

    #[test]
    fn simulate_is_thread_count_invariant_and_writes_metrics() {
        let base = [
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "5",
            "--seed",
            "9",
        ];
        let mut outputs = Vec::new();
        for threads in ["1", "2", "8"] {
            let out = tmp(&format!("sim_t{threads}.txt"));
            let metrics = tmp(&format!("sim_t{threads}_metrics.json"));
            let mut argv: Vec<&str> = base.to_vec();
            let out_s = out.to_str().unwrap().to_string();
            let metrics_s = metrics.to_str().unwrap().to_string();
            argv.extend([
                "--threads",
                threads,
                "--out",
                &out_s,
                "--metrics",
                &metrics_s,
            ]);
            run(&parse(&argv)).unwrap();
            outputs.push(std::fs::read_to_string(&out).unwrap());
            let m = std::fs::read_to_string(&metrics).unwrap();
            assert!(m.contains("\"synthesize\""), "{m}");
            // Worker count is clamped to the 5-window workload.
            let expected = threads.parse::<u64>().unwrap().min(5);
            assert!(m.contains(&format!("\"threads\": {expected}")), "{m}");
            assert!(m.contains("\"windows\": 5"), "{m}");
        }
        // Bit-identical pooled series for every thread count.
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn simulate_rejects_zero_windows_and_bad_fault_flags() {
        let base = [
            "simulate", "--core", "0.5", "--leaves", "0.2", "--lambda", "2.0", "--alpha", "2.0",
            "--nodes", "20000", "--nv", "10000",
        ];
        let mut argv = base.to_vec();
        argv.extend(["--windows", "0"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--windows"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.extend(["--windows", "2", "--fail-policy", "bogus"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert!(e.message.contains("fail-policy"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.extend(["--windows", "2", "--inject-faults", "truncate=2.0"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert!(e.message.contains("inject-faults"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.extend(["--windows", "2", "--quarantine-threshold", "1.5"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert!(e.message.contains("quarantine-threshold"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.extend(["--windows", "2", "--window-deadline-ms", "0"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert!(e.message.contains("window-deadline-ms"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.extend(["--windows", "2", "--resume"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--journal"), "{}", e.message);
    }

    /// First integer value after `"key": ` in a pretty-printed JSON
    /// document (enough for the flat metrics counters the tests pin).
    fn json_u64(doc: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\": ");
        let i = doc
            .find(&pat)
            .unwrap_or_else(|| panic!("{key} not in {doc}"))
            + pat.len();
        doc[i..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn parse_bytes_accepts_suffixes_and_rejects_garbage() {
        assert_eq!(parse_bytes("1024").unwrap(), 1024);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("64K").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("2M").unwrap(), 2 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("abc").is_err());
        assert!(parse_bytes("1.5G").is_err());
        assert!(parse_bytes("99999999999999999999G").is_err());
        assert!(parse_bytes("999999999999G").is_err(), "must catch overflow");
    }

    #[test]
    fn simulate_budget_flags_are_validated() {
        let base = [
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "2",
        ];
        let mut argv = base.to_vec();
        argv.extend(["--memory-budget", "twelve"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("memory-budget"), "{}", e.message);

        let mut argv = base.to_vec();
        argv.push("--admission");
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--memory-budget"), "{}", e.message);
    }

    #[test]
    fn simulate_infeasible_budget_is_refused_at_admission() {
        let mut argv = journal_base();
        argv.extend(["--memory-budget", "4096"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::ADMISSION_REFUSED, "{}", e.message);
        assert!(e.message.contains("admission refused"), "{}", e.message);
    }

    #[test]
    fn simulate_memory_budget_preserves_pooled_output() {
        use palu_traffic::budget::CostModel;
        use palu_traffic::observatory::{Observatory, ObservatoryConfig};
        use palu_traffic::packets::EdgeIntensity;

        // Baseline: the journal_base workload with no budget.
        let out_plain = tmp("sim_budget_plain.txt");
        let plain_s = out_plain.to_str().unwrap().to_string();
        let mut argv = journal_base();
        argv.extend(["--threads", "4", "--out", &plain_s]);
        run(&parse(&argv)).unwrap();
        let plain = std::fs::read_to_string(&out_plain).unwrap();

        // Ample budget: byte-identical output, a budget object in the
        // metrics document, zero degradations, a nonzero admission
        // estimate covering the recorded peak.
        let out_ample = tmp("sim_budget_ample.txt");
        let metrics_ample = tmp("sim_budget_ample_metrics.json");
        let ample_s = out_ample.to_str().unwrap().to_string();
        let metrics_ample_s = metrics_ample.to_str().unwrap().to_string();
        let mut argv = journal_base();
        argv.extend([
            "--threads",
            "4",
            "--memory-budget",
            "1G",
            "--metrics",
            &metrics_ample_s,
            "--out",
            &ample_s,
        ]);
        run(&parse(&argv)).unwrap();
        assert_eq!(plain, std::fs::read_to_string(&out_ample).unwrap());
        let m = std::fs::read_to_string(&metrics_ample).unwrap();
        assert!(m.contains("\"budget\""), "{m}");
        assert_eq!(json_u64(&m, "limit"), 1 << 30);
        assert_eq!(json_u64(&m, "degradations"), 0, "{m}");
        let estimate = json_u64(&m, "admission_estimate_bytes");
        let peak = json_u64(&m, "peak_accounted_bytes");
        assert!(estimate > 0 && peak > 0, "{m}");
        assert!(estimate >= peak, "estimate {estimate} < peak {peak}");

        // Tight budget (floor + one window of transient headroom, from
        // the same cost model the pipeline consults): the capture must
        // degrade, record the rungs, and still produce identical bytes.
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.5).unwrap();
        let gen = params.generator(20_000).unwrap();
        let obs = Observatory::new(
            ObservatoryConfig {
                name: "cli".into(),
                date: String::new(),
                n_v: 10_000,
            },
            &gen,
            EdgeIntensity::Uniform,
            9,
        );
        let model = CostModel {
            n_v: 10_000,
            n_nodes: obs.underlying().n_nodes() as u64,
            windows: 6,
            threads: 4,
        };
        let limit = (model.floor_bytes() + model.window_bytes()).to_string();
        let out_tight = tmp("sim_budget_tight.txt");
        let metrics_tight = tmp("sim_budget_tight_metrics.json");
        let tight_s = out_tight.to_str().unwrap().to_string();
        let metrics_tight_s = metrics_tight.to_str().unwrap().to_string();
        let mut argv = journal_base();
        argv.extend([
            "--threads",
            "4",
            "--memory-budget",
            &limit,
            "--metrics",
            &metrics_tight_s,
            "--out",
            &tight_s,
        ]);
        run(&parse(&argv)).unwrap();
        assert_eq!(plain, std::fs::read_to_string(&out_tight).unwrap());
        let m = std::fs::read_to_string(&metrics_tight).unwrap();
        assert!(json_u64(&m, "degradations") > 0, "{m}");
        // The typed events also land in the fault report.
        assert!(m.contains("\"rung\""), "{m}");
    }

    /// Shared base argv for the journal tests: a small but non-trivial
    /// capture.
    fn journal_base() -> Vec<&'static str> {
        vec![
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "6",
            "--seed",
            "9",
        ]
    }

    #[test]
    fn simulate_journal_resume_is_bit_identical() {
        let journal = tmp("sim_journal.journal");
        let _ = std::fs::remove_file(&journal);
        let journal_s = journal.to_str().unwrap().to_string();
        // Uninterrupted durable capture.
        let out_a = tmp("sim_journal_a.txt");
        let metrics_a = tmp("sim_journal_a_metrics.json");
        let mut argv = journal_base();
        let out_a_s = out_a.to_str().unwrap().to_string();
        let metrics_a_s = metrics_a.to_str().unwrap().to_string();
        argv.extend([
            "--journal",
            &journal_s,
            "--out",
            &out_a_s,
            "--metrics",
            &metrics_a_s,
        ]);
        run(&parse(&argv)).unwrap();
        // Simulate a kill: chop the journal mid-record, then resume at
        // a different thread count.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() / 2]).unwrap();
        let out_b = tmp("sim_journal_b.txt");
        let metrics_b = tmp("sim_journal_b_metrics.json");
        let mut argv = journal_base();
        let out_b_s = out_b.to_str().unwrap().to_string();
        let metrics_b_s = metrics_b.to_str().unwrap().to_string();
        argv.extend([
            "--journal",
            &journal_s,
            "--resume",
            "--threads",
            "3",
            "--out",
            &out_b_s,
            "--metrics",
            &metrics_b_s,
        ]);
        run(&parse(&argv)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out_a).unwrap(),
            std::fs::read_to_string(&out_b).unwrap(),
            "resumed pooled series must be bit-identical"
        );
        let m = std::fs::read_to_string(&metrics_b).unwrap();
        assert!(m.contains("\"journal\""), "{m}");
        assert!(m.contains("\"windows_recovered\""), "{m}");
        let recovered: u64 = m
            .lines()
            .find(|l| l.contains("\"windows_recovered\""))
            .and_then(|l| l.split(':').nth(1))
            .map(|v| v.trim().trim_end_matches(',').parse().unwrap())
            .unwrap();
        assert!(recovered > 0 && recovered < 6, "recovered {recovered}\n{m}");
        // The fault-report section is identical across the two runs.
        let fault_section = |m: &str| {
            let at = m.find("\"fault_report\"").expect("fault report present");
            m[at..].to_string()
        };
        let m_a = std::fs::read_to_string(&metrics_a).unwrap();
        assert_eq!(fault_section(&m_a), fault_section(&m));
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn simulate_refuses_corrupt_and_mismatched_journals() {
        let journal = tmp("sim_journal_corrupt.journal");
        let _ = std::fs::remove_file(&journal);
        let journal_s = journal.to_str().unwrap().to_string();
        let mut argv = journal_base();
        argv.extend(["--journal", &journal_s]);
        run(&parse(&argv)).unwrap();
        // Resuming under a different seed is a typed refusal…
        let mut argv = journal_base();
        let pos = argv.iter().position(|a| *a == "--seed").unwrap();
        argv[pos + 1] = "10";
        argv.extend(["--journal", &journal_s, "--resume"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::CONFIG_MISMATCH);
        assert!(e.message.contains("seed mismatch"), "{}", e.message);
        // …and so is a flipped payload byte (checksum, not torn tail).
        let mut bytes = std::fs::read(&journal).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&journal, &bytes).unwrap();
        let mut argv = journal_base();
        argv.extend(["--journal", &journal_s, "--resume"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::JOURNAL_CORRUPT);
        assert!(
            e.message.contains("checksum") || e.message.contains("malformed"),
            "{}",
            e.message
        );
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn simulate_stall_watchdog_reports_stalled_windows() {
        let metrics = tmp("sim_stall_metrics.json");
        let metrics_s = metrics.to_str().unwrap().to_string();
        let mut argv = journal_base();
        let pos = argv.iter().position(|a| *a == "--windows").unwrap();
        argv[pos + 1] = "2";
        argv.extend([
            "--inject-faults",
            "stall=1.0",
            "--window-deadline-ms",
            "40",
            "--fail-policy",
            "quarantine",
            "--metrics",
            &metrics_s,
            "--out",
            "",
        ]);
        run(&parse(&argv)).unwrap();
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"stalled\""), "{m}");
        assert!(m.contains("\"quarantined\": 2"), "{m}");
    }

    #[test]
    fn simulate_injection_quarantines_deterministically() {
        let base = [
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "8",
            "--seed",
            "9",
            "--inject-faults",
            "truncate=0.4,dup=0.1",
            "--fail-policy",
            "quarantine",
            "--max-retries",
            "1",
        ];
        let mut outputs = Vec::new();
        let mut reports = Vec::new();
        for run_id in ["a", "b"] {
            let out = tmp(&format!("sim_fault_{run_id}.txt"));
            let metrics = tmp(&format!("sim_fault_{run_id}_metrics.json"));
            let mut argv: Vec<&str> = base.to_vec();
            let out_s = out.to_str().unwrap().to_string();
            let metrics_s = metrics.to_str().unwrap().to_string();
            argv.extend(["--out", &out_s, "--metrics", &metrics_s]);
            run(&parse(&argv)).unwrap();
            outputs.push(std::fs::read_to_string(&out).unwrap());
            reports.push(std::fs::read_to_string(&metrics).unwrap());
        }
        // Rerun-identical pooled series and fault report (stage
        // wall-times in the metrics preamble legitimately vary).
        assert_eq!(outputs[0], outputs[1]);
        let fault_section = |m: &str| {
            let at = m.find("\"fault_report\"").expect("fault report present");
            m[at..].to_string()
        };
        assert_eq!(fault_section(&reports[0]), fault_section(&reports[1]));
        let m = &reports[0];
        assert!(m.contains("\"fault_report\""), "{m}");
        assert!(m.contains("\"ladder\""), "{m}");
        // A 50% per-attempt rate over 8 windows injects something.
        let injected: u64 = m
            .lines()
            .find(|l| l.contains("\"injected\""))
            .and_then(|l| l.split(':').nth(1))
            .map(|v| v.trim().trim_end_matches(',').parse().unwrap())
            .unwrap();
        assert!(injected > 0, "{m}");
    }

    #[test]
    fn simulate_certain_fault_aborts_under_default_policy() {
        let e = run(&parse(&[
            "simulate",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "3",
            "--max-retries",
            "0",
            "--inject-faults",
            "truncate=1.0",
        ]))
        .unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("window"), "{}", e.message);
    }

    #[test]
    fn gof_reports_on_palu_traffic() {
        let net = tmp("gof_net.txt");
        let deg = tmp("gof_deg.txt");
        let out = tmp("gof_out.txt");
        run(&parse(&[
            "generate",
            "--nodes",
            "60000",
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--seed",
            "5",
            "--out",
            net.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "degrees",
            "--in",
            net.to_str().unwrap(),
            "--out",
            deg.to_str().unwrap(),
        ]))
        .unwrap();
        run(&parse(&[
            "gof",
            "--in",
            deg.to_str().unwrap(),
            "--boot",
            "10",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("csn fit"), "{text}");
        assert!(text.contains("goodness of fit"));
        assert!(text.contains("vuong test"));
    }

    #[test]
    fn pool_streams_a_trace_file() {
        let trace = tmp("pool_trace.txt");
        // 250 packets over a tiny host space → 2 windows of 100,
        // 50-packet remnant discarded.
        let mut text = String::from("# trace\n");
        for i in 0..250u32 {
            text.push_str(&format!("{} {}\n", i % 17, (i * 7) % 23));
        }
        std::fs::write(&trace, text).unwrap();
        let out = tmp("pool_out.txt");
        run(&parse(&[
            "pool",
            "--in",
            trace.to_str().unwrap(),
            "--nv",
            "100",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let result = std::fs::read_to_string(&out).unwrap();
        assert!(result.contains("over 2 windows"), "{result}");
        let total: f64 = result
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-6);

        // Malformed trace → usage error naming the line.
        std::fs::write(&trace, "0 1\nnot a packet\n").unwrap();
        let e = run(&parse(&[
            "pool",
            "--in",
            trace.to_str().unwrap(),
            "--nv",
            "1",
        ]))
        .unwrap_err();
        assert!(e.message.contains("line 2"), "{}", e.message);

        // Too few packets → clear error.
        std::fs::write(&trace, "0 1\n").unwrap();
        let e = run(&parse(&[
            "pool",
            "--in",
            trace.to_str().unwrap(),
            "--nv",
            "100",
        ]))
        .unwrap_err();
        assert!(e.message.contains("no complete window"));
    }

    /// The capture flags shared by `simulate`, `shard`, and
    /// `pool --merge` in the federation tests — identical so the
    /// journal fingerprints agree.
    fn fed_flags() -> Vec<&'static str> {
        vec![
            "--core",
            "0.5",
            "--leaves",
            "0.2",
            "--lambda",
            "2.0",
            "--alpha",
            "2.0",
            "--nodes",
            "20000",
            "--nv",
            "10000",
            "--windows",
            "6",
            "--seed",
            "9",
        ]
    }

    /// Capture shard `i` of `n` into `fed_<tag>_<i>.journal`, returning
    /// the journal path.
    fn run_fed_shard(tag: &str, shard: usize, shards: usize) -> std::path::PathBuf {
        let journal = tmp(&format!("fed_{tag}_{shard}.journal"));
        let _ = std::fs::remove_file(&journal);
        let journal_s = journal.to_str().unwrap().to_string();
        let shard_s = shard.to_string();
        let shards_s = shards.to_string();
        let mut argv = vec!["shard"];
        argv.extend(fed_flags());
        argv.extend([
            "--shard-index",
            &shard_s,
            "--shards",
            &shards_s,
            "--journal",
            &journal_s,
        ]);
        run(&parse(&argv)).unwrap();
        journal
    }

    #[test]
    fn shard_then_merge_matches_simulate_byte_for_byte() {
        // Single-process reference.
        let reference = tmp("fed_reference.txt");
        let reference_s = reference.to_str().unwrap().to_string();
        let mut argv = vec!["simulate"];
        argv.extend(fed_flags());
        argv.extend(["--out", &reference_s]);
        run(&parse(&argv)).unwrap();

        // Two shards, each its own journal, merged back together.
        let a = run_fed_shard("ok", 0, 2);
        let b = run_fed_shard("ok", 1, 2);
        let merged = tmp("fed_merged.txt");
        let metrics = tmp("fed_merged_metrics.json");
        let merged_s = merged.to_str().unwrap().to_string();
        let metrics_s = metrics.to_str().unwrap().to_string();
        let (a_s, b_s) = (
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        );
        let mut argv = vec!["pool"];
        argv.extend(fed_flags());
        argv.extend([
            "--merge",
            &a_s,
            &b_s,
            "--out",
            &merged_s,
            "--metrics",
            &metrics_s,
        ]);
        run(&parse(&argv)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&merged).unwrap(),
            "federated pooled series must be byte-identical to simulate"
        );
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"federation\""), "{m}");
        assert!(m.contains("\"merge_levels\""), "{m}");
        assert!(m.contains("\"covered\": 6"), "{m}");
        for p in [a, b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_refuses_low_coverage_with_typed_exit_code() {
        let a = run_fed_shard("cov", 0, 2);
        let missing = tmp("fed_cov_missing.journal");
        let _ = std::fs::remove_file(&missing);
        let (a_s, missing_s) = (
            a.to_str().unwrap().to_string(),
            missing.to_str().unwrap().to_string(),
        );
        let mut argv = vec!["pool"];
        argv.extend(fed_flags());
        argv.extend(["--merge", &a_s, &missing_s]);
        // Default --min-coverage is 1.0: the lost shard refuses.
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::COVERAGE);
        assert!(
            e.message.contains("coverage below threshold"),
            "{}",
            e.message
        );
        // Relaxing the threshold lets the merge quarantine and proceed.
        let out = tmp("fed_cov_partial.txt");
        let out_s = out.to_str().unwrap().to_string();
        let mut argv = vec!["pool"];
        argv.extend(fed_flags());
        argv.extend([
            "--merge",
            &a_s,
            &missing_s,
            "--min-coverage",
            "0.5",
            "--out",
            &out_s,
        ]);
        run(&parse(&argv)).unwrap();
        assert!(std::fs::read_to_string(&out).unwrap().contains("# pooled"));
        let _ = std::fs::remove_file(a);
    }

    #[test]
    fn merge_refuses_fingerprint_skew_naming_the_parameter() {
        let a = run_fed_shard("skew", 0, 2);
        let b = run_fed_shard("skew", 1, 2);
        let (a_s, b_s) = (
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        );
        // Same journals, but the merge expects lambda 2.5: identity
        // skew is a hard refusal that names the mismatched flag.
        let mut argv = vec!["pool"];
        argv.extend(fed_flags());
        let pos = argv.iter().position(|t| *t == "--lambda").unwrap();
        argv[pos + 1] = "2.5";
        argv.extend(["--merge", &a_s, &b_s]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::CONFIG_MISMATCH);
        assert!(e.message.contains("lambda"), "{}", e.message);
        assert!(e.message.contains("2.5"), "{}", e.message);
        for p in [a, b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn shard_validates_plan_and_requires_journal() {
        // Shard index outside the plan is a usage error.
        let mut argv = vec!["shard"];
        argv.extend(fed_flags());
        argv.extend([
            "--shard-index",
            "5",
            "--shards",
            "2",
            "--journal",
            "x.journal",
        ]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        // More shards than windows can never cover the range.
        let mut argv = vec!["shard"];
        argv.extend(fed_flags());
        argv.extend([
            "--shard-index",
            "0",
            "--shards",
            "7",
            "--journal",
            "x.journal",
        ]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("shard"), "{}", e.message);
        // A shard without a journal has nothing to federate.
        let mut argv = vec!["shard"];
        argv.extend(fed_flags());
        argv.extend(["--shard-index", "0", "--shards", "2"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("--journal"), "{}", e.message);
    }

    #[test]
    fn generate_validates_parameters() {
        let e = run(&parse(&[
            "generate", "--core", "0.9", "--leaves", "0.9", "--lambda", "1.0", "--alpha", "2.0",
        ]))
        .unwrap_err();
        assert_eq!(e.code, 2);
        // Missing required options.
        let e = run(&parse(&["generate", "--core", "0.5"])).unwrap_err();
        assert!(e.message.contains("--leaves") || e.message.contains("leaves"));
    }

    #[test]
    fn service_commands_validate_usage() {
        // serve needs the journal directory that makes it crash-tolerant.
        let mut argv = vec!["serve"];
        argv.extend(fed_flags());
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("--journal-dir"), "{}", e.message);
        // ... and a coverage threshold inside [0,1].
        let mut argv = vec!["serve"];
        argv.extend(fed_flags());
        argv.extend(["--journal-dir", "d", "--min-coverage", "1.5"]);
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("min-coverage"), "{}", e.message);
        // submit needs a server address before anything else.
        let e = run(&parse(&["submit"])).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("--server"), "{}", e.message);
        // ... and a journal to submit.
        let mut argv = vec!["submit", "--server", "127.0.0.1:1"];
        argv.extend(fed_flags());
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("--journal"), "{}", e.message);
        // A malformed wire-fault spec is refused before any connection.
        let mut argv = vec![
            "submit",
            "--server",
            "127.0.0.1:1",
            "--journal",
            "x.journal",
            "--wire-faults",
            "frob=0.5",
        ];
        argv.extend(fed_flags());
        let e = run(&parse(&argv)).unwrap_err();
        assert_eq!(e.code, exit::USAGE);
        assert!(e.message.contains("wire-faults"), "{}", e.message);
    }

    #[test]
    fn fit_against_unreachable_server_exits_service_unavailable() {
        // A connection-refused fit with an immediate deadline must exit
        // with the service-unreachable code, not a generic runtime error.
        let e = run(&parse(&[
            "fit",
            "--server",
            "127.0.0.1:1",
            "--retry-deadline-ms",
            "1",
            "--backoff-base-ms",
            "1",
            "--backoff-cap-ms",
            "1",
        ]))
        .unwrap_err();
        assert_eq!(e.code, exit::SERVICE_UNAVAILABLE, "{}", e.message);
    }
}
