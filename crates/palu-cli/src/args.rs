//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// A parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedArgs {
    /// First positional token (the subcommand).
    pub command: String,
    /// `--key value` pairs; a trailing flag with no value maps to "".
    pub options: HashMap<String, String>,
}

impl ParsedArgs {
    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required f64 option.
    pub fn require_f64(&self, key: &str) -> Result<f64, String> {
        self.require(key)?
            .parse()
            .map_err(|e| format!("--{key}: not a number ({e})"))
    }

    /// Optional f64 with default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{key}: not a number ({e})")),
        }
    }

    /// Multi-valued option: the stored value split on
    /// [`MULTI_VALUE_SEP`] (several shell tokens) and commas (one
    /// comma-joined token), empty components dropped. `None` when the
    /// option is absent.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.options.get(key).map(|v| {
            v.split([MULTI_VALUE_SEP, ','])
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    /// Optional u64 with default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{key}: not an integer ({e})")),
        }
    }
}

/// Separator joining the tokens of a multi-valued option (e.g.
/// `--merge a.journal b.journal`) inside its single stored value.
/// ASCII unit separator: cannot appear in a shell word by accident.
pub const MULTI_VALUE_SEP: char = '\u{1f}';

/// Parse `args` (without the program name) into a [`ParsedArgs`].
///
/// Grammar: `<command> (--key value... | --flag)*`. Unknown keys are
/// kept (commands validate what they need); a bare `--flag` followed
/// by another `--…` or end-of-line gets an empty value. An option
/// followed by several non-`--` tokens (`--merge a.journal
/// b.journal`) stores them joined by [`MULTI_VALUE_SEP`]; commands
/// taking one value see extra tokens in the value and reject them in
/// their own validation.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs, String> {
    let mut iter = args.into_iter().peekable();
    let command = iter
        .next()
        .ok_or("no subcommand given (try `palu-cli help`)")?;
    if command.starts_with("--") {
        return Err(format!("expected a subcommand, got option {command}"));
    }
    let mut options = HashMap::new();
    while let Some(tok) = iter.next() {
        let Some(key) = tok.strip_prefix("--") else {
            return Err(format!("unexpected positional argument: {tok}"));
        };
        if key.is_empty() {
            return Err("empty option name (`--`)".to_string());
        }
        let mut value = String::new();
        while let Some(next) = iter.peek() {
            if next.starts_with("--") {
                break;
            }
            if !value.is_empty() {
                value.push(MULTI_VALUE_SEP);
            }
            value.push_str(&iter.next().unwrap_or_default());
        }
        options.insert(key.to_string(), value);
    }
    Ok(ParsedArgs { command, options })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, String> {
        parse_args(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["generate", "--nodes", "1000", "--alpha", "2.0"]).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.require("nodes").unwrap(), "1000");
        assert_eq!(a.require_f64("alpha").unwrap(), 2.0);
        assert_eq!(a.u64_or("nodes", 0).unwrap(), 1000);
    }

    #[test]
    fn bare_flags_get_empty_values() {
        let a = parse(&["fit", "--verbose", "--in", "x.txt"]).unwrap();
        assert_eq!(a.get_or("verbose", "missing"), "");
        assert_eq!(a.require("in").unwrap(), "x.txt");
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["fit"]).unwrap();
        assert_eq!(a.get_or("in", "default.txt"), "default.txt");
        assert_eq!(a.f64_or("p", 0.5).unwrap(), 0.5);
        assert_eq!(a.u64_or("seed", 42).unwrap(), 42);
    }

    #[test]
    fn multi_valued_options_collect_tokens() {
        let a = parse(&["pool", "--merge", "a.journal", "b.journal", "--nv", "10"]).unwrap();
        assert_eq!(
            a.list("merge").unwrap(),
            vec!["a.journal".to_string(), "b.journal".to_string()]
        );
        assert_eq!(a.u64_or("nv", 0).unwrap(), 10);
        // A single comma-joined token splits the same way.
        let a = parse(&["pool", "--merge", "a.journal,b.journal"]).unwrap();
        assert_eq!(a.list("merge").unwrap().len(), 2);
        assert!(a.list("absent").is_none());
        assert_eq!(
            a.list("merge").unwrap(),
            parse(&["pool", "--merge", "a.journal", "b.journal"])
                .unwrap()
                .list("merge")
                .unwrap()
        );
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--flag"]).is_err());
        assert!(parse(&["cmd", "positional"]).is_err());
        assert!(parse(&["cmd", "--"]).is_err());
        let a = parse(&["cmd", "--x", "abc"]).unwrap();
        assert!(a.require_f64("x").is_err());
        assert!(a.u64_or("x", 1).is_err());
        assert!(a.require("missing").is_err());
    }
}
