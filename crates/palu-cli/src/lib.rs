//! Library backing the `palu` command-line tool.
//!
//! The CLI makes the reproduction usable on *files*: generate a PALU
//! network to an edge list, observe an edge list through a window,
//! reduce edge lists to degree histograms, and fit the three model
//! families (modified Zipf–Mandelbrot, PALU, CSN single power law) to
//! a histogram. All the logic lives here so it is unit-testable; the
//! binary in `main.rs` is a thin dispatcher.

pub mod args;
pub mod commands;
pub mod io;
pub mod json;

pub use args::{parse_args, ParsedArgs};
pub use commands::{run, CliError};
