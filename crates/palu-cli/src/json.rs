//! A minimal hand-rolled JSON value and writer.
//!
//! The harness binaries record machine-readable snapshots under
//! `results/`. Per the hermetic-build policy (lint rule R1) the
//! workspace carries no serde, so this module provides the small
//! subset actually needed: build a [`JsonValue`] tree and pretty-print
//! it. Object keys keep insertion order, so output is byte-for-byte
//! deterministic (lint rule R2).

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point.
    Int(i64),
    /// An unsigned integer (degrees, counts — the common case here).
    UInt(u64),
    /// A float, printed with Rust's shortest round-trip formatting.
    /// Non-finite values print as `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs, keeping order.
    pub fn obj<'a, I>(pairs: I) -> JsonValue
    where
        I: IntoIterator<Item = (&'a str, JsonValue)>,
    {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array from anything convertible to [`JsonValue`].
    pub fn array<T: Into<JsonValue>, I: IntoIterator<Item = T>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline,
    /// matching what `serde_json::to_string_pretty` produced for the
    /// existing files under `results/`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_indented(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_indented(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a decimal point so the value round-trips as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<i32> for JsonValue {
    fn from(v: i32) -> Self {
        JsonValue::Int(v.into())
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v.into())
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::array(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => JsonValue::Null,
        }
    }
}

impl From<(u64, f64)> for JsonValue {
    fn from((d, v): (u64, f64)) -> Self {
        JsonValue::Array(vec![d.into(), v.into()])
    }
}

impl From<(u64, f64, f64)> for JsonValue {
    fn from((d, v, s): (u64, f64, f64)) -> Self {
        JsonValue::Array(vec![d.into(), v.into(), s.into()])
    }
}

impl From<&[f64]> for JsonValue {
    fn from(v: &[f64]) -> Self {
        JsonValue::array(v.iter().copied())
    }
}

impl From<&[u64]> for JsonValue {
    fn from(v: &[u64]) -> Self {
        JsonValue::array(v.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.pretty(), "null\n");
        assert_eq!(JsonValue::from(true).pretty(), "true\n");
        assert_eq!(JsonValue::from(42u64).pretty(), "42\n");
        assert_eq!(JsonValue::from(-7i64).pretty(), "-7\n");
        assert_eq!(JsonValue::from(0.5).pretty(), "0.5\n");
        assert_eq!(JsonValue::from("hi").pretty(), "\"hi\"\n");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::from(2.0).pretty(), "2.0\n");
        assert_eq!(JsonValue::from(-3.0).pretty(), "-3.0\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).pretty(), "null\n");
        assert_eq!(JsonValue::from(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn floats_round_trip() {
        for &x in &[0.1, 1e-300, 123456.789, 2.2250738585072014e-308] {
            let s = JsonValue::from(x).pretty();
            let back: f64 = s.trim().parse().expect("parses");
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn arrays_and_objects_nest_with_indentation() {
        let v = JsonValue::obj([
            ("name", "demo".into()),
            ("xs", JsonValue::array([1u64, 2, 3])),
            ("nested", JsonValue::obj([("p", 0.25.into())])),
            ("empty_arr", JsonValue::Array(vec![])),
            ("empty_obj", JsonValue::Object(vec![])),
        ]);
        let expected = "{\n  \"name\": \"demo\",\n  \"xs\": [\n    1,\n    2,\n    3\n  ],\n  \"nested\": {\n    \"p\": 0.25\n  },\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let v = JsonValue::obj([("z", 1u64.into()), ("a", 2u64.into())]);
        let s = v.pretty();
        assert!(s.find("\"z\"").expect("z") < s.find("\"a\"").expect("a"));
    }

    #[test]
    fn option_and_slice_conversions() {
        let some: JsonValue = Some(3u64).into();
        assert_eq!(some, JsonValue::UInt(3));
        let none: JsonValue = Option::<u64>::None.into();
        assert_eq!(none, JsonValue::Null);
        let xs: JsonValue = [0.5f64, 1.5][..].into();
        assert_eq!(xs, JsonValue::Array(vec![0.5.into(), 1.5.into()]));
    }
}
