//! `palu` — command-line front end. All logic lives in the library
//! (`palu_cli`); this binary only parses `std::env::args` and maps
//! errors to exit codes.

fn main() {
    let args = match palu_cli::parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", palu_cli::commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = palu_cli::run(&args) {
        eprintln!("error: {}", e.message);
        std::process::exit(e.code);
    }
}
