//! Connected components via union-find.
//!
//! The Figure 2 census classifies a traffic network by its component
//! structure: the densely connected core(s), single-edge unattached
//! links, and star components. Union-find with path halving and union
//! by size gives near-linear component extraction even at the
//! 10⁷-edge scale of the largest experiments.

use crate::graph::Graph;
use crate::NodeId;

/// Disjoint-set forest over `0..n` with path halving + union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<NodeId>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: NodeId) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n as usize],
        }
    }

    /// Find the representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: NodeId) -> NodeId {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns `true` if they
    /// were previously distinct.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: NodeId) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// The connected components of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per node (dense, `0..n_components`).
    labels: Vec<u32>,
    /// Node count per component.
    node_counts: Vec<u32>,
    /// Edge count per component (multiplicities included).
    edge_counts: Vec<u64>,
}

impl Components {
    /// Compute the connected components of `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.n_nodes();
        let mut uf = UnionFind::new(n);
        for &(u, v) in g.edges() {
            uf.union(u, v);
        }
        // Densify the root labels.
        let mut labels = vec![u32::MAX; n as usize];
        let mut node_counts = Vec::new();
        // Roots are node ids (< n), so a dense vector maps root -> label
        // with labels handed out in first-appearance order.
        let mut root_to_label = vec![u32::MAX; n as usize];
        for x in 0..n {
            let r = uf.find(x);
            if root_to_label[r as usize] == u32::MAX {
                root_to_label[r as usize] = node_counts.len() as u32;
                node_counts.push(0u32);
            }
            let label = root_to_label[r as usize];
            labels[x as usize] = label;
            node_counts[label as usize] += 1;
        }
        let mut edge_counts = vec![0u64; node_counts.len()];
        for &(u, _) in g.edges() {
            edge_counts[labels[u as usize] as usize] += 1;
        }
        Components {
            labels,
            node_counts,
            edge_counts,
        }
    }

    /// Number of components (isolated nodes each count as one).
    pub fn count(&self) -> usize {
        self.node_counts.len()
    }

    /// Component label of a node.
    pub fn label(&self, node: NodeId) -> u32 {
        self.labels[node as usize]
    }

    /// Node count of component `label`.
    pub fn node_count(&self, label: u32) -> u32 {
        self.node_counts[label as usize]
    }

    /// Edge count of component `label`.
    pub fn edge_count(&self, label: u32) -> u64 {
        self.edge_counts[label as usize]
    }

    /// Label of the largest component by node count (`None` when the
    /// graph has no nodes).
    pub fn largest(&self) -> Option<u32> {
        (0..self.count() as u32).max_by_key(|&l| self.node_counts[l as usize])
    }

    /// Iterate `(label, node_count, edge_count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.count() as u32).map(move |l| {
            (
                l,
                self.node_counts[l as usize],
                self.edge_counts[l as usize],
            )
        })
    }

    /// Histogram of component sizes (node counts).
    pub fn size_histogram(&self) -> palu_stats::histogram::DegreeHistogram {
        palu_stats::histogram::DegreeHistogram::from_degrees(
            self.node_counts.iter().map(|&c| c as u64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_ne!(uf.find(0), uf.find(1));
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1)); // already merged
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.set_size(0), 2);
        assert!(uf.union(1, 2));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn union_find_transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_size(0), 100);
        assert_eq!(uf.find(0), uf.find(99));
    }

    #[test]
    fn components_of_mixed_graph() {
        // Component A: triangle {0,1,2}; B: edge {3,4}; C: isolated {5}.
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        let c = Components::of(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(1), c.label(2));
        assert_eq!(c.label(3), c.label(4));
        assert_ne!(c.label(0), c.label(3));
        assert_ne!(c.label(0), c.label(5));

        let triangle = c.label(0);
        assert_eq!(c.node_count(triangle), 3);
        assert_eq!(c.edge_count(triangle), 3);
        let edge = c.label(3);
        assert_eq!(c.node_count(edge), 2);
        assert_eq!(c.edge_count(edge), 1);
        let iso = c.label(5);
        assert_eq!(c.node_count(iso), 1);
        assert_eq!(c.edge_count(iso), 0);

        assert_eq!(c.largest(), Some(triangle));
    }

    #[test]
    fn size_histogram() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        // Components: {0,1}, {2,3}, {4}, {5}.
        let h = Components::of(&g).size_histogram();
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(1), 2);
    }

    #[test]
    fn empty_graph() {
        let c = Components::of(&Graph::default());
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
    }

    #[test]
    fn parallel_edges_counted_in_edge_count() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let c = Components::of(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.edge_count(0), 2);
    }
}
