//! Graph substrate for the PALU model.
//!
//! Section III of the paper builds the *underlying network* from three
//! pieces — a preferential-attachment **core**, degree-1 **leaves**
//! adjacent to core nodes, and **unattached** Poisson star components —
//! and observes it through Erdős–Rényi edge sampling. This crate
//! implements every generator plus the structural analyses:
//!
//! * [`graph`] — the shared undirected multigraph type with degree
//!   extraction.
//! * [`models`] — the generators: Barabási–Albert growth and a
//!   configuration-model power-law core (the paper's `d^{-α}/ζ(α)`
//!   assumption), Erdős–Rényi baselines, and Poisson stars.
//! * [`palu_gen`] — assembly of the full PALU underlying network with
//!   node roles tracked.
//! * [`sample`] — the observation mechanism: keep each edge
//!   independently with probability `p` (Section V).
//! * [`components`] — union-find connected components.
//! * [`census`] — the Figure 2 topology census: unattached links,
//!   supernode leaves, core leaves, densely-connected core, isolated
//!   nodes.
//! * [`clustering`] — global and average-local clustering coefficients
//!   (the paper's future-work item; all PALU transitivity lives in the
//!   core).
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Structural census of a generated topology (role counts, degree tallies).
pub mod census;
/// Global and average-local clustering coefficients.
pub mod clustering;
/// Connected-component labeling and size distributions.
pub mod components;
/// The adjacency-list graph container shared by all generators.
pub mod graph;
/// Baseline random-graph generators (configuration model, G(n,p), PA, stars).
pub mod models;
/// The hybrid PALU topology generator (PA core + lognormal leaves + unattached).
pub mod palu_gen;
/// Subsampling a topology through an observation window.
pub mod sample;

pub use census::TopologyCensus;
pub use components::Components;
pub use graph::Graph;
pub use palu_gen::{NodeRole, PaluGenerator, UnderlyingNetwork};

/// Node identifier within a generated network.
pub type NodeId = u32;
