//! Undirected multigraph with edge-list storage.
//!
//! The paper treats connections as undirected ("for the sake of the
//! model we will consider this undirected", Section III) and notes the
//! directed refinement has only a small impact on degree distributions.
//! Edges are stored as an arbitrary-order list of endpoint pairs;
//! parallel edges and self-loops are representable (growth processes
//! can produce them) and both endpoints of a self-loop count toward its
//! node's degree, per the usual convention.

use crate::NodeId;
use palu_stats::histogram::DegreeHistogram;

/// An undirected multigraph over nodes `0..n_nodes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    n_nodes: NodeId,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Create a graph with `n_nodes` isolated nodes.
    pub fn with_nodes(n_nodes: NodeId) -> Self {
        Graph {
            n_nodes,
            edges: Vec::new(),
        }
    }

    /// Create with node count and pre-reserved edge capacity.
    pub fn with_capacity(n_nodes: NodeId, edges: usize) -> Self {
        Graph {
            n_nodes,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes (including isolated ones).
    pub fn n_nodes(&self) -> NodeId {
        self.n_nodes
    }

    /// Number of edges (counting multiplicities).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.n_nodes;
        self.n_nodes += 1;
        id
    }

    /// Append `k` new isolated nodes, returning the id of the first.
    pub fn add_nodes(&mut self, k: NodeId) -> NodeId {
        let first = self.n_nodes;
        self.n_nodes += k;
        first
    }

    /// Add an undirected edge. Both endpoints must already exist.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u < self.n_nodes && v < self.n_nodes,
            "edge ({u},{v}) references a node beyond {}",
            self.n_nodes
        );
        self.edges.push((u, v));
    }

    /// The edge list, in insertion order.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Per-node degrees (self-loops count twice).
    pub fn degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n_nodes as usize];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Degree of one node (O(|E|); use [`Graph::degrees`] for bulk).
    pub fn degree(&self, node: NodeId) -> u64 {
        self.edges
            .iter()
            .map(|&(u, v)| (u == node) as u64 + (v == node) as u64)
            .sum()
    }

    /// Degree histogram over *visible* nodes (degree ≥ 1). Isolated
    /// nodes "cannot be seen by examining traffic between nodes"
    /// (Section V), so they are excluded by default; the census reports
    /// them separately.
    pub fn degree_histogram(&self) -> DegreeHistogram {
        DegreeHistogram::from_degrees(self.degrees().into_iter().filter(|&d| d > 0))
    }

    /// Degree histogram including degree-0 entries for isolated nodes.
    pub fn degree_histogram_with_isolated(&self) -> DegreeHistogram {
        DegreeHistogram::from_degrees(self.degrees())
    }

    /// Number of isolated (degree-0) nodes.
    pub fn isolated_count(&self) -> u64 {
        self.degrees().iter().filter(|&&d| d == 0).count() as u64
    }

    /// The node with the highest degree and that degree — the paper's
    /// supernode. `None` for an edgeless graph.
    pub fn supernode(&self) -> Option<(NodeId, u64)> {
        let degs = self.degrees();
        degs.iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .filter(|&(_, d)| *d > 0)
            .map(|(i, &d)| (i as NodeId, d))
    }

    /// Build a compact adjacency structure for traversals.
    pub fn adjacency(&self) -> Adjacency {
        let n = self.n_nodes as usize;
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors = vec![0 as NodeId; self.edges.len() * 2];
        let mut next = offsets.clone();
        for &(u, v) in &self.edges {
            neighbors[next[u as usize]] = v;
            next[u as usize] += 1;
            neighbors[next[v as usize]] = u;
            next[v as usize] += 1;
        }
        Adjacency { offsets, neighbors }
    }

    /// Relabel this graph's nodes into a new graph via `offset`:
    /// used when composing subnetworks (core ⊕ leaves ⊕ stars) into a
    /// single underlying network.
    pub fn append_into(&self, target: &mut Graph) -> NodeId {
        let offset = target.add_nodes(self.n_nodes);
        for &(u, v) in &self.edges {
            target.add_edge(u + offset, v + offset);
        }
        offset
    }
}

/// CSR-style adjacency built by [`Graph::adjacency`].
#[derive(Debug, Clone)]
pub struct Adjacency {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
}

impl Adjacency {
    /// Neighbors of `node` (with multiplicity; self-loops appear
    /// twice).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[node as usize]..self.offsets[node as usize + 1]]
    }

    /// Degree of `node` (length of its neighbor slice).
    pub fn degree(&self, node: NodeId) -> usize {
        self.offsets[node as usize + 1] - self.offsets[node as usize]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        // 0 - 1 - 2 - 3, plus isolated node 4.
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn basic_counts() {
        let g = path_graph();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1, 0]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.isolated_count(), 1);
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = Graph::with_nodes(2);
        let first = g.add_nodes(3);
        assert_eq!(first, 2);
        assert_eq!(g.n_nodes(), 5);
        let single = g.add_node();
        assert_eq!(single, 5);
    }

    #[test]
    #[should_panic(expected = "references a node beyond")]
    fn add_edge_validates_endpoints() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0);
        assert_eq!(g.degrees(), vec![2]);
    }

    #[test]
    fn parallel_edges_accumulate_degree() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.degrees(), vec![2, 2]);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn histograms_exclude_or_include_isolated() {
        let g = path_graph();
        let visible = g.degree_histogram();
        assert_eq!(visible.total(), 4);
        assert_eq!(visible.count(1), 2);
        assert_eq!(visible.count(2), 2);
        let all = g.degree_histogram_with_isolated();
        assert_eq!(all.total(), 5);
        assert_eq!(all.count(0), 1);
    }

    #[test]
    fn supernode_detection() {
        let mut g = Graph::with_nodes(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        assert_eq!(g.supernode(), Some((0, 4)));
        assert_eq!(Graph::with_nodes(3).supernode(), None);
    }

    #[test]
    fn adjacency_mirrors_edges() {
        let g = path_graph();
        let adj = g.adjacency();
        assert_eq!(adj.n_nodes(), 5);
        assert_eq!(adj.degree(0), 1);
        assert_eq!(adj.degree(1), 2);
        assert_eq!(adj.degree(4), 0);
        let mut n1: Vec<_> = adj.neighbors(1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 2]);
        assert_eq!(adj.neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    fn adjacency_self_loop_appears_twice() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0);
        let adj = g.adjacency();
        assert_eq!(adj.neighbors(0), &[0, 0]);
    }

    #[test]
    fn append_into_offsets_ids() {
        let mut target = Graph::with_nodes(3);
        target.add_edge(0, 1);
        let sub = path_graph();
        let offset = sub.append_into(&mut target);
        assert_eq!(offset, 3);
        assert_eq!(target.n_nodes(), 8);
        assert_eq!(target.n_edges(), 4);
        // Sub-graph's edge (0,1) became (3,4).
        assert!(target.edges().contains(&(3, 4)));
        // Original edge intact.
        assert!(target.edges().contains(&(0, 1)));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::default();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.degrees(), Vec::<u64>::new());
        assert_eq!(g.supernode(), None);
        assert!(g.degree_histogram().is_empty());
        let adj = g.adjacency();
        assert_eq!(adj.n_nodes(), 0);
    }
}
