//! Topology census — the Figure 2 taxonomy.
//!
//! Figure 2 of the paper classifies traffic-network structure into:
//! *unattached links* (isolated node pairs), *supernode leaves*
//! (degree-1 nodes hanging off the highest-degree node), *core leaves*
//! (other degree-1 nodes of the main component), and the *densely
//! connected core(s)*. The census extracts all of these counts from any
//! graph, plus the isolated-node count the model predicts but traffic
//! cannot observe.

use crate::components::Components;
use crate::graph::Graph;
use crate::NodeId;

/// Structural counts in the Figure 2 taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopologyCensus {
    /// Total nodes, visible or not.
    pub n_nodes: u64,
    /// Total edges (multiplicity counted).
    pub n_edges: u64,
    /// Degree-0 nodes (invisible to traffic observation).
    pub isolated_nodes: u64,
    /// Connected components with ≥ 1 edge.
    pub nontrivial_components: u64,
    /// Components consisting of exactly one edge between two nodes —
    /// the paper's *unattached links*.
    pub unattached_links: u64,
    /// Components that are stars with ≥ 2 leaves (one hub, rest
    /// degree-1), excluding the largest component.
    pub detached_stars: u64,
    /// Node count of the largest component — the connected core.
    pub core_nodes: u64,
    /// Edge count of the largest component.
    pub core_edges: u64,
    /// Degree of the highest-degree node (the supernode).
    pub supernode_degree: u64,
    /// Degree-1 neighbors of the supernode — *supernode leaves*.
    pub supernode_leaves: u64,
    /// Other degree-1 nodes inside the largest component — *core
    /// leaves*.
    pub core_leaves: u64,
}

impl TopologyCensus {
    /// Run the census on a graph.
    pub fn of(g: &Graph) -> Self {
        let degrees = g.degrees();
        let n_nodes = g.n_nodes() as u64;
        let n_edges = g.n_edges() as u64;
        let isolated_nodes = degrees.iter().filter(|&&d| d == 0).count() as u64;

        if n_edges == 0 {
            return TopologyCensus {
                n_nodes,
                isolated_nodes,
                ..Default::default()
            };
        }

        let comps = Components::of(g);
        let largest = comps.largest().expect("graph has nodes");
        let core_nodes = comps.node_count(largest) as u64;
        let core_edges = comps.edge_count(largest);

        let mut nontrivial_components = 0u64;
        let mut unattached_links = 0u64;
        for (_, nodes, edges) in comps.iter() {
            if edges == 0 {
                continue;
            }
            nontrivial_components += 1;
            if nodes == 2 && edges == 1 {
                unattached_links += 1;
            }
        }

        // Detached stars: components (≠ largest) with k ≥ 3 nodes,
        // k−1 edges, and exactly one node of degree > 1.
        let mut comp_high_degree = vec![0u32; comps.count()];
        for (node, &d) in degrees.iter().enumerate() {
            if d > 1 {
                comp_high_degree[comps.label(node as NodeId) as usize] += 1;
            }
        }
        let mut detached_stars = 0u64;
        for (label, nodes, edges) in comps.iter() {
            if label == largest || nodes < 3 {
                continue;
            }
            if edges == nodes as u64 - 1 && comp_high_degree[label as usize] == 1 {
                detached_stars += 1;
            }
        }

        // Supernode analysis.
        let (supernode, supernode_degree) = g.supernode().expect("n_edges > 0");
        let adj = g.adjacency();
        let supernode_leaves = adj
            .neighbors(supernode)
            .iter()
            .filter(|&&nb| degrees[nb as usize] == 1)
            .count() as u64;

        // Core leaves: degree-1 nodes in the largest component that are
        // not supernode leaves.
        let mut core_leaves = 0u64;
        for (node, &d) in degrees.iter().enumerate() {
            if d == 1 && comps.label(node as NodeId) == largest {
                core_leaves += 1;
            }
        }
        let core_leaves = core_leaves.saturating_sub(if comps.label(supernode) == largest {
            supernode_leaves
        } else {
            0
        });

        TopologyCensus {
            n_nodes,
            n_edges,
            isolated_nodes,
            nontrivial_components,
            unattached_links,
            detached_stars,
            core_nodes,
            core_edges,
            supernode_degree,
            supernode_leaves,
            core_leaves,
        }
    }

    /// Fraction of visible (degree ≥ 1) nodes in the largest
    /// component.
    pub fn core_fraction(&self) -> f64 {
        let visible = self.n_nodes - self.isolated_nodes;
        if visible == 0 {
            0.0
        } else {
            self.core_nodes as f64 / visible as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palu_gen::{NodeRole, PaluGenerator};
    use palu_stats::rng::Xoshiro256pp;

    /// Build the Figure 2 cartoon: a dense core with a supernode, some
    /// supernode leaves, core leaves, two unattached links, one
    /// detached star, and one isolated node.
    fn figure2_graph() -> Graph {
        let mut g = Graph::with_nodes(0);
        // Dense core: K4 on nodes 0..4; node 0 will be the supernode.
        g.add_nodes(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        // Supernode leaves: 5 degree-1 nodes on node 0.
        for _ in 0..5 {
            let leaf = g.add_node();
            g.add_edge(0, leaf);
        }
        // Core leaves: 2 degree-1 nodes on node 1.
        for _ in 0..2 {
            let leaf = g.add_node();
            g.add_edge(1, leaf);
        }
        // Two unattached links.
        for _ in 0..2 {
            let a = g.add_node();
            let b = g.add_node();
            g.add_edge(a, b);
        }
        // One detached star: hub + 3 leaves.
        let hub = g.add_node();
        for _ in 0..3 {
            let leaf = g.add_node();
            g.add_edge(hub, leaf);
        }
        // One isolated node.
        g.add_node();
        g
    }

    #[test]
    fn figure2_census() {
        let c = TopologyCensus::of(&figure2_graph());
        assert_eq!(c.n_nodes, 4 + 5 + 2 + 4 + 4 + 1);
        assert_eq!(c.isolated_nodes, 1);
        assert_eq!(c.unattached_links, 2);
        assert_eq!(c.detached_stars, 1);
        assert_eq!(c.core_nodes, 11); // K4 + 5 + 2 leaves
        assert_eq!(c.core_edges, 6 + 7);
        // Supernode is node 0: degree 3 (K4) + 5 leaves = 8.
        assert_eq!(c.supernode_degree, 8);
        assert_eq!(c.supernode_leaves, 5);
        assert_eq!(c.core_leaves, 2);
        assert_eq!(c.nontrivial_components, 1 + 2 + 1);
        let visible = c.n_nodes - c.isolated_nodes;
        assert!((c.core_fraction() - 11.0 / visible as f64).abs() < 1e-12);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let c = TopologyCensus::of(&Graph::default());
        assert_eq!(c.n_nodes, 0);
        assert_eq!(c.core_fraction(), 0.0);
        let c = TopologyCensus::of(&Graph::with_nodes(5));
        assert_eq!(c.n_nodes, 5);
        assert_eq!(c.isolated_nodes, 5);
        assert_eq!(c.n_edges, 0);
        assert_eq!(c.supernode_degree, 0);
        assert_eq!(c.core_fraction(), 0.0);
    }

    #[test]
    fn single_edge_graph_is_its_own_core() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        let c = TopologyCensus::of(&g);
        // The only component is both the largest ("core") and a pair —
        // it still counts as an unattached link under the taxonomy.
        assert_eq!(c.core_nodes, 2);
        assert_eq!(c.unattached_links, 1);
        assert_eq!(c.supernode_degree, 1);
    }

    #[test]
    fn palu_network_census_is_consistent_with_roles() {
        let gen = PaluGenerator::new(5_000, 1_500, 2_000, 2.0, 0.8).unwrap();
        let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(42));
        let c = TopologyCensus::of(&net.graph);

        // Isolated nodes are exactly the zero-leaf star centers.
        assert_eq!(c.isolated_nodes, net.isolated_star_centers.len() as u64);

        // The core component contains at least the biggest chunk of
        // core nodes (config-model cores at α=2 have a giant
        // component).
        assert!(c.core_nodes as f64 > 0.5 * 5_000.0);

        // Star-derived unattached links are single-leaf stars:
        // expectation U_N·λ·e^{-λ} ≈ 2000·0.8·e^{-0.8} ≈ 719. The
        // census total also counts pair components from the core
        // section (degree-1 core nodes wired to each other or holding
        // a single anchored leaf), so compare the role-filtered count.
        let comps = crate::components::Components::of(&net.graph);
        let mut comp_sizes = std::collections::HashMap::new();
        for node in 0..net.graph.n_nodes() {
            *comp_sizes.entry(comps.label(node)).or_insert(0u32) += 1;
        }
        let degs = net.graph.degrees();
        let star_pairs = (0..net.graph.n_nodes())
            .filter(|&v| {
                net.role(v) == NodeRole::StarCenter
                    && degs[v as usize] == 1
                    && comp_sizes[&comps.label(v)] == 2
            })
            .count();
        let expected = 2000.0 * 0.8 * (-0.8f64).exp();
        assert!(
            (star_pairs as f64 - expected).abs() < 5.0 * expected.sqrt() + 30.0,
            "star pair components {star_pairs} vs expected {expected}"
        );
        // And the census total includes at least those.
        assert!(c.unattached_links as usize >= star_pairs);

        // Supernode leaves exist (preferential anchoring).
        assert!(c.supernode_leaves > 0);

        // Star sections contribute detached stars (size ≥ 3).
        assert!(c.detached_stars > 0);

        // Role bookkeeping: leaf count matches generator request.
        assert_eq!(net.count_role(NodeRole::Leaf), 1_500);
    }

    #[test]
    fn detached_star_detection_excludes_paths() {
        // A path of 4 nodes is a tree but has two high-degree nodes —
        // must not count as a star.
        let mut g = Graph::with_nodes(0);
        // Largest component: triangle.
        g.add_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        // Path component: 3-4-5-6.
        g.add_nodes(4);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        let c = TopologyCensus::of(&g);
        assert_eq!(c.detached_stars, 0);
        // But the path still counts as a nontrivial component.
        assert_eq!(c.nontrivial_components, 2);
    }
}
