//! Clustering coefficients.
//!
//! The paper's future-work list (Section VII) calls for "deeper study
//! into the degree distribution and clustering coefficients" of the
//! PALU model. This module provides both standard notions:
//!
//! * **global** (transitivity): `3·#triangles / #wedges`;
//! * **average local**: mean over nodes of
//!   `#closed wedges at v / C(deg v, 2)`.
//!
//! The PALU structure makes strong predictions here: leaves and star
//! components contain *no* triangles (a star is triangle-free and a
//! leaf's single edge forms no wedge-closing pair), so all clustering
//! lives in the PA core, and adding leaf/star mass dilutes the average
//! local coefficient proportionally — verified by the tests and by the
//! `components` experiment binary.

use crate::graph::Graph;
use crate::NodeId;

/// Clustering summary of a graph.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Clustering {
    /// Number of triangles (each counted once).
    pub triangles: u64,
    /// Number of wedges (paths of length 2, centered count:
    /// `Σ_v C(deg v, 2)`).
    pub wedges: u64,
    /// Global clustering coefficient (transitivity):
    /// `3·triangles / wedges`; 0 for wedge-free graphs.
    pub global: f64,
    /// Average local clustering coefficient over nodes with degree ≥ 2
    /// (nodes that can't close a wedge are excluded, the common
    /// convention for sparse traffic graphs).
    pub average_local: f64,
    /// Number of nodes with degree ≥ 2 (the averaging population).
    pub closable_nodes: u64,
}

/// Compute exact clustering statistics.
///
/// Works on simple graphs; parallel edges are collapsed and self-loops
/// ignored during neighbor-set construction, so multigraph inputs are
/// handled gracefully (a traffic matrix's parallel packets do not
/// create extra triangles).
///
/// # Examples
///
/// ```
/// use palu_graph::graph::Graph;
/// use palu_graph::clustering::clustering;
/// // A triangle is fully clustered; a star is not clustered at all.
/// let mut tri = Graph::with_nodes(3);
/// tri.add_edge(0, 1);
/// tri.add_edge(1, 2);
/// tri.add_edge(2, 0);
/// assert_eq!(clustering(&tri).global, 1.0);
/// let mut star = Graph::with_nodes(4);
/// for leaf in 1..4 {
///     star.add_edge(0, leaf);
/// }
/// assert_eq!(clustering(&star).global, 0.0);
/// ```
///
/// Complexity: `O(Σ_v deg(v)²)` in the worst case via sorted-neighbor
/// intersection — fine for the sparse, bounded-degree bulk of PALU
/// networks; the supernode contributes one heavy row.
pub fn clustering(g: &Graph) -> Clustering {
    let n = g.n_nodes() as usize;
    // Deduplicated, sorted neighbor lists (self-loops dropped).
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        if u == v {
            continue;
        }
        neighbors[u as usize].push(v);
        neighbors[v as usize].push(u);
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }

    // Count triangles once by orienting each edge toward the
    // higher-(degree, id) endpoint (standard forward counting).
    let rank = |v: NodeId| (neighbors[v as usize].len(), v);
    let mut forward: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, list) in neighbors.iter().enumerate() {
        for &v in list {
            if rank(v as NodeId) > rank(u as NodeId) {
                forward[u].push(v);
            }
        }
    }
    let mut triangles_total = 0u64;
    let mut closed_wedges_at = vec![0u64; n]; // per-node triangle count
    for u in 0..n {
        let fu = &forward[u];
        for (i, &v) in fu.iter().enumerate() {
            for &w in &fu[i + 1..] {
                // Is (v, w) an edge? Binary search the neighbor list.
                if neighbors[v as usize].binary_search(&w).is_ok() {
                    triangles_total += 1;
                    closed_wedges_at[u] += 1;
                    closed_wedges_at[v as usize] += 1;
                    closed_wedges_at[w as usize] += 1;
                }
            }
        }
    }

    let mut wedges = 0u64;
    let mut local_sum = 0.0f64;
    let mut closable = 0u64;
    for (u, list) in neighbors.iter().enumerate() {
        let d = list.len() as u64;
        if d >= 2 {
            let w = d * (d - 1) / 2;
            wedges += w;
            closable += 1;
            local_sum += closed_wedges_at[u] as f64 / w as f64;
        }
    }

    Clustering {
        triangles: triangles_total,
        wedges,
        global: if wedges == 0 {
            0.0
        } else {
            3.0 * triangles_total as f64 / wedges as f64
        },
        average_local: if closable == 0 {
            0.0
        } else {
            local_sum / closable as f64
        },
        closable_nodes: closable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palu_gen::PaluGenerator;
    use palu_stats::rng::Xoshiro256pp;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let c = clustering(&triangle());
        assert_eq!(c.triangles, 1);
        assert_eq!(c.wedges, 3);
        assert_eq!(c.global, 1.0);
        assert_eq!(c.average_local, 1.0);
        assert_eq!(c.closable_nodes, 3);
    }

    #[test]
    fn complete_graph_k5() {
        let mut g = Graph::with_nodes(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        let c = clustering(&g);
        assert_eq!(c.triangles, 10); // C(5,3)
        assert_eq!(c.wedges, 5 * 6); // 5 · C(4,2)
        assert!((c.global - 1.0).abs() < 1e-12);
        assert!((c.average_local - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stars_and_paths_have_zero_clustering() {
        // Star: hub with 5 leaves — wedges but no triangles.
        let mut star = Graph::with_nodes(6);
        for v in 1..6 {
            star.add_edge(0, v);
        }
        let c = clustering(&star);
        assert_eq!(c.triangles, 0);
        assert_eq!(c.wedges, 10);
        assert_eq!(c.global, 0.0);
        assert_eq!(c.average_local, 0.0);
        assert_eq!(c.closable_nodes, 1);
        // Path of 4.
        let mut path = Graph::with_nodes(4);
        path.add_edge(0, 1);
        path.add_edge(1, 2);
        path.add_edge(2, 3);
        let c = clustering(&path);
        assert_eq!(c.triangles, 0);
        assert_eq!(c.wedges, 2);
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle {0,1,2} plus pendant 3 attached to 0: the pendant
        // adds wedges at 0 but no triangles.
        let mut g = triangle();
        let p = g.add_node();
        g.add_edge(0, p);
        let c = clustering(&g);
        assert_eq!(c.triangles, 1);
        // Wedges: node 0 has degree 3 → 3; nodes 1, 2 → 1 each; total 5.
        assert_eq!(c.wedges, 5);
        assert!((c.global - 3.0 / 5.0).abs() < 1e-12);
        // Local: node 0 closes 1/3, nodes 1 and 2 close 1/1;
        // average over 3 closable nodes = (1/3 + 1 + 1)/3 = 7/9.
        assert!((c.average_local - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_and_self_loops_do_not_inflate() {
        let mut g = triangle();
        g.add_edge(0, 1); // parallel
        g.add_edge(2, 2); // self-loop
        let c = clustering(&g);
        assert_eq!(c.triangles, 1);
        assert_eq!(c.wedges, 3);
        assert_eq!(c.global, 1.0);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(clustering(&Graph::default()), Clustering::default());
        let c = clustering(&Graph::with_nodes(10));
        assert_eq!(c.triangles, 0);
        assert_eq!(c.global, 0.0);
        assert_eq!(c.closable_nodes, 0);
    }

    #[test]
    fn palu_clustering_lives_in_the_core() {
        // All triangles of a PALU network are core-internal: adding
        // leaf/star mass leaves the triangle count unchanged and
        // dilutes nothing else.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let with_extras = PaluGenerator::new(3_000, 2_000, 1_000, 2.0, 2.0)
            .unwrap()
            .generate(&mut rng);
        let c = clustering(&with_extras.graph);
        // Rebuild the core-only subgraph from roles and compare
        // triangle counts.
        use crate::palu_gen::NodeRole;
        let mut core_only = Graph::with_nodes(with_extras.graph.n_nodes());
        for &(u, v) in with_extras.graph.edges() {
            if with_extras.role(u) == NodeRole::Core && with_extras.role(v) == NodeRole::Core {
                core_only.add_edge(u, v);
            }
        }
        let cc = clustering(&core_only);
        assert_eq!(c.triangles, cc.triangles, "triangles must be core-internal");
        assert!(
            c.triangles > 0,
            "a dense-enough core should close triangles"
        );
    }

    #[test]
    fn global_clustering_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let net = PaluGenerator::new(2_000, 500, 500, 2.0, 1.0)
            .unwrap()
            .generate(&mut rng);
        let c = clustering(&net.graph);
        assert!(c.global >= 0.0 && c.global <= 1.0);
        assert!(c.average_local >= 0.0 && c.average_local <= 1.0);
    }
}
