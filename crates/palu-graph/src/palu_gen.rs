//! Assembly of the PALU *underlying network*.
//!
//! Section III: "There are three main pieces that make up this network:
//! the *core* which is constructed by preferential attachment; a set of
//! degree 1 nodes called *leaves* that are adjacent to nodes in the
//! core; and *unattached nodes* that are not connected to the core."
//!
//! The generator takes the node-count split `(n_core, n_leaves,
//! n_star_centers)` — the PALU parameter layer in the `palu` crate maps
//! the paper's proportions `(C, L, U)` under the constraint
//! `C + L + U(1 + λ − e^{−λ}) = 1` onto these counts — plus the core
//! exponent `α` and star rate `λ`, and produces a role-annotated graph.

use crate::graph::Graph;
use crate::models::{BarabasiAlbert, PoissonStars, PowerLawConfigModel};
use crate::NodeId;
use palu_stats::error::StatsError;
use palu_stats::rng::Rng;

/// Which generator realizes the preferential-attachment core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreGenerator {
    /// Configuration model with exact `d^{-α}/ζ(α)` degrees (paper's
    /// distributional assumption; works for any `α > 1`). The default.
    ConfigModel,
    /// Shifted-kernel Barabási–Albert growth with `m` edges per node
    /// (reaches `α = 3 + shift/m > 2` only; kept for the ablation).
    BarabasiAlbert {
        /// Edges added per arriving node.
        m: u32,
    },
}

/// How leaves pick their core anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafAttachment {
    /// Proportional to core degree — produces the "supernode leaves"
    /// topology of Figure 2 (most leaves cluster on the supernode).
    Preferential,
    /// Uniform over core nodes — spreads leaves evenly ("core leaves").
    Uniform,
}

/// Role of a node in the underlying network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Member of the preferential-attachment core.
    Core,
    /// Degree-1 node attached to a core node.
    Leaf,
    /// Central node of an unattached star.
    StarCenter,
    /// Non-central node of an unattached star.
    StarLeaf,
}

/// Generator for the full underlying network.
///
/// # Examples
///
/// ```
/// use palu_graph::palu_gen::{NodeRole, PaluGenerator};
/// use palu_stats::rng::Xoshiro256pp;
/// let gen = PaluGenerator::new(5_000, 1_000, 500, 2.0, 2.0).unwrap();
/// let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(1));
/// assert_eq!(net.count_role(NodeRole::Core), 5_000);
/// assert_eq!(net.count_role(NodeRole::Leaf), 1_000);
/// // Star leaves are Poisson: ≈ 500·λ = 1000 of them.
/// let star_leaves = net.count_role(NodeRole::StarLeaf);
/// assert!((star_leaves as f64 - 1000.0).abs() < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaluGenerator {
    /// Core node count (`C`-section).
    pub n_core: NodeId,
    /// Leaf node count (`L`-section).
    pub n_leaves: NodeId,
    /// Star-center count (`U`-section, `U_N` in the paper).
    pub n_star_centers: NodeId,
    /// Core power-law exponent `α ∈ [1.5, 3]`.
    pub alpha: f64,
    /// Mean star size `λ ∈ [0, 20]`.
    pub lambda: f64,
    /// Core realization strategy.
    pub core_generator: CoreGenerator,
    /// Leaf anchoring strategy.
    pub leaf_attachment: LeafAttachment,
}

impl PaluGenerator {
    /// Create a generator with the paper's default strategies
    /// (configuration-model core, preferential leaf anchoring).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] when the core is too small
    /// (< 2 nodes), `α ≤ 1`, or `λ` is negative/non-finite. The
    /// paper's tighter ranges (`α ∈ [1.5, 3]`, `λ ∈ [0, 20]`) are
    /// enforced by the parameter layer in the `palu` crate, not here.
    pub fn new(
        n_core: NodeId,
        n_leaves: NodeId,
        n_star_centers: NodeId,
        alpha: f64,
        lambda: f64,
    ) -> Result<Self, StatsError> {
        // Validate through the component generators.
        PowerLawConfigModel::new(n_core.max(2), alpha)?;
        PoissonStars::new(n_star_centers, lambda)?;
        if n_core < 2 {
            return Err(StatsError::domain(
                "PaluGenerator",
                "core needs at least 2 nodes",
            ));
        }
        Ok(PaluGenerator {
            n_core,
            n_leaves,
            n_star_centers,
            alpha,
            lambda,
            core_generator: CoreGenerator::ConfigModel,
            leaf_attachment: LeafAttachment::Preferential,
        })
    }

    /// Switch the core realization strategy (builder style).
    pub fn with_core_generator(mut self, g: CoreGenerator) -> Self {
        self.core_generator = g;
        self
    }

    /// Switch the leaf anchoring strategy (builder style).
    pub fn with_leaf_attachment(mut self, a: LeafAttachment) -> Self {
        self.leaf_attachment = a;
        self
    }

    /// Generate the underlying network.
    ///
    /// With the default `ConfigModel` core and `Preferential` leaves,
    /// leaf anchoring is integrated into the configuration model by
    /// *stub reservation*: the core degree sequence is drawn from the
    /// truncated zeta law, and `n_leaves` of its stubs are reserved as
    /// leaf anchors before the remaining stubs are wired core-to-core.
    /// The result is that each core node's **total** degree (core
    /// edges + leaf edges) follows the `d^{−α}/ζ(α)` law exactly —
    /// which is what the paper's Section IV analysis assumes when it
    /// counts "the number of core nodes … having degree d". Anchoring
    /// leaves *after* building a zeta core would instead inflate core
    /// degrees above the model's law (measurably, for leaf-heavy
    /// parameter sets).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> UnderlyingNetwork {
        self.try_generate(rng).expect("validated at construction")
    }

    /// Fallible form of [`PaluGenerator::generate`] — identical
    /// output, identical RNG consumption, but component-generator
    /// invariant violations surface as errors instead of panics. Use
    /// this when the generator was built by field assignment rather
    /// than through [`PaluGenerator::new`]'s validation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] for parameters the component
    /// generators reject (see [`PaluGenerator::new`]).
    pub fn try_generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<UnderlyingNetwork, StatsError> {
        // 1. Core (plus reserved leaf anchors where applicable).
        let (core, reserved_anchors): (Graph, Option<Vec<NodeId>>) =
            match (self.core_generator, self.leaf_attachment) {
                (CoreGenerator::ConfigModel, LeafAttachment::Preferential) => {
                    let m = PowerLawConfigModel::new(self.n_core, self.alpha)?;
                    let degrees = m.sample_degrees(rng);
                    // Build the stub pool and reserve leaf anchors.
                    let total_stubs: u64 = degrees.iter().sum();
                    let mut stubs: Vec<NodeId> = Vec::with_capacity(total_stubs as usize);
                    for (node, &d) in degrees.iter().enumerate() {
                        for _ in 0..d {
                            stubs.push(node as NodeId);
                        }
                    }
                    use palu_stats::rng::SliceRandom;
                    stubs.shuffle(rng);
                    let reserve = (self.n_leaves as usize).min(stubs.len().saturating_sub(2));
                    let mut anchors: Vec<NodeId> = stubs.split_off(stubs.len() - reserve);
                    // Keep the remaining stub count even (odd length
                    // implies non-empty, so the pop always yields).
                    if stubs.len() % 2 == 1 {
                        if let Some(stub) = stubs.pop() {
                            anchors.push(stub);
                        }
                    }
                    // Wire the rest as a MULTIGRAPH (self-loops dropped,
                    // parallel edges kept): erasing duplicates would
                    // silently depress hub degrees below the sampled
                    // zeta law — a bias that propagates into every
                    // thinning-based estimate, worst at small p.
                    // Traffic networks carry parallel edges naturally
                    // (they are link weights).
                    let mut g = Graph::with_capacity(self.n_core, stubs.len() / 2);
                    for pair in stubs.chunks_exact(2) {
                        let (u, v) = (pair[0], pair[1]);
                        if u == v {
                            continue;
                        }
                        g.add_edge(u, v);
                    }
                    (g, Some(anchors))
                }
                (CoreGenerator::ConfigModel, LeafAttachment::Uniform) => {
                    let m = PowerLawConfigModel::new(self.n_core, self.alpha)?;
                    (m.generate(rng), None)
                }
                (CoreGenerator::BarabasiAlbert { m }, _) => {
                    // Target the requested exponent via the kernel shift
                    // α = 3 + a/m  ⇒  a = m(α − 3), clamped above −m.
                    let shift = (m as f64 * (self.alpha - 3.0)).max(-(m as f64) + 1e-6);
                    let ba = BarabasiAlbert::with_shift(self.n_core, m, shift)?;
                    (ba.generate(rng), None)
                }
            };

        // Start from an empty graph: the subnetworks append themselves
        // (with id offsets) via `append_into`.
        let mut graph = Graph::with_capacity(0, core.n_edges() + self.n_leaves as usize);
        core.append_into(&mut graph);
        let mut roles = vec![NodeRole::Core; self.n_core as usize];

        // 2. Leaves anchored to the core.
        let core_degrees = core.degrees();
        let first_leaf = graph.n_nodes();
        for i in 0..self.n_leaves {
            let anchor = match (&reserved_anchors, self.leaf_attachment) {
                (Some(anchors), _) if !anchors.is_empty() => {
                    // Reserved stubs; if leaves outnumber reservations
                    // (degenerate, tiny cores) cycle through them.
                    anchors[i as usize % anchors.len()]
                }
                (Some(_), _) => rng.gen_range(0..self.n_core),
                (None, LeafAttachment::Preferential) => {
                    // Degree-proportional anchoring via random edge
                    // endpoint (BA cores keep the historical behavior
                    // for the ablation).
                    if core.n_edges() == 0 {
                        rng.gen_range(0..self.n_core)
                    } else {
                        let (u, v) = core.edges()[rng.gen_range(0..core.n_edges())];
                        if rng.gen::<bool>() {
                            u
                        } else {
                            v
                        }
                    }
                }
                (None, LeafAttachment::Uniform) => rng.gen_range(0..self.n_core),
            };
            let leaf = graph.add_node();
            graph.add_edge(anchor, leaf);
            roles.push(NodeRole::Leaf);
        }
        debug_assert_eq!(graph.n_nodes(), first_leaf + self.n_leaves);

        // 3. Unattached Poisson stars.
        let stars = PoissonStars::new(self.n_star_centers, self.lambda)?.generate(rng);
        let star_offset = stars.graph.append_into(&mut graph);
        for node in 0..stars.graph.n_nodes() {
            roles.push(if node < stars.n_centers {
                NodeRole::StarCenter
            } else {
                NodeRole::StarLeaf
            });
        }

        Ok(UnderlyingNetwork {
            graph,
            roles,
            core_supernode_degree: core_degrees.iter().copied().max().unwrap_or(0),
            isolated_star_centers: stars
                .isolated_centers
                .iter()
                .map(|&c| c + star_offset)
                .collect(),
        })
    }
}

/// A generated underlying network with role bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct UnderlyingNetwork {
    /// The full graph (core ∪ leaves ∪ stars).
    pub graph: Graph,
    /// Role of each node, indexed by node id.
    pub roles: Vec<NodeRole>,
    /// Maximum degree within the core section (the supernode degree of
    /// the underlying network).
    pub core_supernode_degree: u64,
    /// Star centers that drew zero leaves — present in the network but
    /// invisible to traffic observation.
    pub isolated_star_centers: Vec<NodeId>,
}

impl UnderlyingNetwork {
    /// Number of nodes with a given role.
    pub fn count_role(&self, role: NodeRole) -> u64 {
        self.roles.iter().filter(|&&r| r == role).count() as u64
    }

    /// Role of a node.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node as usize]
    }

    /// Total nodes (including invisible isolated star centers).
    pub fn n_nodes(&self) -> NodeId {
        self.graph.n_nodes()
    }

    /// Nodes visible to traffic observation (degree ≥ 1).
    pub fn visible_nodes(&self) -> u64 {
        self.graph.n_nodes() as u64 - self.graph.isolated_count()
    }

    /// Decompose an *observed* graph's degree distribution by this
    /// network's node roles: the per-population histograms the
    /// Section IV analysis reasons about (core law + leaf mass + star
    /// Poisson). Only visible (degree ≥ 1) nodes are counted; the
    /// observed graph must share this network's node ids (i.e. come
    /// from [`crate::sample::sample_edges`] on this network).
    ///
    /// # Panics
    ///
    /// Panics if `observed` has a different node count.
    pub fn role_decomposition(&self, observed: &Graph) -> RoleDecomposition {
        assert_eq!(
            observed.n_nodes(),
            self.graph.n_nodes(),
            "observed graph must share this network's node ids"
        );
        let degrees = observed.degrees();
        let mut out = RoleDecomposition::default();
        for (node, &d) in degrees.iter().enumerate() {
            if d == 0 {
                continue;
            }
            match self.roles[node] {
                NodeRole::Core => out.core.increment(d, 1),
                NodeRole::Leaf => out.leaves.increment(d, 1),
                NodeRole::StarCenter => out.star_centers.increment(d, 1),
                NodeRole::StarLeaf => out.star_leaves.increment(d, 1),
            }
        }
        out
    }
}

/// Observed-degree histograms split by underlying role — see
/// [`UnderlyingNetwork::role_decomposition`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoleDecomposition {
    /// Visible core nodes by observed degree.
    pub core: palu_stats::histogram::DegreeHistogram,
    /// Visible leaves (always degree 1).
    pub leaves: palu_stats::histogram::DegreeHistogram,
    /// Visible star centers by observed degree.
    pub star_centers: palu_stats::histogram::DegreeHistogram,
    /// Visible star leaves (always degree 1).
    pub star_leaves: palu_stats::histogram::DegreeHistogram,
}

impl RoleDecomposition {
    /// Recombine the populations: equals the whole observed network's
    /// visible degree histogram.
    pub fn combined(&self) -> palu_stats::histogram::DegreeHistogram {
        let mut h = self.core.clone();
        h.merge(&self.leaves);
        h.merge(&self.star_centers);
        h.merge(&self.star_leaves);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::Components;
    use palu_stats::rng::Xoshiro256pp;

    fn generate_default(seed: u64) -> UnderlyingNetwork {
        PaluGenerator::new(5_000, 2_000, 1_000, 2.0, 2.0)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(seed))
    }

    #[test]
    fn construction_validates() {
        assert!(PaluGenerator::new(1, 0, 0, 2.0, 1.0).is_err());
        assert!(PaluGenerator::new(100, 0, 0, 1.0, 1.0).is_err());
        assert!(PaluGenerator::new(100, 0, 0, 2.0, -1.0).is_err());
        assert!(PaluGenerator::new(100, 10, 10, 2.0, 0.0).is_ok());
    }

    #[test]
    fn role_counts_match_request() {
        let net = generate_default(1);
        assert_eq!(net.count_role(NodeRole::Core), 5_000);
        assert_eq!(net.count_role(NodeRole::Leaf), 2_000);
        assert_eq!(net.count_role(NodeRole::StarCenter), 1_000);
        // Star leaves are random: E ≈ U_N·λ = 2000.
        let star_leaves = net.count_role(NodeRole::StarLeaf);
        assert!((star_leaves as f64 - 2_000.0).abs() < 300.0);
        assert_eq!(net.n_nodes() as u64, 5_000 + 2_000 + 1_000 + star_leaves);
        assert_eq!(net.roles.len(), net.n_nodes() as usize);
    }

    #[test]
    fn leaves_have_degree_one_and_anchor_in_core() {
        let net = generate_default(2);
        let degs = net.graph.degrees();
        for (node, &role) in net.roles.iter().enumerate() {
            if role == NodeRole::Leaf {
                assert_eq!(degs[node], 1, "leaf {node}");
                // Its single neighbor must be a core node.
                let adj = net.graph.adjacency();
                let nb = adj.neighbors(node as NodeId)[0];
                assert_eq!(net.role(nb), NodeRole::Core);
            }
        }
    }

    #[test]
    fn stars_are_disconnected_from_core() {
        let net = generate_default(3);
        let comps = Components::of(&net.graph);
        // Find the component containing core node 0.
        let core_comp = comps.label(0);
        for (node, &role) in net.roles.iter().enumerate() {
            match role {
                NodeRole::StarCenter | NodeRole::StarLeaf => {
                    assert_ne!(
                        comps.label(node as NodeId),
                        core_comp,
                        "star node {node} touches the core"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn isolated_centers_are_recorded_and_isolated() {
        let net = generate_default(4);
        let degs = net.graph.degrees();
        assert!(!net.isolated_star_centers.is_empty()); // e^-2 ≈ 13.5% of 1000
        for &c in &net.isolated_star_centers {
            assert_eq!(degs[c as usize], 0);
            assert_eq!(net.role(c), NodeRole::StarCenter);
        }
        // Visible nodes = all minus isolated.
        assert_eq!(
            net.visible_nodes(),
            net.n_nodes() as u64 - net.isolated_star_centers.len() as u64
        );
        // Expected isolated fraction e^{-λ} = e^{-2} ≈ 0.135 of centers.
        let frac = net.isolated_star_centers.len() as f64 / 1000.0;
        assert!((frac - (-2.0f64).exp()).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn preferential_leaves_concentrate_on_supernode() {
        // Under preferential anchoring the supernode should collect
        // many more leaves than under uniform anchoring.
        let seed = 5;
        let pref = PaluGenerator::new(3_000, 3_000, 0, 2.0, 0.0)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(seed));
        let unif = PaluGenerator::new(3_000, 3_000, 0, 2.0, 0.0)
            .unwrap()
            .with_leaf_attachment(LeafAttachment::Uniform)
            .generate(&mut Xoshiro256pp::seed_from_u64(seed));

        let count_supernode_leaves = |net: &UnderlyingNetwork| {
            let (sn, _) = net.graph.supernode().unwrap();
            let adj = net.graph.adjacency();
            adj.neighbors(sn)
                .iter()
                .filter(|&&nb| net.role(nb) == NodeRole::Leaf)
                .count()
        };
        let p = count_supernode_leaves(&pref);
        let u = count_supernode_leaves(&unif);
        assert!(
            p > 3 * u.max(1),
            "preferential {p} vs uniform {u} supernode leaves"
        );
    }

    #[test]
    fn ba_core_variant_generates() {
        let net = PaluGenerator::new(2_000, 500, 200, 2.5, 1.0)
            .unwrap()
            .with_core_generator(CoreGenerator::BarabasiAlbert { m: 2 })
            .generate(&mut Xoshiro256pp::seed_from_u64(6));
        assert_eq!(net.count_role(NodeRole::Core), 2_000);
        // BA core is connected: no isolated core nodes.
        let degs = net.graph.degrees();
        for (node, &role) in net.roles.iter().enumerate() {
            if role == NodeRole::Core {
                assert!(degs[node] > 0);
            }
        }
    }

    #[test]
    fn try_generate_matches_generate_and_reports_domain_errors() {
        let gen = PaluGenerator::new(500, 100, 50, 2.0, 1.0).unwrap();
        let a = gen.generate(&mut Xoshiro256pp::seed_from_u64(9));
        let b = gen
            .try_generate(&mut Xoshiro256pp::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
        // A field-assembled generator that skipped `new`'s validation
        // errors instead of panicking.
        let bad = PaluGenerator { alpha: 0.5, ..gen };
        assert!(bad
            .try_generate(&mut Xoshiro256pp::seed_from_u64(9))
            .is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate_default(7);
        let b = generate_default(7);
        assert_eq!(a, b);
    }

    #[test]
    fn role_decomposition_partitions_the_histogram() {
        use crate::sample::sample_edges;
        let net = generate_default(11);
        let observed = sample_edges(&net.graph, 0.5, &mut Xoshiro256pp::seed_from_u64(12));
        let decomp = net.role_decomposition(&observed);
        // The parts recombine into the whole.
        assert_eq!(decomp.combined(), observed.degree_histogram());
        // Leaves and star leaves can only have degree 1.
        assert!(decomp.leaves.d_max().unwrap_or(1) <= 1);
        assert!(decomp.star_leaves.d_max().unwrap_or(1) <= 1);
        // Core carries the heavy tail.
        assert!(decomp.core.d_max().unwrap() > 10);
    }

    #[test]
    #[should_panic(expected = "share this network's node ids")]
    fn role_decomposition_checks_node_count() {
        let net = generate_default(13);
        let wrong = Graph::with_nodes(3);
        net.role_decomposition(&wrong);
    }

    #[test]
    fn zero_leaves_zero_stars_degenerates_to_core() {
        let net = PaluGenerator::new(1_000, 0, 0, 2.0, 0.0)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(8));
        assert_eq!(net.n_nodes(), 1_000);
        assert!(net.roles.iter().all(|&r| r == NodeRole::Core));
        assert!(net.isolated_star_centers.is_empty());
    }
}
