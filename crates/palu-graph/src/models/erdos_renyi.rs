//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.
//!
//! Two roles in the reproduction: (1) the observation mechanism of the
//! PALU model is literally "an Erdős–Rényi random subnetwork of the
//! underlying network" (Section V) — the edge-retention sampler lives
//! in [`crate::sample`], but these full generators provide the
//! reference behaviour; (2) the paper's future-work list proposes
//! "combining preferential attachment with the Erdős–Rényi model",
//! which experiment E-A1 explores as a baseline core.

use crate::graph::Graph;
use crate::NodeId;
use palu_stats::error::StatsError;
use palu_stats::rng::Rng;

/// Generate `G(n, p)`: each of the `n·(n−1)/2` possible undirected
/// edges appears independently with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes), so the cost is
/// `O(n + |E|)` rather than `O(n²)` — essential for the sparse,
/// large-`n` graphs the experiments use.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `p ∉ [0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: NodeId, p: f64, rng: &mut R) -> Result<Graph, StatsError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(StatsError::domain(
            "gnp",
            format!("p must be in [0,1], got {p}"),
        ));
    }
    let mut g = Graph::with_nodes(n);
    if p == 0.0 || n < 2 {
        return Ok(g);
    }
    if p == 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        return Ok(g);
    }
    // Walk the strictly-upper-triangular adjacency in row-major order,
    // skipping ahead by geometric gaps.
    let ln_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as u64) < n as u64 {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / ln_q).floor() as i64;
        while w >= v && (v as u64) < n as u64 {
            w -= v;
            v += 1;
        }
        if (v as u64) < n as u64 {
            g.add_edge(w as NodeId, v as NodeId);
        }
    }
    Ok(g)
}

/// Generate `G(n, m)`: exactly `m` distinct undirected edges chosen
/// uniformly among all `n·(n−1)/2` possibilities.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `m` exceeds the number of
/// possible edges.
pub fn gnm<R: Rng + ?Sized>(n: NodeId, m: u64, rng: &mut R) -> Result<Graph, StatsError> {
    let possible = n as u64 * (n as u64).saturating_sub(1) / 2;
    if m > possible {
        return Err(StatsError::domain(
            "gnm",
            format!("m = {m} exceeds possible edges {possible}"),
        ));
    }
    let mut g = Graph::with_capacity(n, m as usize);
    // Membership-only dedup, never iterated; edges land in draw order.
    // lint:allow(R2)
    let mut chosen = std::collections::HashSet::with_capacity(m as usize);
    while (chosen.len() as u64) < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            g.add_edge(key.0, key.1);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::rng::Xoshiro256pp;

    #[test]
    fn gnp_validates_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert!(gnp(10, -0.1, &mut rng).is_err());
        assert!(gnp(10, 1.1, &mut rng).is_err());
        assert!(gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let empty = gnp(20, 0.0, &mut rng).unwrap();
        assert_eq!(empty.n_edges(), 0);
        let full = gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(full.n_edges(), 20 * 19 / 2);
        let tiny = gnp(1, 0.5, &mut rng).unwrap();
        assert_eq!(tiny.n_edges(), 0);
        let zero = gnp(0, 0.5, &mut rng).unwrap();
        assert_eq!(zero.n_nodes(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 500u32;
        let p = 0.02;
        let expected = (n as f64) * (n as f64 - 1.0) / 2.0 * p;
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut total = 0usize;
        let reps = 20;
        for _ in 0..reps {
            total += gnp(n, p, &mut rng).unwrap().n_edges();
        }
        let mean = total as f64 / reps as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let se = sd / (reps as f64).sqrt();
        assert!(
            (mean - expected).abs() < 5.0 * se,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_edges_are_valid_and_simple() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let g = gnp(300, 0.05, &mut rng).unwrap();
        let mut keys: Vec<_> = g
            .edges()
            .iter()
            .map(|&(u, v)| {
                assert!(u != v, "self-loop");
                assert!(u < 300 && v < 300);
                (u.min(v), u.max(v))
            })
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate edge");
    }

    #[test]
    fn gnp_degree_distribution_is_binomial_like() {
        // Mean degree should be (n−1)p.
        let n = 2000u32;
        let p = 0.005;
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let g = gnp(n, p, &mut rng).unwrap();
        let mean_deg = g.degrees().iter().sum::<u64>() as f64 / n as f64;
        let expected = (n - 1) as f64 * p;
        assert!(
            (mean_deg - expected).abs() < 0.5,
            "mean degree {mean_deg} vs {expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let g = gnm(100, 250, &mut rng).unwrap();
        assert_eq!(g.n_edges(), 250);
        assert_eq!(g.n_nodes(), 100);
        // Simple graph.
        let mut keys: Vec<_> = g
            .edges()
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 250);
    }

    #[test]
    fn gnm_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert!(gnm(5, 11, &mut rng).is_err()); // max is 10
        let full = gnm(5, 10, &mut rng).unwrap();
        assert_eq!(full.n_edges(), 10);
        let none = gnm(5, 0, &mut rng).unwrap();
        assert_eq!(none.n_edges(), 0);
    }
}
