//! Poisson star components — the "unattached" population.
//!
//! Section V: "we generate `U_N`-many stars, each of which has a random
//! number of non-central nodes, where the number of non-central nodes
//! is given by independent identically distributed Poisson random
//! variables with mean λ." Centers whose star drew zero leaves are
//! *isolated nodes*: they exist in the underlying network but "cannot
//! be seen by examining traffic between nodes".

use crate::graph::Graph;
use crate::NodeId;
use palu_stats::distributions::{DiscreteDistribution, Poisson};
use palu_stats::error::StatsError;
use palu_stats::rng::Rng;

/// Generator for a forest of `U_N` Poisson(λ) stars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonStars {
    n_centers: NodeId,
    lambda: f64,
}

/// A generated star forest with its bookkeeping.
#[derive(Debug, Clone)]
pub struct StarForest {
    /// The graph: centers first (`0..n_centers`), then leaves.
    pub graph: Graph,
    /// Number of central nodes (`U_N`).
    pub n_centers: NodeId,
    /// Number of leaf (non-central) nodes.
    pub n_leaves: NodeId,
    /// Centers that drew zero leaves — the invisible isolated nodes.
    pub isolated_centers: Vec<NodeId>,
}

impl PoissonStars {
    /// Create a generator for `n_centers` stars with mean size `λ`.
    ///
    /// The paper bounds `λ ∈ [0, 20]`; we accept any finite `λ ≥ 0` but
    /// the PALU parameter layer enforces the paper's range.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] for negative or non-finite `λ`.
    pub fn new(n_centers: NodeId, lambda: f64) -> Result<Self, StatsError> {
        // Validate λ via the Poisson constructor.
        Poisson::new(lambda)?;
        Ok(PoissonStars { n_centers, lambda })
    }

    /// Mean star size `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of stars `U_N`.
    pub fn n_centers(&self) -> NodeId {
        self.n_centers
    }

    /// Expected total node count `U_N·(1 + λ)`.
    pub fn expected_nodes(&self) -> f64 {
        self.n_centers as f64 * (1.0 + self.lambda)
    }

    /// Expected count of isolated centers `U_N·e^{−λ}`.
    pub fn expected_isolated(&self) -> f64 {
        self.n_centers as f64 * (-self.lambda).exp()
    }

    /// Generate the star forest.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> StarForest {
        let dist = Poisson::new(self.lambda).expect("validated lambda");
        let mut graph = Graph::with_nodes(self.n_centers);
        let mut isolated_centers = Vec::new();
        let mut n_leaves: NodeId = 0;
        for center in 0..self.n_centers {
            let k = dist.sample(rng);
            if k == 0 {
                isolated_centers.push(center);
                continue;
            }
            for _ in 0..k {
                let leaf = graph.add_node();
                graph.add_edge(center, leaf);
                n_leaves += 1;
            }
        }
        StarForest {
            graph,
            n_centers: self.n_centers,
            n_leaves,
            isolated_centers,
        }
    }
}

impl StarForest {
    /// Total nodes including invisible isolated centers.
    pub fn total_nodes(&self) -> NodeId {
        self.n_centers + self.n_leaves
    }

    /// Count of single-edge stars (center with exactly one leaf) —
    /// these appear in traffic as the paper's *unattached links*.
    pub fn unattached_link_count(&self) -> u64 {
        let degs = self.graph.degrees();
        (0..self.n_centers as usize)
            .filter(|&c| degs[c] == 1)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::rng::Xoshiro256pp;

    #[test]
    fn construction_validates_lambda() {
        assert!(PoissonStars::new(10, -1.0).is_err());
        assert!(PoissonStars::new(10, f64::NAN).is_err());
        assert!(PoissonStars::new(10, 0.0).is_ok());
    }

    #[test]
    fn structure_is_a_star_forest() {
        let gen = PoissonStars::new(500, 2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let f = gen.generate(&mut rng);
        assert_eq!(f.graph.n_nodes(), f.total_nodes());
        // Every edge connects a center (id < n_centers) to a leaf.
        for &(u, v) in f.graph.edges() {
            let (center, leaf) = if u < f.n_centers { (u, v) } else { (v, u) };
            assert!(center < f.n_centers);
            assert!(leaf >= f.n_centers);
        }
        // Every leaf has degree exactly 1.
        let degs = f.graph.degrees();
        for leaf in f.n_centers..f.total_nodes() {
            assert_eq!(degs[leaf as usize], 1);
        }
        // Edge count equals leaf count.
        assert_eq!(f.graph.n_edges() as u32, f.n_leaves);
    }

    #[test]
    fn isolated_center_fraction_matches_poisson() {
        let lambda = 1.2;
        let gen = PoissonStars::new(50_000, lambda).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        let f = gen.generate(&mut rng);
        let frac = f.isolated_centers.len() as f64 / 50_000.0;
        let expected = (-lambda).exp();
        // Binomial SE ≈ sqrt(p(1-p)/n) ≈ 0.002.
        assert!(
            (frac - expected).abs() < 0.01,
            "isolated fraction {frac} vs e^-λ = {expected}"
        );
        assert!((gen.expected_isolated() - expected * 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn mean_size_matches_lambda() {
        let lambda = 3.0;
        let gen = PoissonStars::new(20_000, lambda).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let f = gen.generate(&mut rng);
        let mean_leaves = f.n_leaves as f64 / 20_000.0;
        assert!(
            (mean_leaves - lambda).abs() < 0.05,
            "mean star size {mean_leaves}"
        );
        assert!((gen.expected_nodes() - 20_000.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_zero_gives_all_isolated() {
        let gen = PoissonStars::new(100, 0.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(24);
        let f = gen.generate(&mut rng);
        assert_eq!(f.n_leaves, 0);
        assert_eq!(f.isolated_centers.len(), 100);
        assert_eq!(f.graph.n_edges(), 0);
        assert_eq!(f.unattached_link_count(), 0);
    }

    #[test]
    fn unattached_links_are_degree_one_centers() {
        // Small λ ⇒ many single-leaf stars: count must match a manual
        // census of components with exactly 2 nodes and 1 edge.
        let gen = PoissonStars::new(10_000, 0.7).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(25);
        let f = gen.generate(&mut rng);
        let comps = crate::components::Components::of(&f.graph);
        let pair_components = comps
            .iter()
            .filter(|&(_, nodes, edges)| nodes == 2 && edges == 1)
            .count() as u64;
        assert_eq!(f.unattached_link_count(), pair_components);
        assert!(pair_components > 0);
    }

    #[test]
    fn determinism_per_seed() {
        let gen = PoissonStars::new(1000, 1.5).unwrap();
        let f1 = gen.generate(&mut Xoshiro256pp::seed_from_u64(9));
        let f2 = gen.generate(&mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(f1.graph, f2.graph);
        assert_eq!(f1.isolated_centers, f2.isolated_centers);
    }
}
