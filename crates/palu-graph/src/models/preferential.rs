//! Preferential-attachment growth processes.
//!
//! The classical Barabási–Albert model: nodes arrive one at a time and
//! attach `m` edges to existing nodes with probability proportional to
//! degree, yielding a power-law degree distribution with exponent
//! `α ≈ 3`. The shifted-linear kernel `A(d) = d + a` generalizes the
//! exponent to `α = 3 + a/m` (Krapivsky–Redner), letting the growth
//! process reach the paper's observed range `α ∈ (2, 3]`. Exponents
//! below 2 are not reachable by linear-kernel growth — the
//! configuration model (sibling module) covers them; the ablation bench
//! E-F2/E-A1 compares the two core generators.

use crate::graph::Graph;
use crate::NodeId;
use palu_stats::error::StatsError;
use palu_stats::rng::Rng;

/// Barabási–Albert preferential attachment with optional kernel shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarabasiAlbert {
    n_nodes: NodeId,
    m: u32,
    shift: f64,
}

impl BarabasiAlbert {
    /// Classic BA: `n_nodes` total, `m` edges per arriving node,
    /// exponent ≈ 3.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `m == 0` or
    /// `n_nodes <= m` (the seed clique wouldn't fit).
    pub fn new(n_nodes: NodeId, m: u32) -> Result<Self, StatsError> {
        Self::with_shift(n_nodes, m, 0.0)
    }

    /// Shifted-kernel PA: attachment weight `d + shift`, target
    /// exponent `α = 3 + shift/m`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `m == 0`, `n_nodes <= m`, or
    /// `shift <= -m` (which would make attachment weights of fresh
    /// nodes non-positive).
    pub fn with_shift(n_nodes: NodeId, m: u32, shift: f64) -> Result<Self, StatsError> {
        if m == 0 {
            return Err(StatsError::domain("BarabasiAlbert", "m must be >= 1"));
        }
        if n_nodes as u64 <= m as u64 {
            return Err(StatsError::domain(
                "BarabasiAlbert",
                format!("need n_nodes > m, got n={n_nodes}, m={m}"),
            ));
        }
        if shift <= -(m as f64) {
            return Err(StatsError::domain(
                "BarabasiAlbert",
                format!("kernel shift must exceed -m, got {shift}"),
            ));
        }
        Ok(BarabasiAlbert { n_nodes, m, shift })
    }

    /// Target exponent for a *shifted* process (`3 + shift/m`); classic
    /// BA returns 3.
    pub fn target_exponent(&self) -> f64 {
        3.0 + self.shift / self.m as f64
    }

    /// Generate the network.
    ///
    /// Uses the repeated-endpoints trick for degree-proportional
    /// sampling (O(1) per draw); the kernel shift is realized by mixing
    /// a uniform node choice with probability `shift / (shift + 2m)`
    /// per the standard redirection equivalence.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.n_nodes;
        let m = self.m;
        let mut g = Graph::with_capacity(n, (n as usize) * m as usize);

        // Seed: a star over the first m+1 nodes, guaranteeing every
        // early node has degree ≥ 1 so attachment is well defined.
        let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n as usize * m as usize);
        let mut degree = vec![0u64; n as usize];
        for v in 1..=m {
            g.add_edge(0, v);
            endpoints.push(0);
            endpoints.push(v);
            degree[0] += 1;
            degree[v as usize] += 1;
        }

        // Mixing weight for the uniform component of the shifted
        // kernel: attaching ∝ (d + a) is equivalent to attaching ∝ d
        // with prob 2m/(2m+a)·… — concretely, pick uniformly with
        // probability a/(a + 2m), by degree otherwise.
        let a = self.shift;
        let p_uniform = if a > 0.0 {
            a / (a + 2.0 * m as f64)
        } else if a < 0.0 {
            // Negative shift: realized by rejection below.
            0.0
        } else {
            0.0
        };

        for new in (m + 1)..n {
            for _ in 0..m {
                let target = loop {
                    let candidate = if a >= 0.0 {
                        if p_uniform > 0.0 && rng.gen::<f64>() < p_uniform {
                            rng.gen_range(0..new)
                        } else {
                            endpoints[rng.gen_range(0..endpoints.len())]
                        }
                    } else {
                        // Negative shift via rejection: propose by
                        // degree, accept with (d + a)/d ≤ 1.
                        let cand = endpoints[rng.gen_range(0..endpoints.len())];
                        let d = degree[cand as usize] as f64;
                        if rng.gen::<f64>() < (d + a) / d {
                            cand
                        } else {
                            continue;
                        }
                    };
                    if candidate != new {
                        break candidate;
                    }
                };
                g.add_edge(new, target);
                endpoints.push(new);
                endpoints.push(target);
                degree[new as usize] += 1;
                degree[target as usize] += 1;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::regression::log_log_ols;
    use palu_stats::rng::Xoshiro256pp;

    #[test]
    fn construction_validates() {
        assert!(BarabasiAlbert::new(100, 0).is_err());
        assert!(BarabasiAlbert::new(2, 2).is_err());
        assert!(BarabasiAlbert::with_shift(100, 2, -2.0).is_err());
        assert!(BarabasiAlbert::with_shift(100, 2, -1.9).is_ok());
        assert!(BarabasiAlbert::new(100, 2).is_ok());
    }

    #[test]
    fn edge_and_node_counts() {
        let ba = BarabasiAlbert::new(1000, 3).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let g = ba.generate(&mut rng);
        assert_eq!(g.n_nodes(), 1000);
        // Seed star has m edges; each of the remaining n-m-1 nodes adds m.
        assert_eq!(g.n_edges(), 3 + (1000 - 4) * 3);
        // No isolated nodes in a BA graph.
        assert_eq!(g.isolated_count(), 0);
    }

    #[test]
    fn no_self_loops() {
        let ba = BarabasiAlbert::new(500, 2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let g = ba.generate(&mut rng);
        assert!(g.edges().iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn classic_ba_exponent_near_three() {
        let ba = BarabasiAlbert::new(60_000, 2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let g = ba.generate(&mut rng);
        let h = g.degree_histogram();
        // Fit the tail (d ≥ 8) slope on the raw log-log histogram.
        let (xs, ys): (Vec<f64>, Vec<f64>) = h
            .iter()
            .filter(|&(d, c)| (8..=128).contains(&d) && c >= 5)
            .map(|(d, c)| (d as f64, c as f64))
            .unzip();
        let fit = log_log_ols(&xs, &ys).unwrap();
        assert!(
            (-fit.slope - 3.0).abs() < 0.45,
            "measured exponent {}",
            -fit.slope
        );
    }

    #[test]
    fn shifted_kernel_changes_exponent() {
        // shift = -1.5, m = 3 → target α = 2.5; verify it lands well
        // below classic BA's 3 and near the target.
        let ba = BarabasiAlbert::with_shift(60_000, 3, -1.5).unwrap();
        assert!((ba.target_exponent() - 2.5).abs() < 1e-12);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let g = ba.generate(&mut rng);
        let h = g.degree_histogram();
        let (xs, ys): (Vec<f64>, Vec<f64>) = h
            .iter()
            .filter(|&(d, c)| (8..=256).contains(&d) && c >= 5)
            .map(|(d, c)| (d as f64, c as f64))
            .unzip();
        let fit = log_log_ols(&xs, &ys).unwrap();
        let measured = -fit.slope;
        assert!(
            (measured - 2.5).abs() < 0.45,
            "measured exponent {measured}"
        );
    }

    #[test]
    fn positive_shift_steepens_tail() {
        // shift = +2, m = 2 → α = 4: heavier small-degree mass than BA.
        let steep = BarabasiAlbert::with_shift(20_000, 2, 2.0).unwrap();
        let classic = BarabasiAlbert::new(20_000, 2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let gs = steep.generate(&mut rng);
        let gc = classic.generate(&mut rng);
        // A steeper distribution has a smaller max degree, typically.
        let (_, ds) = gs.supernode().unwrap();
        let (_, dc) = gc.supernode().unwrap();
        assert!(
            ds < dc,
            "steep max degree {ds} should be below classic {dc}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let ba = BarabasiAlbert::new(500, 2).unwrap();
        let g1 = ba.generate(&mut Xoshiro256pp::seed_from_u64(9));
        let g2 = ba.generate(&mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(g1, g2);
        let g3 = ba.generate(&mut Xoshiro256pp::seed_from_u64(10));
        assert_ne!(g1, g3);
    }
}
