//! Random network generators.
//!
//! * [`preferential`] — Barabási–Albert growth and its shifted-linear-
//!   kernel generalization (the historical PA process the paper builds
//!   on).
//! * [`config_model`] — erased configuration model with a
//!   power-law degree sequence: the paper's core assumption
//!   `#(degree d) ∝ d^{-α}/ζ(α)` realized exactly, for any
//!   `α ∈ (1.5, 3]`.
//! * [`erdos_renyi`] — `G(n, p)` / `G(n, m)` baselines (the paper's
//!   future-work "PA + Erdős–Rényi" comparison).
//! * [`star`] — Poisson star components modeling the unattached
//!   population.

/// Configuration-model sampling of a prescribed power-law degree sequence.
pub mod config_model;
/// `G(n, p)` / `G(n, m)` Erdős–Rényi baselines.
pub mod erdos_renyi;
/// Preferential-attachment (Barabási–Albert style) core generator.
pub mod preferential;
/// Poisson star components modeling the unattached population.
pub mod star;

pub use config_model::PowerLawConfigModel;
pub use erdos_renyi::{gnm, gnp};
pub use preferential::BarabasiAlbert;
pub use star::PoissonStars;
