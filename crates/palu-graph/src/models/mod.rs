//! Random network generators.
//!
//! * [`preferential`] — Barabási–Albert growth and its shifted-linear-
//!   kernel generalization (the historical PA process the paper builds
//!   on).
//! * [`config_model`] — erased configuration model with a
//!   power-law degree sequence: the paper's core assumption
//!   `#(degree d) ∝ d^{-α}/ζ(α)` realized exactly, for any
//!   `α ∈ (1.5, 3]`.
//! * [`erdos_renyi`] — `G(n, p)` / `G(n, m)` baselines (the paper's
//!   future-work "PA + Erdős–Rényi" comparison).
//! * [`star`] — Poisson star components modeling the unattached
//!   population.

pub mod config_model;
pub mod erdos_renyi;
pub mod preferential;
pub mod star;

pub use config_model::PowerLawConfigModel;
pub use erdos_renyi::{gnm, gnp};
pub use preferential::BarabasiAlbert;
pub use star::PoissonStars;
