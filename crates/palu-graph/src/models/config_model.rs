//! Erased configuration model with a power-law degree sequence.
//!
//! The paper's Section V assumption is distributional, not procedural:
//! "the number of core nodes of the underlying network having degree d
//! follows a power-law distribution of the form `d^{-α}/ζ(α)`". The
//! configuration model realizes exactly that for *any* `α > 1` —
//! including the `1.5 ≤ α < 2` regime that no linear-kernel growth
//! process can reach — by sampling i.i.d. zeta degrees, wiring stubs
//! uniformly at random, and erasing self-loops and duplicate edges.

use crate::graph::Graph;
use crate::NodeId;
use palu_stats::distributions::{DiscreteDistribution, TruncatedZeta};
use palu_stats::error::StatsError;
use palu_stats::rng::Rng;
use palu_stats::rng::SliceRandom;

/// Power-law configuration-model generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfigModel {
    n_nodes: NodeId,
    alpha: f64,
    d_max: u64,
    erased: bool,
}

impl PowerLawConfigModel {
    /// Create a generator for `n_nodes` nodes with exponent `α > 1` and
    /// the natural degree cutoff `d_max = n^{1/(α−1)}` (the structural
    /// cutoff beyond which a simple graph can't realize the sequence).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `α ≤ 1` or `n_nodes < 2`.
    pub fn new(n_nodes: NodeId, alpha: f64) -> Result<Self, StatsError> {
        let d_max = (n_nodes as f64).powf(1.0 / (alpha - 1.0)).ceil().max(2.0) as u64;
        Self::with_cutoff(n_nodes, alpha, d_max)
    }

    /// Create with an explicit degree cutoff `d_max`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `α ≤ 1`, `n_nodes < 2`, or
    /// `d_max == 0`.
    pub fn with_cutoff(n_nodes: NodeId, alpha: f64, d_max: u64) -> Result<Self, StatsError> {
        if n_nodes < 2 {
            return Err(StatsError::domain(
                "PowerLawConfigModel",
                "need at least 2 nodes",
            ));
        }
        // Validate alpha/d_max by constructing the distribution once.
        TruncatedZeta::new(alpha, d_max)?;
        Ok(PowerLawConfigModel {
            n_nodes,
            alpha,
            d_max,
            erased: true,
        })
    }

    /// Keep parallel edges instead of erasing them (self-loops are
    /// always dropped). The *erased* model yields a simple graph but
    /// biases the realized exponent upward when `α < 2` (heavy stub
    /// collisions around the hubs); the multigraph variant preserves
    /// the sampled degree sequence almost exactly at the cost of
    /// parallel edges — which traffic networks represent naturally as
    /// link weights.
    pub fn multigraph(mut self) -> Self {
        self.erased = false;
        self
    }

    /// The exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The degree cutoff.
    pub fn d_max(&self) -> u64 {
        self.d_max
    }

    /// Sample the degree sequence: i.i.d. truncated-zeta draws, with
    /// one degree bumped by 1 if the stub total is odd.
    pub fn sample_degrees<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let dist = TruncatedZeta::new(self.alpha, self.d_max).expect("validated params");
        let mut degrees: Vec<u64> = (0..self.n_nodes).map(|_| dist.sample(rng)).collect();
        if degrees.iter().sum::<u64>() % 2 == 1 {
            // Parity fix on a uniformly chosen node keeps the
            // distributional perturbation O(1/n).
            let idx = rng.gen_range(0..degrees.len());
            degrees[idx] += 1;
        }
        degrees
    }

    /// Generate the graph: wire stubs uniformly, erase self-loops and
    /// duplicate edges (erased configuration model). The realized
    /// degree of a node may therefore fall slightly below its sampled
    /// degree; for `α > 1.5` and the natural cutoff the erased fraction
    /// is o(1).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let degrees = self.sample_degrees(rng);
        self.generate_with_degrees(rng, &degrees)
    }

    /// Wire a *given* degree sequence (must have even sum).
    pub fn generate_with_degrees<R: Rng + ?Sized>(&self, rng: &mut R, degrees: &[u64]) -> Graph {
        let total: u64 = degrees.iter().sum();
        assert!(
            total.is_multiple_of(2),
            "degree sequence must have even sum"
        );
        let mut stubs: Vec<NodeId> = Vec::with_capacity(total as usize);
        for (node, &d) in degrees.iter().enumerate() {
            for _ in 0..d {
                stubs.push(node as NodeId);
            }
        }
        stubs.shuffle(rng);

        let mut g = Graph::with_capacity(degrees.len() as NodeId, stubs.len() / 2);
        // Membership-only dedup, never iterated; edge order follows the
        // shuffled stub order. lint:allow(R2)
        let mut seen = std::collections::HashSet::with_capacity(stubs.len() / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue; // self-loops always dropped
            }
            if self.erased {
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    g.add_edge(u, v);
                } // else: erase duplicate
            } else {
                g.add_edge(u, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::mle::fit_alpha_discrete;
    use palu_stats::rng::Xoshiro256pp;

    #[test]
    fn construction_validates() {
        assert!(PowerLawConfigModel::new(1, 2.0).is_err());
        assert!(PowerLawConfigModel::new(100, 1.0).is_err());
        assert!(PowerLawConfigModel::with_cutoff(100, 2.0, 0).is_err());
        assert!(PowerLawConfigModel::new(100, 2.0).is_ok());
    }

    #[test]
    fn natural_cutoff_scales_with_n() {
        let m1 = PowerLawConfigModel::new(10_000, 2.0).unwrap();
        // n^{1/(α-1)} = 10^4 for α = 2.
        assert_eq!(m1.d_max(), 10_000);
        let m2 = PowerLawConfigModel::new(10_000, 3.0).unwrap();
        // n^{1/2} = 100.
        assert_eq!(m2.d_max(), 100);
    }

    #[test]
    fn degree_sequence_has_even_sum() {
        let m = PowerLawConfigModel::new(10_001, 2.2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..10 {
            let d = m.sample_degrees(&mut rng);
            assert_eq!(d.len(), 10_001);
            assert_eq!(d.iter().sum::<u64>() % 2, 0);
            assert!(d.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn generated_graph_is_simple() {
        let m = PowerLawConfigModel::new(5_000, 2.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let g = m.generate(&mut rng);
        // No self-loops.
        assert!(g.edges().iter().all(|&(u, v)| u != v));
        // No duplicate undirected edges.
        let mut keys: Vec<_> = g
            .edges()
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn realized_exponent_matches_target() {
        // Erased model: tight for α ≥ 2, looser below 2 where stub
        // collisions around the hubs bias the realization upward.
        for &(alpha, tol) in &[(1.7, 0.2), (2.0, 0.1), (2.5, 0.1)] {
            let m = PowerLawConfigModel::new(60_000, alpha).unwrap();
            let mut rng = Xoshiro256pp::seed_from_u64(100 + (alpha * 10.0) as u64);
            let g = m.generate(&mut rng);
            let h = g.degree_histogram();
            let fit = fit_alpha_discrete(&h, 1).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < tol,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
        }
    }

    #[test]
    fn multigraph_mode_is_unbiased_at_low_alpha() {
        let alpha = 1.7;
        let m = PowerLawConfigModel::new(60_000, alpha)
            .unwrap()
            .multigraph();
        let mut rng = Xoshiro256pp::seed_from_u64(117);
        let g = m.generate(&mut rng);
        let fit = fit_alpha_discrete(&g.degree_histogram(), 1).unwrap();
        assert!(
            (fit.alpha - alpha).abs() < 0.05,
            "multigraph fitted {}",
            fit.alpha
        );
    }

    #[test]
    fn erasure_is_small_for_moderate_alpha() {
        let m = PowerLawConfigModel::new(20_000, 2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let degrees = m.sample_degrees(&mut rng);
        let stub_edges: u64 = degrees.iter().sum::<u64>() / 2;
        let g = m.generate_with_degrees(&mut rng, &degrees);
        let kept = g.n_edges() as u64;
        let erased_frac = 1.0 - kept as f64 / stub_edges as f64;
        assert!(
            erased_frac < 0.05,
            "erased fraction {erased_frac} too large"
        );
    }

    #[test]
    fn given_degree_sequence_is_respected() {
        // A regular sequence: every node degree 2 → realized degrees ≤ 2
        // and mostly exactly 2.
        let m = PowerLawConfigModel::new(1000, 2.0).unwrap();
        let degrees = vec![2u64; 1000];
        let mut rng = Xoshiro256pp::seed_from_u64(14);
        let g = m.generate_with_degrees(&mut rng, &degrees);
        let realized = g.degrees();
        assert!(realized.iter().all(|&d| d <= 2));
        let exact = realized.iter().filter(|&&d| d == 2).count();
        assert!(exact > 900, "only {exact} nodes kept full degree");
    }

    #[test]
    #[should_panic(expected = "even sum")]
    fn odd_degree_sum_panics() {
        let m = PowerLawConfigModel::new(3, 2.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(15);
        m.generate_with_degrees(&mut rng, &[1, 1, 1]);
    }

    #[test]
    fn determinism_per_seed() {
        let m = PowerLawConfigModel::new(2000, 2.2).unwrap();
        let g1 = m.generate(&mut Xoshiro256pp::seed_from_u64(77));
        let g2 = m.generate(&mut Xoshiro256pp::seed_from_u64(77));
        assert_eq!(g1, g2);
    }
}
