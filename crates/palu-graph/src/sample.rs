//! Erdős–Rényi edge sampling — the observation mechanism.
//!
//! Section V: "We obtain our observed subnetwork by retaining each edge
//! independently with probability p, creating an Erdős–Rényi random
//! subnetwork of the underlying network." The window-size parameter
//! `p ∈ [0, 1]` is "the probability that an edge in the underlying
//! network will appear (be selected) in the observed network"
//! (Section III-A); larger packet windows correspond to larger `p`.

use crate::graph::Graph;
use crate::palu_gen::UnderlyingNetwork;
use palu_stats::rng::Rng;

/// Retain each edge of `g` independently with probability `p`. The
/// node set is preserved (nodes that lose all edges become invisible
/// isolated nodes, exactly like the paper's unobservable stars).
///
/// # Examples
///
/// ```
/// use palu_graph::graph::Graph;
/// use palu_graph::sample::sample_edges;
/// use palu_stats::rng::Xoshiro256pp;
/// let mut g = Graph::with_nodes(1000);
/// for i in 0..999 {
///     g.add_edge(i, i + 1);
/// }
/// let observed = sample_edges(&g, 0.5, &mut Xoshiro256pp::seed_from_u64(1));
/// assert_eq!(observed.n_nodes(), 1000);       // node set preserved
/// assert!(observed.n_edges() < g.n_edges());  // edges thinned
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn sample_edges<R: Rng + ?Sized>(g: &Graph, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "retention probability must be in [0,1], got {p}"
    );
    let mut out = Graph::with_capacity(g.n_nodes(), (g.n_edges() as f64 * p) as usize + 16);
    if p == 0.0 {
        return out;
    }
    if p == 1.0 {
        for &(u, v) in g.edges() {
            out.add_edge(u, v);
        }
        return out;
    }
    for &(u, v) in g.edges() {
        if rng.gen::<f64>() < p {
            out.add_edge(u, v);
        }
    }
    out
}

/// An observed network: the edge-sampled graph plus a reference to what
/// produced it.
#[derive(Debug, Clone)]
pub struct ObservedNetwork {
    /// The sampled graph (full node set, thinned edges).
    pub graph: Graph,
    /// Retention probability used.
    pub p: f64,
}

impl ObservedNetwork {
    /// Observe an underlying network through window parameter `p`.
    pub fn observe<R: Rng + ?Sized>(underlying: &UnderlyingNetwork, p: f64, rng: &mut R) -> Self {
        ObservedNetwork {
            graph: sample_edges(&underlying.graph, p, rng),
            p,
        }
    }

    /// Degree histogram of the *visible* observed network (degree ≥ 1)
    /// — what the measurement pipeline sees.
    pub fn degree_histogram(&self) -> palu_stats::histogram::DegreeHistogram {
        self.graph.degree_histogram()
    }

    /// Number of visible nodes.
    pub fn visible_nodes(&self) -> u64 {
        self.graph.n_nodes() as u64 - self.graph.isolated_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palu_gen::PaluGenerator;
    use palu_stats::rng::Xoshiro256pp;

    fn chain(n: u32) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn p_zero_and_one() {
        let g = chain(100);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let none = sample_edges(&g, 0.0, &mut rng);
        assert_eq!(none.n_edges(), 0);
        assert_eq!(none.n_nodes(), 100);
        let all = sample_edges(&g, 1.0, &mut rng);
        assert_eq!(all.n_edges(), 99);
        assert_eq!(all.edges(), g.edges());
    }

    #[test]
    #[should_panic(expected = "retention probability")]
    fn invalid_p_panics() {
        let g = chain(3);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        sample_edges(&g, 1.5, &mut rng);
    }

    #[test]
    fn retention_rate_concentrates_at_p() {
        let g = chain(100_000);
        let p = 0.37;
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let s = sample_edges(&g, p, &mut rng);
        let rate = s.n_edges() as f64 / g.n_edges() as f64;
        // Binomial SE ≈ sqrt(p(1-p)/E) ≈ 0.0015.
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sampled_edges_are_a_subset() {
        let g = chain(1000);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let s = sample_edges(&g, 0.5, &mut rng);
        let original: std::collections::HashSet<_> = g.edges().iter().collect();
        for e in s.edges() {
            assert!(original.contains(e));
        }
    }

    #[test]
    fn observed_degree_is_binomially_thinned() {
        // A star with degree 10_000 observed at p = 0.3: observed
        // degree ≈ Bin(10000, 0.3), mean 3000, sd ≈ 46.
        let mut g = Graph::with_nodes(10_001);
        for v in 1..=10_000 {
            g.add_edge(0, v);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let s = sample_edges(&g, 0.3, &mut rng);
        let d0 = s.degrees()[0];
        assert!(
            (d0 as f64 - 3000.0).abs() < 250.0,
            "observed supernode degree {d0}"
        );
    }

    #[test]
    fn observe_underlying_network() {
        let net = PaluGenerator::new(2_000, 500, 300, 2.0, 1.5)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(6));
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let obs = ObservedNetwork::observe(&net, 0.5, &mut rng);
        assert_eq!(obs.p, 0.5);
        assert_eq!(obs.graph.n_nodes(), net.graph.n_nodes());
        assert!(obs.graph.n_edges() < net.graph.n_edges());
        assert!(obs.visible_nodes() < net.visible_nodes());
        assert!(!obs.degree_histogram().is_empty());
    }

    #[test]
    fn smaller_p_sees_fewer_nodes() {
        // The paper: "As the window size increases, p will get closer
        // to 1 … it is more likely to see more edges."
        let net = PaluGenerator::new(3_000, 1_000, 500, 2.0, 2.0)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(8));
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let lo = ObservedNetwork::observe(&net, 0.1, &mut rng);
        let hi = ObservedNetwork::observe(&net, 0.9, &mut rng);
        assert!(lo.visible_nodes() < hi.visible_nodes());
        assert!(lo.graph.n_edges() < hi.graph.n_edges());
    }
}
