//! Property-based tests for the graph substrate: structural invariants
//! over randomly parameterized generators and samplers.
// Gated: `proptest` is declared as an empty feature so the offline
// build never resolves the external crate. To run these tests, add
// `proptest = "1"` under [dev-dependencies] (requires network) and
// build with `--features proptest`. The in-repo fallback coverage
// lives in each crate's tests/random_inputs.rs.
#![cfg(feature = "proptest")]

use palu_graph::census::TopologyCensus;
use palu_graph::components::Components;
use palu_graph::graph::Graph;
use palu_graph::models::{gnm, gnp, PoissonStars, PowerLawConfigModel};
use palu_graph::palu_gen::{NodeRole, PaluGenerator};
use palu_graph::sample::sample_edges;
use palu_stats::rng::Xoshiro256pp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_lemma(edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
        let mut g = Graph::with_nodes(50);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let degree_sum: u64 = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.n_edges() as u64);
        // Histogram agrees with the degree vector.
        let h = g.degree_histogram_with_isolated();
        prop_assert_eq!(h.total(), 50);
        prop_assert_eq!(h.degree_sum(), degree_sum);
    }

    #[test]
    fn components_partition_the_nodes(edges in prop::collection::vec((0u32..40, 0u32..40), 0..100)) {
        let mut g = Graph::with_nodes(40);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let c = Components::of(&g);
        // Labels are dense and node counts sum to n.
        let total: u32 = (0..c.count() as u32).map(|l| c.node_count(l)).sum();
        prop_assert_eq!(total, 40);
        // Edge counts sum to |E|.
        let edge_total: u64 = (0..c.count() as u32).map(|l| c.edge_count(l)).sum();
        prop_assert_eq!(edge_total, g.n_edges() as u64);
        // Endpoints of every edge share a label.
        for &(u, v) in g.edges() {
            prop_assert_eq!(c.label(u), c.label(v));
        }
        // A component's edges ≥ nodes − 1 (connectivity lower bound).
        for (_, nodes, e) in c.iter() {
            prop_assert!(e + 1 >= nodes as u64 || nodes == 1);
        }
    }

    #[test]
    fn gnp_produces_simple_graphs(n in 2u32..150, p in 0f64..0.3, seed in 0u64..500) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = gnp(n, p, &mut rng).unwrap();
        prop_assert_eq!(g.n_nodes(), n);
        let mut keys: Vec<_> = g.edges().iter().map(|&(u, v)| {
            prop_assert!(u != v);
            prop_assert!(u < n && v < n);
            Ok((u.min(v), u.max(v)))
        }).collect::<Result<_, _>>()?;
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    #[test]
    fn gnm_has_exact_edges(n in 2u32..100, seed in 0u64..500) {
        let max = n as u64 * (n as u64 - 1) / 2;
        let m = max / 3;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = gnm(n, m, &mut rng).unwrap();
        prop_assert_eq!(g.n_edges() as u64, m);
    }

    #[test]
    fn config_model_degrees_bounded_by_sequence(n in 10u32..500, alpha in 1.6f64..3.0, seed in 0u64..200) {
        let m = PowerLawConfigModel::new(n, alpha).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let degrees = m.sample_degrees(&mut rng);
        let g = m.generate_with_degrees(&mut rng, &degrees);
        // Erasure only removes edges: realized ≤ sampled, per node.
        for (node, &d) in g.degrees().iter().enumerate() {
            prop_assert!(d <= degrees[node]);
        }
        prop_assert_eq!(g.n_nodes(), n);
    }

    #[test]
    fn star_forest_structure(n in 1u32..300, lambda in 0f64..6.0, seed in 0u64..200) {
        let gen = PoissonStars::new(n, lambda).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let f = gen.generate(&mut rng);
        prop_assert_eq!(f.graph.n_edges() as u32, f.n_leaves);
        prop_assert_eq!(f.total_nodes(), n + f.n_leaves);
        // Isolated centers really are isolated; others are not.
        let degs = f.graph.degrees();
        let isolated: std::collections::HashSet<_> =
            f.isolated_centers.iter().copied().collect();
        for c in 0..n {
            if isolated.contains(&c) {
                prop_assert_eq!(degs[c as usize], 0);
            } else {
                prop_assert!(degs[c as usize] >= 1);
            }
        }
    }

    #[test]
    fn sampling_is_monotone_in_expectation(
        edges in prop::collection::vec((0u32..60, 0u32..60), 10..200),
        p in 0.0f64..1.0,
        seed in 0u64..200,
    ) {
        let mut g = Graph::with_nodes(60);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let s = sample_edges(&g, p, &mut rng);
        prop_assert!(s.n_edges() <= g.n_edges());
        prop_assert_eq!(s.n_nodes(), g.n_nodes());
        // Sampled edges are a sub-multiset.
        let mut pool: std::collections::HashMap<(u32, u32), i64> = std::collections::HashMap::new();
        for &e in g.edges() {
            *pool.entry(e).or_insert(0) += 1;
        }
        for &e in s.edges() {
            let c = pool.entry(e).or_insert(0);
            *c -= 1;
            prop_assert!(*c >= 0);
        }
    }

    #[test]
    fn palu_network_role_invariants(
        n_core in 10u32..400,
        n_leaves in 0u32..200,
        n_stars in 0u32..200,
        alpha in 1.6f64..3.0,
        lambda in 0f64..5.0,
        seed in 0u64..100,
    ) {
        let gen = PaluGenerator::new(n_core, n_leaves, n_stars, alpha, lambda).unwrap();
        let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(seed));
        prop_assert_eq!(net.count_role(NodeRole::Core), n_core as u64);
        prop_assert_eq!(net.count_role(NodeRole::Leaf), n_leaves as u64);
        prop_assert_eq!(net.count_role(NodeRole::StarCenter), n_stars as u64);
        prop_assert_eq!(net.roles.len(), net.n_nodes() as usize);
        // Leaves have degree exactly 1; star leaves have degree 1.
        let degs = net.graph.degrees();
        for (v, &role) in net.roles.iter().enumerate() {
            match role {
                NodeRole::Leaf | NodeRole::StarLeaf => prop_assert_eq!(degs[v], 1),
                _ => {}
            }
        }
        // Every recorded zero-leaf center is isolated; conversely an
        // isolated node is either a recorded center or (rarely) a core
        // node whose few stubs were all erased as self-loops /
        // duplicates by the configuration-model wiring.
        let iso: std::collections::HashSet<_> =
            net.isolated_star_centers.iter().copied().collect();
        for &c in &iso {
            prop_assert_eq!(degs[c as usize], 0);
        }
        for v in 0..net.n_nodes() {
            if degs[v as usize] == 0 && !iso.contains(&v) {
                prop_assert_eq!(net.role(v), NodeRole::Core, "node {}", v);
            }
        }
    }

    #[test]
    fn census_internal_consistency(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..150),
        extra_isolated in 0u32..10,
    ) {
        let mut g = Graph::with_nodes(50 + extra_isolated);
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        let c = TopologyCensus::of(&g);
        prop_assert_eq!(c.n_nodes, (50 + extra_isolated) as u64);
        prop_assert_eq!(c.n_edges, g.n_edges() as u64);
        prop_assert!(c.core_nodes <= c.n_nodes - c.isolated_nodes || c.n_edges == 0);
        prop_assert!(c.supernode_leaves <= c.supernode_degree);
        prop_assert!(c.unattached_links <= c.nontrivial_components);
        prop_assert!(c.core_fraction() <= 1.0 + 1e-12);
    }
}
