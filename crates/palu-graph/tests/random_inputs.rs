//! Randomized-input fallback for the gated proptest suite
//! (`tests/proptest_graph.rs`): the same invariants, driven by the
//! in-repo deterministic RNG so they run in the offline build.

use palu_graph::census::TopologyCensus;
use palu_graph::components::Components;
use palu_graph::graph::Graph;
use palu_graph::models::{gnm, gnp, PoissonStars, PowerLawConfigModel};
use palu_graph::palu_gen::{NodeRole, PaluGenerator};
use palu_graph::sample::sample_edges;
use palu_stats::rng::{Rng, Xoshiro256pp};

const CASES: usize = 60;

fn uniform(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

fn random_graph(rng: &mut Xoshiro256pp, n: u32, max_edges: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for _ in 0..rng.gen_range(0..max_edges) {
        g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n));
    }
    g
}

#[test]
fn handshake_lemma() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6001);
    for _ in 0..CASES {
        let g = random_graph(&mut rng, 50, 200);
        let degree_sum: u64 = g.degrees().iter().sum();
        assert_eq!(degree_sum, 2 * g.n_edges() as u64);
        let h = g.degree_histogram_with_isolated();
        assert_eq!(h.total(), 50);
        assert_eq!(h.degree_sum(), degree_sum);
    }
}

#[test]
fn components_partition_the_nodes() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6002);
    for _ in 0..CASES {
        let g = random_graph(&mut rng, 40, 100);
        let c = Components::of(&g);
        let total: u32 = (0..c.count() as u32).map(|l| c.node_count(l)).sum();
        assert_eq!(total, 40);
        let edge_total: u64 = (0..c.count() as u32).map(|l| c.edge_count(l)).sum();
        assert_eq!(edge_total, g.n_edges() as u64);
        for &(u, v) in g.edges() {
            assert_eq!(c.label(u), c.label(v));
        }
        for (_, nodes, e) in c.iter() {
            assert!(e + 1 >= nodes as u64 || nodes == 1);
        }
    }
}

#[test]
fn gnp_produces_simple_graphs_and_gnm_exact_edges() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6003);
    for _ in 0..CASES {
        let n = rng.gen_range(2u32..150);
        let p = 0.3 * rng.gen::<f64>();
        let g = gnp(n, p, &mut rng).unwrap();
        assert_eq!(g.n_nodes(), n);
        let mut keys: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|&(u, v)| {
                assert!(u != v);
                assert!(u < n && v < n);
                (u.min(v), u.max(v))
            })
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), before);

        let m = (n as u64 * (n as u64 - 1) / 2) / 3;
        let g = gnm(n, m, &mut rng).unwrap();
        assert_eq!(g.n_edges() as u64, m);
    }
}

#[test]
fn config_model_degrees_bounded_by_sequence() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6004);
    for _ in 0..CASES {
        let n = rng.gen_range(10u32..500);
        let alpha = uniform(&mut rng, 1.6, 3.0);
        let m = PowerLawConfigModel::new(n, alpha).unwrap();
        let degrees = m.sample_degrees(&mut rng);
        let g = m.generate_with_degrees(&mut rng, &degrees);
        for (node, &d) in g.degrees().iter().enumerate() {
            assert!(d <= degrees[node]);
        }
        assert_eq!(g.n_nodes(), n);
    }
}

#[test]
fn star_forest_structure() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6005);
    for _ in 0..CASES {
        let n = rng.gen_range(1u32..300);
        let lambda = uniform(&mut rng, 0.0, 6.0);
        let f = PoissonStars::new(n, lambda).unwrap().generate(&mut rng);
        assert_eq!(f.graph.n_edges() as u32, f.n_leaves);
        assert_eq!(f.total_nodes(), n + f.n_leaves);
        let degs = f.graph.degrees();
        let isolated: std::collections::HashSet<_> = f.isolated_centers.iter().copied().collect();
        for c in 0..n {
            if isolated.contains(&c) {
                assert_eq!(degs[c as usize], 0);
            } else {
                assert!(degs[c as usize] >= 1);
            }
        }
    }
}

#[test]
fn sampling_yields_a_sub_multiset() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6006);
    for _ in 0..CASES {
        let g = random_graph(&mut rng, 60, 200);
        let p = rng.gen::<f64>();
        let s = sample_edges(&g, p, &mut rng);
        assert!(s.n_edges() <= g.n_edges());
        assert_eq!(s.n_nodes(), g.n_nodes());
        let mut pool: std::collections::HashMap<(u32, u32), i64> = std::collections::HashMap::new();
        for &e in g.edges() {
            *pool.entry(e).or_insert(0) += 1;
        }
        for &e in s.edges() {
            let c = pool.entry(e).or_insert(0);
            *c -= 1;
            assert!(*c >= 0);
        }
    }
}

#[test]
fn palu_network_role_invariants() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6007);
    for _ in 0..CASES {
        let n_core = rng.gen_range(10u32..400);
        let n_leaves = rng.gen_range(0u32..200);
        let n_stars = rng.gen_range(0u32..200);
        let alpha = uniform(&mut rng, 1.6, 3.0);
        let lambda = uniform(&mut rng, 0.0, 5.0);
        let gen = PaluGenerator::new(n_core, n_leaves, n_stars, alpha, lambda).unwrap();
        let net = gen.generate(&mut rng);
        assert_eq!(net.count_role(NodeRole::Core), n_core as u64);
        assert_eq!(net.count_role(NodeRole::Leaf), n_leaves as u64);
        assert_eq!(net.count_role(NodeRole::StarCenter), n_stars as u64);
        assert_eq!(net.roles.len(), net.n_nodes() as usize);
        let degs = net.graph.degrees();
        for (v, &role) in net.roles.iter().enumerate() {
            if matches!(role, NodeRole::Leaf | NodeRole::StarLeaf) {
                assert_eq!(degs[v], 1);
            }
        }
        let iso: std::collections::HashSet<_> = net.isolated_star_centers.iter().copied().collect();
        for &c in &iso {
            assert_eq!(degs[c as usize], 0);
        }
        for v in 0..net.n_nodes() {
            if degs[v as usize] == 0 && !iso.contains(&v) {
                assert_eq!(net.role(v), NodeRole::Core, "node {v}");
            }
        }
    }
}

#[test]
fn census_internal_consistency() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x6008);
    for _ in 0..CASES {
        let extra_isolated = rng.gen_range(0u32..10);
        let mut g = Graph::with_nodes(50 + extra_isolated);
        for _ in 0..rng.gen_range(0usize..150) {
            g.add_edge(rng.gen_range(0u32..50), rng.gen_range(0u32..50));
        }
        let c = TopologyCensus::of(&g);
        assert_eq!(c.n_nodes, (50 + extra_isolated) as u64);
        assert_eq!(c.n_edges, g.n_edges() as u64);
        assert!(c.core_nodes <= c.n_nodes - c.isolated_nodes || c.n_edges == 0);
        assert!(c.supernode_leaves <= c.supernode_degree);
        assert!(c.unattached_links <= c.nontrivial_components);
        assert!(c.core_fraction() <= 1.0 + 1e-12);
    }
}
