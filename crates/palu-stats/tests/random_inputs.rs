//! Randomized-input fallback for the gated proptest suite
//! (`tests/proptest_stats.rs`): the same invariants, driven by the
//! in-repo deterministic RNG so they run in the offline build.

use palu_stats::distributions::{Binomial, DiscreteDistribution, Poisson, Zeta};
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::{DifferentialCumulative, LogBins};
use palu_stats::regression::ols;
use palu_stats::rng::{Rng, Xoshiro256pp};
use palu_stats::solve::{bisect, brent};
use palu_stats::special::{harmonic_partial, hurwitz_zeta, ln_factorial, riemann_zeta};
use palu_stats::summary::Welford;

const CASES: usize = 200;

fn uniform(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[test]
fn zeta_is_monotone_decreasing() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5150);
    for _ in 0..CASES {
        let s1 = uniform(&mut rng, 1.1, 6.0);
        let ds = uniform(&mut rng, 0.01, 2.0);
        let z1 = riemann_zeta(s1).unwrap();
        let z2 = riemann_zeta(s1 + ds).unwrap();
        assert!(z2 < z1, "ζ({s1}) = {z1} vs ζ({}) = {z2}", s1 + ds);
        assert!(z2 > 1.0);
    }
}

#[test]
fn hurwitz_shift_and_harmonic_partition() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5151);
    for _ in 0..CASES {
        // ζ(s, q) = q^{-s} + ζ(s, q + 1)
        let s = uniform(&mut rng, 1.1, 5.0);
        let q = uniform(&mut rng, 0.05, 20.0);
        let lhs = hurwitz_zeta(s, q).unwrap();
        let rhs = q.powf(-s) + hurwitz_zeta(s, q + 1.0).unwrap();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs());
        // H(n, s) + ζ(s, n+1) = ζ(s)
        let n = rng.gen_range(1u64..3000);
        let s = uniform(&mut rng, 1.1, 4.0);
        let whole = riemann_zeta(s).unwrap();
        let head = harmonic_partial(n, s);
        let tail = hurwitz_zeta(s, n as f64 + 1.0).unwrap();
        assert!((whole - head - tail).abs() < 1e-9);
        assert!(head > 0.0 && head < whole);
    }
}

#[test]
fn ln_factorial_recurrence() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5152);
    for _ in 0..CASES {
        let n = rng.gen_range(0u64..5000);
        let lhs = ln_factorial(n + 1);
        let rhs = ln_factorial(n) + ((n + 1) as f64).ln();
        assert!((lhs - rhs).abs() < 1e-8 * lhs.max(1.0));
    }
}

#[test]
fn pmf_identities() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5153);
    for _ in 0..CASES {
        // Poisson: pmf(k+1)/pmf(k) = λ/(k+1)
        let lambda = uniform(&mut rng, 0.01, 50.0);
        let k = rng.gen_range(0u64..100);
        let d = Poisson::new(lambda).unwrap();
        let ratio = d.pmf(k + 1) / d.pmf(k);
        assert!((ratio - lambda / (k + 1) as f64).abs() < 1e-6 * ratio.max(1e-12));
        // Binomial: Bin(n,p).pmf(k) = Bin(n,1−p).pmf(n−k)
        let n = rng.gen_range(1u64..200);
        let p = uniform(&mut rng, 0.01, 0.99);
        let k = rng.gen_range(0..n + 1);
        let a = Binomial::new(n, p).unwrap().pmf(k);
        let b = Binomial::new(n, 1.0 - p).unwrap().pmf(n - k);
        assert!((a - b).abs() < 1e-10 * a.max(1e-12));
        // Zeta cdf monotone, pmf decreasing.
        let alpha = uniform(&mut rng, 1.1, 4.0);
        let k = rng.gen_range(1u64..500);
        let z = Zeta::new(alpha).unwrap();
        assert!(z.cdf(k + 1) >= z.cdf(k));
        assert!(z.cdf(k) <= 1.0 + 1e-12);
        assert!(z.pmf(k) >= z.pmf(k + 1));
    }
}

#[test]
fn binomial_samples_in_range() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5154);
    for _ in 0..CASES {
        let n = rng.gen_range(0u64..10_000);
        let p = rng.gen::<f64>();
        let x = Binomial::new(n, p).unwrap().sample(&mut rng);
        assert!(x <= n);
    }
}

#[test]
fn histogram_counting_and_merge() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5155);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..200);
        let degrees: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..5000)).collect();
        let h = DegreeHistogram::from_degrees(degrees.iter().copied());
        assert_eq!(h.total(), degrees.len() as u64);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), degrees.len() as u64);
        if !degrees.is_empty() {
            assert_eq!(h.d_max(), degrees.iter().copied().max());
            assert_eq!(h.d_min(), degrees.iter().copied().min());
            assert_eq!(h.degree_sum(), degrees.iter().sum::<u64>());
        }
        // Merge is count addition.
        let cut = if degrees.is_empty() {
            0
        } else {
            rng.gen_range(0..degrees.len())
        };
        let mut merged = DegreeHistogram::from_degrees(degrees[..cut].iter().copied());
        merged.merge(&DegreeHistogram::from_degrees(
            degrees[cut..].iter().copied(),
        ));
        assert_eq!(merged, h);
    }
}

#[test]
fn pooling_conserves_probability_and_bins_invert() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5156);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..300);
        let degrees: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..100_000)).collect();
        let h = DegreeHistogram::from_degrees(degrees.iter().copied());
        let pooled = DifferentialCumulative::from_histogram(&h);
        assert!((pooled.total_mass() - 1.0).abs() < 1e-9);
        let max_bin = LogBins::bin_index(h.d_max().unwrap()) as usize;
        assert_eq!(pooled.n_bins(), max_bin + 1);
        assert_eq!(pooled.last_nonzero_bin(), Some(max_bin));
        // Bin bounds invert the index.
        let d = rng.gen_range(1u64..1_000_000_000);
        let i = LogBins::bin_index(d);
        assert!(LogBins::lower_bound_exclusive(i) < d);
        assert!(d <= LogBins::upper_bound(i));
        assert!(LogBins::range(i).contains(&d));
    }
}

#[test]
fn welford_matches_two_pass_and_merges() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5157);
    for _ in 0..CASES {
        let len = rng.gen_range(2usize..100);
        let xs: Vec<f64> = (0..len).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
        let fold = |v: &[f64]| {
            let mut w = Welford::new();
            for &x in v {
                w.push(x);
            }
            w
        };
        let w = fold(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        assert!((w.variance() - var).abs() < 1e-5 * var.max(1.0));
        // Merge of a split equals the whole.
        let cut = rng.gen_range(1..xs.len());
        let mut merged = fold(&xs[..cut]);
        merged.merge(&fold(&xs[cut..]));
        assert!((merged.mean() - w.mean()).abs() < 1e-6 * w.mean().abs().max(1.0));
        assert!((merged.variance() - w.variance()).abs() < 1e-5 * w.variance().max(1.0));
    }
}

#[test]
fn ols_is_exact_on_lines() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5158);
    for _ in 0..CASES {
        let slope = uniform(&mut rng, -100.0, 100.0);
        let intercept = uniform(&mut rng, -100.0, 100.0);
        let n = rng.gen_range(3usize..50);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let r = ols(&xs, &ys).unwrap();
        assert!((r.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        assert!((r.intercept - intercept).abs() < 1e-6 * intercept.abs().max(1.0));
    }
}

#[test]
fn root_finders_agree() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5159);
    for _ in 0..CASES {
        let target = uniform(&mut rng, -50.0, 50.0);
        let f = |x: f64| x.powi(3) - target.powi(3);
        let (a, b) = (target - 60.0, target + 60.0);
        let r1 = bisect(f, a, b, 1e-10, 500).unwrap();
        let r2 = brent(f, a, b, 1e-12, 500).unwrap();
        assert!((r1 - target).abs() < 1e-5);
        assert!((r2 - target).abs() < 1e-5);
    }
}

// ---- journal codec round-trips (Welford / BinStats byte-exactness) ----
//
// The capture journal (palu-traffic, DESIGN.md §4f) persists Welford
// and BinStats state as raw IEEE-754 bit patterns; a resumed capture
// is only crash-equivalent if encode → decode → encode reproduces the
// exact bytes — for every representable value, including the ones
// float arithmetic folds away: ±0.0, subnormals, and NaN payload bits.

/// Bit patterns a float codec must not canonicalize.
fn adversarial_bits(rng: &mut Xoshiro256pp) -> u64 {
    const SPECIALS: [u64; 10] = [
        0x0000_0000_0000_0000, // +0.0
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0001, // smallest positive subnormal
        0x800F_FFFF_FFFF_FFFF, // largest negative subnormal
        0x7FF0_0000_0000_0000, // +inf
        0xFFF0_0000_0000_0000, // -inf
        0x7FF8_0000_0000_0000, // canonical quiet NaN
        0x7FF8_DEAD_BEEF_CAFE, // quiet NaN with payload
        0x7FF0_0000_0000_0001, // signaling NaN
        0xFFFF_FFFF_FFFF_FFFF, // negative NaN, all payload bits set
    ];
    if rng.gen::<f64>() < 0.5 {
        SPECIALS[rng.gen_range(0u64..SPECIALS.len() as u64) as usize]
    } else {
        rng.gen::<u64>()
    }
}

#[test]
fn welford_codec_is_byte_exact_on_arbitrary_bits() {
    use palu_stats::summary::Welford;
    let mut rng = Xoshiro256pp::seed_from_u64(0x515A);
    for _ in 0..CASES {
        // Any 24 bytes decode to *some* Welford; re-encoding must
        // reproduce them exactly — the codec never canonicalizes.
        let mut buf = Vec::with_capacity(Welford::ENCODED_LEN);
        buf.extend_from_slice(&rng.gen::<u64>().to_le_bytes());
        buf.extend_from_slice(&adversarial_bits(&mut rng).to_le_bytes());
        buf.extend_from_slice(&adversarial_bits(&mut rng).to_le_bytes());
        let (w, rest) = Welford::decode(&buf).unwrap();
        assert!(rest.is_empty());
        let mut out = Vec::new();
        w.encode_into(&mut out);
        assert_eq!(out, buf, "codec canonicalized a bit pattern");
        // Trailing bytes are handed back untouched.
        let mut extended = buf.clone();
        extended.extend_from_slice(&[0xAB, 0xCD]);
        let (_, rest) = Welford::decode(&extended).unwrap();
        assert_eq!(rest, &[0xAB, 0xCD]);
    }
}

#[test]
fn welford_codec_roundtrips_pushed_states() {
    use palu_stats::summary::Welford;
    let mut rng = Xoshiro256pp::seed_from_u64(0x515B);
    for _ in 0..CASES {
        let mut w = Welford::new();
        for _ in 0..rng.gen_range(0u64..40) {
            let x = if rng.gen::<f64>() < 0.2 {
                f64::from_bits(adversarial_bits(&mut rng))
            } else {
                uniform(&mut rng, -1e6, 1e6)
            };
            w.push(x);
        }
        let mut bytes = Vec::new();
        w.encode_into(&mut bytes);
        assert_eq!(bytes.len(), Welford::ENCODED_LEN);
        let (decoded, rest) = Welford::decode(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(decoded.count(), w.count());
        let mut again = Vec::new();
        decoded.encode_into(&mut again);
        assert_eq!(again, bytes, "decode → encode drifted");
    }
}

#[test]
fn welford_decode_rejects_truncation() {
    use palu_stats::summary::Welford;
    let mut w = Welford::new();
    w.push(1.5);
    let mut bytes = Vec::new();
    w.encode_into(&mut bytes);
    for cut in 0..bytes.len() {
        assert!(
            Welford::decode(&bytes[..cut]).is_err(),
            "accepted a {cut}-byte prefix"
        );
    }
}

#[test]
fn binstats_codec_is_byte_exact() {
    use palu_stats::summary::BinStats;
    let mut rng = Xoshiro256pp::seed_from_u64(0x515C);
    for _ in 0..CASES {
        let mut stats = BinStats::new();
        for _ in 0..rng.gen_range(0u64..8) {
            let n_bins = rng.gen_range(0u64..10) as usize;
            let values: Vec<f64> = (0..n_bins)
                .map(|_| {
                    if rng.gen::<f64>() < 0.15 {
                        f64::from_bits(adversarial_bits(&mut rng))
                    } else {
                        rng.gen::<f64>()
                    }
                })
                .collect();
            stats.push(&DifferentialCumulative::from_values(values));
        }
        let mut bytes = Vec::new();
        stats.encode_into(&mut bytes);
        let (decoded, rest) = BinStats::decode(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(decoded.windows(), stats.windows());
        assert_eq!(decoded.n_bins(), stats.n_bins());
        // Bitwise equality via re-encoding (PartialEq is useless under
        // NaN, which is exactly what the journal must preserve).
        let mut again = Vec::new();
        decoded.encode_into(&mut again);
        assert_eq!(again, bytes, "decode → encode drifted");
    }
}

#[test]
fn binstats_decode_rejects_truncation_and_bogus_lengths() {
    use palu_stats::summary::BinStats;
    let mut stats = BinStats::new();
    stats.push(&DifferentialCumulative::from_values(vec![0.5, 0.25, 0.25]));
    stats.push(&DifferentialCumulative::from_values(vec![0.4, 0.3, 0.3]));
    let mut bytes = Vec::new();
    stats.encode_into(&mut bytes);
    for cut in 0..bytes.len() {
        assert!(
            BinStats::decode(&bytes[..cut]).is_err(),
            "accepted a {cut}-byte prefix"
        );
    }
    // A huge declared bin count must be rejected by the length check
    // (before any allocation), not trusted.
    let mut bogus = bytes.clone();
    bogus[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(BinStats::decode(&bogus).is_err());
}
