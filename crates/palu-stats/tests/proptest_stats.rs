//! Property-based tests for the statistical substrate: invariants that
//! must hold for *any* input, not just the unit-test fixtures.
// Gated: `proptest` is declared as an empty feature so the offline
// build never resolves the external crate. To run these tests, add
// `proptest = "1"` under [dev-dependencies] (requires network) and
// build with `--features proptest`. The in-repo fallback coverage
// lives in each crate's tests/random_inputs.rs.
#![cfg(feature = "proptest")]

use palu_stats::distributions::{Binomial, DiscreteDistribution, Geometric, Poisson, Zeta};
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::{DifferentialCumulative, LogBins};
use palu_stats::regression::ols;
use palu_stats::solve::{bisect, brent};
use palu_stats::special::{
    harmonic_partial, hurwitz_zeta, ln_factorial, riemann_zeta, zm_normalizer,
};
use palu_stats::summary::Welford;
use proptest::prelude::*;

proptest! {
    #[test]
    fn zeta_is_monotone_decreasing(s1 in 1.1f64..6.0, ds in 0.01f64..2.0) {
        let z1 = riemann_zeta(s1).unwrap();
        let z2 = riemann_zeta(s1 + ds).unwrap();
        prop_assert!(z2 < z1, "ζ({s1}) = {z1} vs ζ({}) = {z2}", s1 + ds);
        prop_assert!(z2 > 1.0);
    }

    #[test]
    fn hurwitz_shift_identity(s in 1.1f64..5.0, q in 0.05f64..20.0) {
        // ζ(s, q) = q^{-s} + ζ(s, q + 1)
        let lhs = hurwitz_zeta(s, q).unwrap();
        let rhs = q.powf(-s) + hurwitz_zeta(s, q + 1.0).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs());
    }

    #[test]
    fn harmonic_partial_is_partial_sum(n in 1u64..3000, s in 1.1f64..4.0) {
        // H(n, s) + ζ(s, n+1) = ζ(s)
        let whole = riemann_zeta(s).unwrap();
        let head = harmonic_partial(n, s);
        let tail = hurwitz_zeta(s, n as f64 + 1.0).unwrap();
        prop_assert!((whole - head - tail).abs() < 1e-9);
        prop_assert!(head > 0.0 && head < whole);
    }

    #[test]
    fn zm_normalizer_monotone_in_n(n in 1u64..2000, s in 0.5f64..4.0, q in 0.0f64..10.0) {
        let a = zm_normalizer(n, s, q);
        let b = zm_normalizer(n + 1, s, q);
        prop_assert!(b > a);
        // And each step adds exactly the next term.
        let step = ((n + 1) as f64 + q).powf(-s);
        prop_assert!((b - a - step).abs() < 1e-10 * b.max(1.0));
    }

    #[test]
    fn ln_factorial_recurrence(n in 0u64..5000) {
        // ln((n+1)!) = ln(n!) + ln(n+1)
        let lhs = ln_factorial(n + 1);
        let rhs = ln_factorial(n) + ((n + 1) as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.max(1.0));
    }

    #[test]
    fn poisson_pmf_recurrence(lambda in 0.01f64..50.0, k in 0u64..100) {
        // pmf(k+1)/pmf(k) = λ/(k+1)
        let d = Poisson::new(lambda).unwrap();
        let ratio = d.pmf(k + 1) / d.pmf(k);
        prop_assert!((ratio - lambda / (k + 1) as f64).abs() < 1e-6 * ratio.max(1e-12));
    }

    #[test]
    fn binomial_symmetry(n in 1u64..200, p in 0.01f64..0.99, k in 0u64..200) {
        // Bin(n,p).pmf(k) = Bin(n,1−p).pmf(n−k)
        prop_assume!(k <= n);
        let a = Binomial::new(n, p).unwrap().pmf(k);
        let b = Binomial::new(n, 1.0 - p).unwrap().pmf(n - k);
        prop_assert!((a - b).abs() < 1e-10 * a.max(1e-12));
    }

    #[test]
    fn binomial_samples_in_range(n in 0u64..10_000, p in 0.0f64..1.0, seed in 0u64..1000) {

        let mut rng = palu_stats::rng::Xoshiro256pp::seed_from_u64(seed);
        let d = Binomial::new(n, p).unwrap();
        let x = d.sample(&mut rng);
        prop_assert!(x <= n);
    }

    #[test]
    fn geometric_memorylessness(r in 1.05f64..20.0, j in 1u64..20, k in 1u64..20) {
        // P(X > j+k) = P(X > j)·P(X > k)
        let g = Geometric::from_decay_base(r).unwrap();
        let s = |m: u64| 1.0 - g.cdf(m);
        let lhs = s(j + k);
        let rhs = s(j) * s(k);
        // The survival is computed as 1 − cdf, which loses ~1e-16
        // absolutely to cancellation when r^{-m} is tiny.
        prop_assert!((lhs - rhs).abs() < 1e-12 + 1e-6 * lhs);
    }

    #[test]
    fn zeta_dist_cdf_monotone(alpha in 1.1f64..4.0, k in 1u64..500) {
        let d = Zeta::new(alpha).unwrap();
        prop_assert!(d.cdf(k + 1) >= d.cdf(k));
        prop_assert!(d.cdf(k) <= 1.0 + 1e-12);
        prop_assert!(d.pmf(k) >= d.pmf(k + 1));
    }

    #[test]
    fn histogram_total_is_sum_of_counts(degrees in prop::collection::vec(1u64..5000, 0..200)) {
        let h = DegreeHistogram::from_degrees(degrees.iter().copied());
        prop_assert_eq!(h.total(), degrees.len() as u64);
        let sum: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, degrees.len() as u64);
        if !degrees.is_empty() {
            prop_assert_eq!(h.d_max(), degrees.iter().copied().max());
            prop_assert_eq!(h.d_min(), degrees.iter().copied().min());
            prop_assert_eq!(h.degree_sum(), degrees.iter().sum::<u64>());
        }
    }

    #[test]
    fn histogram_merge_is_count_addition(
        a in prop::collection::vec(1u64..100, 0..50),
        b in prop::collection::vec(1u64..100, 0..50),
    ) {
        let mut merged = DegreeHistogram::from_degrees(a.iter().copied());
        merged.merge(&DegreeHistogram::from_degrees(b.iter().copied()));
        let direct = DegreeHistogram::from_degrees(a.iter().chain(b.iter()).copied());
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn pooling_conserves_probability(degrees in prop::collection::vec(1u64..100_000, 1..300)) {
        let h = DegreeHistogram::from_degrees(degrees.iter().copied());
        let pooled = DifferentialCumulative::from_histogram(&h);
        prop_assert!((pooled.total_mass() - 1.0).abs() < 1e-9);
        // Every degree's mass lands in exactly its own bin.
        let max_bin = LogBins::bin_index(h.d_max().unwrap()) as usize;
        prop_assert_eq!(pooled.n_bins(), max_bin + 1);
        prop_assert_eq!(pooled.last_nonzero_bin(), Some(max_bin));
    }

    #[test]
    fn bin_index_inverts_bounds(d in 1u64..1_000_000_000) {
        let i = LogBins::bin_index(d);
        prop_assert!(LogBins::lower_bound_exclusive(i) < d);
        prop_assert!(d <= LogBins::upper_bound(i));
        prop_assert!(LogBins::range(i).contains(&d));
    }

    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-5 * var.max(1.0));
    }

    #[test]
    fn welford_merge_associative(
        a in prop::collection::vec(-100f64..100.0, 1..40),
        b in prop::collection::vec(-100f64..100.0, 1..40),
    ) {
        let fold = |xs: &[f64]| {
            let mut w = Welford::new();
            for &x in xs {
                w.push(x);
            }
            w
        };
        let mut merged = fold(&a);
        merged.merge(&fold(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let direct = fold(&all);
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        prop_assert!((merged.variance() - direct.variance()).abs() < 1e-8);
    }

    #[test]
    fn ols_is_exact_on_lines(slope in -100f64..100.0, intercept in -100f64..100.0,
                             n in 3usize..50) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let r = ols(&xs, &ys).unwrap();
        prop_assert!((r.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((r.intercept - intercept).abs() < 1e-6 * intercept.abs().max(1.0));
    }

    #[test]
    fn root_finders_agree(target in -50f64..50.0) {
        // Solve x³ = target³ (single real root at target).
        let f = |x: f64| x.powi(3) - target.powi(3);
        let a = target - 60.0;
        let b = target + 60.0;
        let r1 = bisect(f, a, b, 1e-10, 500).unwrap();
        let r2 = brent(f, a, b, 1e-12, 500).unwrap();
        prop_assert!((r1 - target).abs() < 1e-5);
        prop_assert!((r2 - target).abs() < 1e-5);
    }
}
