//! Deterministic fit-restart ladder shared by the estimators.
//!
//! The pipeline's robustness contract (DESIGN.md §4e) is that a fit
//! that fails to converge does not abort a run: the estimator walks a
//! *ladder* of progressively cruder but more robust methods —
//! primary optimizer → deterministically perturbed restarts → a 1-D
//! profile search → a closed-form/OLS fallback — and tags the result
//! with the [`Rung`] that produced it, so downstream reports can
//! distinguish a clean fit from a rescued one.
//!
//! Every restart is deterministic: perturbations are derived from a
//! [`RestartPolicy`] seed through [`crate::rng::splitmix64_mix`], never
//! from ambient randomness, so reruns (and different thread counts)
//! produce bit-identical ladders.

use crate::rng::splitmix64_mix;

/// Which rung of the restart ladder produced a fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The primary estimator succeeded unperturbed.
    Primary,
    /// A deterministically perturbed restart of the primary estimator.
    Perturbed,
    /// A 1-D profile search with the remaining parameters pinned.
    Profile,
    /// The closed-form / OLS regression fallback.
    Fallback,
}

impl Rung {
    /// All rungs, in ladder order (most to least preferred).
    pub const ALL: [Rung; 4] = [
        Rung::Primary,
        Rung::Perturbed,
        Rung::Profile,
        Rung::Fallback,
    ];

    /// Stable lowercase name, used as a JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Primary => "primary",
            Rung::Perturbed => "perturbed",
            Rung::Profile => "profile",
            Rung::Fallback => "fallback",
        }
    }

    fn index(self) -> usize {
        match self {
            Rung::Primary => 0,
            Rung::Perturbed => 1,
            Rung::Profile => 2,
            Rung::Fallback => 3,
        }
    }
}

/// Histogram of ladder rungs over many fits (the "ladder rung
/// histogram" of a pipeline fault report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RungTally {
    counts: [u64; 4],
}

impl RungTally {
    /// An all-zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one fit resolved at `rung`.
    pub fn record(&mut self, rung: Rung) {
        // Rung::index() < 4 by enum construction. lint:allow(R8)
        self.counts[rung.index()] += 1;
    }

    /// Number of fits resolved at `rung`.
    pub fn count(&self, rung: Rung) -> u64 {
        // Rung::index() < 4 by enum construction. lint:allow(R8)
        self.counts[rung.index()]
    }

    /// Total fits recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(rung name, count)` pairs in ladder order.
    pub fn entries(&self) -> [(&'static str, u64); 4] {
        [
            (Rung::Primary.name(), self.counts[0]),
            (Rung::Perturbed.name(), self.counts[1]),
            (Rung::Profile.name(), self.counts[2]),
            (Rung::Fallback.name(), self.counts[3]),
        ]
    }
}

/// Controls how hard the ladder tries before falling through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Number of perturbed restarts attempted on the [`Rung::Perturbed`]
    /// rung before moving down the ladder.
    pub max_perturbations: u32,
    /// Seed for the deterministic perturbation stream.
    pub seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_perturbations: 3,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// A fitted value annotated with the ladder rung that produced it and
/// the number of estimator invocations spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laddered<T> {
    /// The fit itself.
    pub value: T,
    /// The rung that succeeded.
    pub rung: Rung,
    /// Estimator invocations used across all rungs (≥ 1).
    pub attempts: u32,
}

/// Deterministic perturbation factor in `[0, 1)` for restart
/// `attempt` under `seed` — a pure function of its arguments, so
/// retry `k` of any given fit always perturbs identically.
pub fn perturbation(seed: u64, attempt: u32) -> f64 {
    let z = splitmix64_mix(seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbations_are_deterministic_and_distinct() {
        for k in 1..=8u32 {
            let u = perturbation(42, k);
            assert_eq!(u, perturbation(42, k), "attempt {k}");
            assert!((0.0..1.0).contains(&u), "attempt {k}: {u}");
        }
        assert_ne!(perturbation(42, 1), perturbation(42, 2));
        assert_ne!(perturbation(42, 1), perturbation(43, 1));
    }

    #[test]
    fn tally_counts_by_rung() {
        let mut t = RungTally::new();
        t.record(Rung::Primary);
        t.record(Rung::Primary);
        t.record(Rung::Fallback);
        assert_eq!(t.count(Rung::Primary), 2);
        assert_eq!(t.count(Rung::Perturbed), 0);
        assert_eq!(t.count(Rung::Fallback), 1);
        assert_eq!(t.total(), 3);
        let names: Vec<_> = t.entries().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["primary", "perturbed", "profile", "fallback"]);
    }

    #[test]
    fn rung_names_are_stable() {
        assert_eq!(Rung::ALL.len(), 4);
        assert_eq!(Rung::Primary.name(), "primary");
        assert_eq!(Rung::Profile.name(), "profile");
    }
}
