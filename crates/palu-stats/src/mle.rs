//! Clauset–Shalizi–Newman (CSN) single power-law MLE baseline.
//!
//! The paper's introduction contrasts the hybrid PALU model against the
//! classical practice of "characterizing a network by a single
//! power-law exponent" fit to webcrawl data. This module implements
//! that baseline exactly as Clauset, Shalizi & Newman (SIAM Review
//! 2009) prescribe for discrete data — the same method behind the
//! python `powerlaw` and R `poweRlaw` packages:
//!
//! 1. For a candidate tail cutoff `x_min`, the exponent is the exact
//!    discrete MLE `α̂ = argmax −n·ln ζ(α, x_min) − α·Σ ln d_i`.
//! 2. `x_min` is chosen to minimize the KS distance between the
//!    empirical tail and the fitted model tail.
//!
//! The continuous-approximation estimator
//! `α̂ ≈ 1 + n / Σ ln(d_i / (x_min − ½))` is also provided for
//! comparison (it is the common shortcut and is visibly biased for
//! small `x_min`).

use crate::error::StatsError;
use crate::histogram::DegreeHistogram;
use crate::ks::ks_distance_tail;
use crate::optimize::golden_section;
use crate::regression::ols;
use crate::restart::{perturbation, Laddered, RestartPolicy, Rung};
use crate::rng::Rng;
use crate::special::hurwitz_zeta;
use crate::Result;

/// Bounds on the exponent search. The paper's observed range is
/// `1 < α < 3`; we search a wider interval for robustness.
const ALPHA_LO: f64 = 1.000_001;
const ALPHA_HI: f64 = 8.0;

/// A fitted single power law `p(d) ∝ d^{-α}` for `d ≥ x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// MLE exponent.
    pub alpha: f64,
    /// Tail cutoff the fit is conditioned on.
    pub x_min: u64,
    /// KS distance between empirical and fitted tails.
    pub ks: f64,
    /// Number of observations in the tail.
    pub n_tail: u64,
    /// Asymptotic standard error of the exponent,
    /// `(α̂ − 1)/√n` (continuous-theory approximation).
    pub alpha_std_err: f64,
}

impl PowerLawFit {
    /// Model tail CDF `P(X ≤ d | X ≥ x_min)` for this fit.
    pub fn tail_cdf(&self, d: u64) -> f64 {
        if d < self.x_min {
            return 0.0;
        }
        // The fit brackets guarantee `alpha > 1`, so the zeta domain
        // error is unreachable from a fitted value; a hand-constructed
        // fit with a bad exponent degrades to the empty-tail CDF
        // rather than panicking.
        match (
            hurwitz_zeta(self.alpha, self.x_min as f64),
            hurwitz_zeta(self.alpha, d as f64 + 1.0),
        ) {
            (Ok(z_all), Ok(z_beyond)) => 1.0 - z_beyond / z_all,
            _ => 0.0,
        }
    }
}

/// Sufficient statistics of a histogram tail: count and `Σ c·ln d`.
fn tail_stats(h: &DegreeHistogram, x_min: u64) -> (u64, f64) {
    let mut n = 0u64;
    let mut sum_ln = 0.0f64;
    for (d, c) in h.iter().filter(|&(d, _)| d >= x_min) {
        n += c;
        sum_ln += c as f64 * (d as f64).ln(); // d >= x_min >= 1. lint:allow(R3)
    }
    (n, sum_ln)
}

/// Exact discrete MLE of the exponent for a *fixed* `x_min`.
///
/// Maximizes the tail log-likelihood
/// `ℓ(α) = −n·ln ζ(α, x_min) − α·Σ ln d_i` by golden-section search
/// (the likelihood is strictly unimodal in `α`).
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] if fewer than two observations lie in
///   the tail.
/// * [`StatsError::Domain`] if all tail observations equal `x_min`
///   (the likelihood then diverges towards `α → ∞`).
pub fn fit_alpha_discrete(h: &DegreeHistogram, x_min: u64) -> Result<PowerLawFit> {
    fit_alpha_discrete_bracket(h, x_min, ALPHA_LO, ALPHA_HI)
}

/// [`fit_alpha_discrete`] with an explicit exponent search bracket —
/// the knob the restart ladder perturbs when the default bracket fails.
fn fit_alpha_discrete_bracket(
    h: &DegreeHistogram,
    x_min: u64,
    alpha_lo: f64,
    alpha_hi: f64,
) -> Result<PowerLawFit> {
    let x_min = x_min.max(1);
    let (n, sum_ln) = tail_stats(h, x_min);
    if n < 2 {
        return Err(StatsError::EmptyInput {
            routine: "fit_alpha_discrete",
        });
    }
    // If every observation is exactly x_min the MLE runs away.
    let distinct_tail = h.iter().filter(|&(d, c)| d >= x_min && c > 0).count();
    if distinct_tail < 2 {
        return Err(StatsError::domain(
            "fit_alpha_discrete",
            "tail is concentrated on a single degree; exponent unidentifiable",
        ));
    }
    let neg_ll = |alpha: f64| -> f64 {
        match hurwitz_zeta(alpha, x_min as f64) {
            // Hurwitz zeta at x_min >= 1 is >= its first term > 0. lint:allow(R3)
            Ok(z) => n as f64 * z.ln() + alpha * sum_ln,
            Err(_) => f64::INFINITY,
        }
    };
    let m = golden_section(neg_ll, alpha_lo, alpha_hi, 1e-10, 300)?;
    if !m.converged {
        return Err(StatsError::NoConvergence {
            routine: "fit_alpha_discrete",
            iterations: m.evals,
            residual: alpha_hi - alpha_lo,
        });
    }
    let alpha = m.x;
    let fit = PowerLawFit {
        alpha,
        x_min,
        ks: 0.0,
        n_tail: n,
        alpha_std_err: (alpha - 1.0) / (n as f64).sqrt(), // n >= 1 tail count. lint:allow(R3)
    };
    let ks = ks_distance_tail(h, x_min, |d| fit.tail_cdf(d));
    Ok(PowerLawFit { ks, ..fit })
}

/// OLS log–log regression estimate of the exponent — the bottom
/// ([`Rung::Fallback`]) rung of the restart ladder. Fits
/// `ln n(d) = −α·ln d + const` over the tail counts by least squares,
/// clamps the slope into the MLE search range, and reports the usual
/// KS/std-err diagnostics for the resulting [`PowerLawFit`].
///
/// # Errors
///
/// [`StatsError::EmptyInput`] when fewer than two distinct tail
/// degrees exist; OLS errors propagate.
fn fallback_alpha_ols(h: &DegreeHistogram, x_min: u64) -> Result<PowerLawFit> {
    let x_min = x_min.max(1);
    let tail: Vec<(u64, u64)> = h.iter().filter(|&(d, c)| d >= x_min && c > 0).collect();
    if tail.len() < 2 {
        return Err(StatsError::EmptyInput {
            routine: "fallback_alpha_ols",
        });
    }
    let n: u64 = tail.iter().map(|&(_, c)| c).sum();
    // d >= x_min >= 1 and c > 0 by the filter above. lint:allow(R3)
    let xs: Vec<f64> = tail.iter().map(|&(d, _)| (d as f64).ln()).collect();
    // c > 0 by the filter above. lint:allow(R3)
    let ys: Vec<f64> = tail.iter().map(|&(_, c)| (c as f64).ln()).collect();
    let reg = ols(&xs, &ys)?;
    let alpha = (-reg.slope).clamp(ALPHA_LO, ALPHA_HI);
    let fit = PowerLawFit {
        alpha,
        x_min,
        ks: 0.0,
        n_tail: n,
        alpha_std_err: (alpha - 1.0) / (n as f64).sqrt(), // n >= 2 tail count. lint:allow(R3)
    };
    let ks = ks_distance_tail(h, x_min, |d| fit.tail_cdf(d));
    Ok(PowerLawFit { ks, ..fit })
}

/// [`fit_alpha_discrete`] with the deterministic restart ladder: on
/// failure the exponent bracket is perturbed (squeezed inward by a
/// seeded factor, restoring finiteness when a boundary evaluation
/// diverges), and as a last resort the exponent is estimated by OLS
/// log–log regression ([`fallback_alpha_ols`]). The result is tagged
/// with the [`Rung`] that succeeded.
///
/// # Errors
///
/// Returns the *primary* rung's error when every rung fails — data so
/// degenerate that no method can identify an exponent.
pub fn fit_alpha_discrete_with_restarts(
    h: &DegreeHistogram,
    x_min: u64,
    policy: &RestartPolicy,
) -> Result<Laddered<PowerLawFit>> {
    let primary_err = match fit_alpha_discrete(h, x_min) {
        Ok(fit) => {
            return Ok(Laddered {
                value: fit,
                rung: Rung::Primary,
                attempts: 1,
            })
        }
        Err(e) => e,
    };
    let mut attempts = 1u32;
    for k in 1..=policy.max_perturbations {
        attempts += 1;
        let u = perturbation(policy.seed, k);
        let lo = ALPHA_LO + 0.25 * u;
        let hi = ALPHA_HI - 2.0 * u;
        if let Ok(fit) = fit_alpha_discrete_bracket(h, x_min, lo, hi) {
            return Ok(Laddered {
                value: fit,
                rung: Rung::Perturbed,
                attempts,
            });
        }
    }
    attempts += 1;
    match fallback_alpha_ols(h, x_min) {
        Ok(fit) => Ok(Laddered {
            value: fit,
            rung: Rung::Fallback,
            attempts,
        }),
        Err(_) => Err(primary_err),
    }
}

/// Continuous-approximation (Hill-style) estimator for comparison:
/// `α̂ = 1 + n / Σ ln(d_i / (x_min − ½))`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when fewer than two tail
/// observations exist, or [`StatsError::Domain`] when the log-sum is
/// non-positive.
pub fn fit_alpha_continuous(h: &DegreeHistogram, x_min: u64) -> Result<f64> {
    let x_min = x_min.max(1);
    let mut n = 0u64;
    let mut s = 0.0f64;
    let shift = x_min as f64 - 0.5;
    for (d, c) in h.iter().filter(|&(d, _)| d >= x_min) {
        n += c;
        s += c as f64 * (d as f64 / shift).ln(); // d >= x_min > shift > 0. lint:allow(R3)
    }
    if n < 2 {
        return Err(StatsError::EmptyInput {
            routine: "fit_alpha_continuous",
        });
    }
    if s <= 0.0 {
        return Err(StatsError::domain(
            "fit_alpha_continuous",
            "non-positive log-sum; tail is degenerate",
        ));
    }
    Ok(1.0 + n as f64 / s)
}

/// Options controlling the full CSN fit.
#[derive(Debug, Clone, Copy)]
pub struct CsnOptions {
    /// Largest `x_min` candidate considered (inclusive). Candidates are
    /// the distinct observed degrees up to this cap.
    pub x_min_cap: u64,
    /// Minimum number of tail observations required for a candidate to
    /// be considered.
    pub min_tail: u64,
}

impl Default for CsnOptions {
    fn default() -> Self {
        CsnOptions {
            x_min_cap: 1 << 12,
            min_tail: 50,
        }
    }
}

/// Full CSN fit: scan `x_min` over the observed degrees, fit `α` by
/// exact discrete MLE at each, and keep the `(α, x_min)` minimizing the
/// tail KS distance.
///
/// # Examples
///
/// ```
/// use palu_stats::distributions::{DiscreteDistribution, Zeta};
/// use palu_stats::histogram::DegreeHistogram;
/// use palu_stats::mle::{fit_csn, CsnOptions};
/// use palu_stats::rng::Xoshiro256pp;
/// let zeta = Zeta::new(2.3).unwrap();
/// let mut rng = Xoshiro256pp::seed_from_u64(7);
/// let h: DegreeHistogram = zeta.sample_many(&mut rng, 50_000).into_iter().collect();
/// let fit = fit_csn(&h, &CsnOptions::default()).unwrap();
/// assert!((fit.alpha - 2.3).abs() < 0.1);
/// assert!(fit.ks < 0.02);
/// ```
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if no candidate cutoff admits a
/// valid fit.
pub fn fit_csn(h: &DegreeHistogram, opts: &CsnOptions) -> Result<PowerLawFit> {
    let mut best: Option<PowerLawFit> = None;
    for (x_min, _) in h.iter().filter(|&(d, _)| d <= opts.x_min_cap) {
        let Ok(fit) = fit_alpha_discrete(h, x_min) else {
            continue;
        };
        if fit.n_tail < opts.min_tail {
            continue;
        }
        if best.as_ref().is_none_or(|b| fit.ks < b.ks) {
            best = Some(fit);
        }
    }
    best.ok_or(StatsError::EmptyInput { routine: "fit_csn" })
}

/// [`fit_csn`] with the deterministic restart ladder:
///
/// 1. **Primary** — the full CSN scan with the given options.
/// 2. **Perturbed** — the scan rerun with the tail-size requirement
///    halved per attempt (degraded data often leaves fewer than
///    `min_tail` observations past the contamination).
/// 3. **Profile** — skip the `x_min` scan entirely and run the 1-D
///    exponent MLE at the smallest observed degree.
/// 4. **Fallback** — OLS log–log regression over the whole histogram.
///
/// # Errors
///
/// Returns the primary rung's error when every rung fails.
pub fn fit_csn_with_restarts(
    h: &DegreeHistogram,
    opts: &CsnOptions,
    policy: &RestartPolicy,
) -> Result<Laddered<PowerLawFit>> {
    let primary_err = match fit_csn(h, opts) {
        Ok(fit) => {
            return Ok(Laddered {
                value: fit,
                rung: Rung::Primary,
                attempts: 1,
            })
        }
        Err(e) => e,
    };
    let mut attempts = 1u32;
    for k in 1..=policy.max_perturbations {
        attempts += 1;
        let relaxed = CsnOptions {
            min_tail: (opts.min_tail >> k).max(2),
            ..*opts
        };
        if relaxed.min_tail >= opts.min_tail {
            continue; // relaxation saturated; nothing new to try
        }
        if let Ok(fit) = fit_csn(h, &relaxed) {
            return Ok(Laddered {
                value: fit,
                rung: Rung::Perturbed,
                attempts,
            });
        }
    }
    attempts += 1;
    if let Some(d0) = h.iter().map(|(d, _)| d).next() {
        if let Ok(fit) = fit_alpha_discrete(h, d0.max(1)) {
            return Ok(Laddered {
                value: fit,
                rung: Rung::Profile,
                attempts,
            });
        }
    }
    attempts += 1;
    match fallback_alpha_ols(h, 1) {
        Ok(fit) => Ok(Laddered {
            value: fit,
            rung: Rung::Fallback,
            attempts,
        }),
        Err(_) => Err(primary_err),
    }
}

/// Draw one sample from the discrete power-law tail
/// `p(d) = d^{−α}/ζ(α, x_min)` for `d ≥ x_min`, by inverse-CDF
/// bisection on the Hurwitz tail (exact; `O(log)` zeta evaluations).
///
/// # Errors
///
/// [`StatsError::Domain`] if `α ≤ 1` (the tail law has no
/// normalizable zeta there).
pub fn sample_tail_zeta<R: Rng + ?Sized>(alpha: f64, x_min: u64, rng: &mut R) -> Result<u64> {
    let z_all = hurwitz_zeta(alpha, x_min as f64)?;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    // Find smallest d ≥ x_min with P(X ≤ d) ≥ u, i.e.
    // ζ(α, d + 1) ≤ (1 − u)·ζ(α, x_min).
    let target = (1.0 - u) * z_all;
    // Exponential search for an upper bracket.
    let mut hi = x_min.max(1);
    while hurwitz_zeta(alpha, hi as f64 + 1.0)? > target {
        hi = hi.saturating_mul(2);
        if hi > 1 << 40 {
            break; // astronomically deep tail; cap
        }
    }
    let mut lo = (hi / 2).max(x_min);
    if lo >= hi {
        return Ok(x_min);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if hurwitz_zeta(alpha, mid as f64 + 1.0)? <= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Result of the CSN semiparametric goodness-of-fit bootstrap.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodnessOfFit {
    /// Fraction of synthetic replicates whose KS distance exceeds the
    /// observed one. CSN's rule of thumb: the power-law hypothesis is
    /// *ruled out* when `p ≤ 0.1`.
    pub p_value: f64,
    /// KS distance of the real data against the fitted model.
    pub observed_ks: f64,
    /// Replicate KS distances (sorted ascending).
    pub replicate_ks: Vec<f64>,
}

/// CSN semiparametric goodness-of-fit test for a fitted power law.
///
/// Each replicate draws `n` observations: with probability
/// `n_tail/n` from the fitted tail law (exact inverse-CDF zeta
/// sampling), otherwise uniformly from the empirical body
/// (`d < x_min`). Each replicate is then *refit* (x_min rescan + MLE)
/// and its tail KS recorded, exactly as Clauset–Shalizi–Newman
/// prescribe, so the p-value accounts for the flexibility of the
/// fitting procedure itself.
///
/// # Errors
///
/// Propagates fitting errors on the original data; replicates that
/// fail to fit are skipped (and reduce the effective replicate count).
pub fn goodness_of_fit<R: Rng + ?Sized>(
    h: &DegreeHistogram,
    opts: &CsnOptions,
    n_boot: usize,
    rng: &mut R,
) -> Result<GoodnessOfFit> {
    let fit = fit_csn(h, opts)?;
    let n = h.total();

    // Empirical body (d < x_min) as a cumulative table for resampling.
    let body: Vec<(u64, u64)> = h.iter().filter(|&(d, _)| d < fit.x_min).collect();
    let body_total: u64 = body.iter().map(|&(_, c)| c).sum();
    let mut body_cum = Vec::with_capacity(body.len());
    let mut acc = 0u64;
    for &(_, c) in &body {
        acc += c;
        body_cum.push(acc);
    }
    let tail_prob = fit.n_tail as f64 / n as f64;

    let mut replicate_ks = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let mut boot = DegreeHistogram::new();
        for _ in 0..n {
            let d = if body_total == 0 || rng.gen::<f64>() < tail_prob {
                sample_tail_zeta(fit.alpha, fit.x_min, rng)?
            } else {
                let x = rng.gen_range(0..body_total);
                let idx = body_cum.partition_point(|&c| c <= x);
                body[idx].0
            };
            boot.increment(d, 1);
        }
        if let Ok(refit) = fit_csn(&boot, opts) {
            replicate_ks.push(refit.ks);
        }
    }
    if replicate_ks.is_empty() {
        return Err(StatsError::EmptyInput {
            routine: "goodness_of_fit",
        });
    }
    let exceed = replicate_ks.iter().filter(|&&k| k >= fit.ks).count();
    let p_value = exceed as f64 / replicate_ks.len() as f64;
    replicate_ks.sort_by(f64::total_cmp);
    Ok(GoodnessOfFit {
        p_value,
        observed_ks: fit.ks,
        replicate_ks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{DiscreteDistribution, Zeta};
    use crate::rng::Xoshiro256pp;

    fn zeta_sample(alpha: f64, n: usize, seed: u64) -> DegreeHistogram {
        let z = Zeta::new(alpha).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| z.sample(&mut rng)).collect()
    }

    #[test]
    fn discrete_mle_recovers_exponent_from_x_min_one() {
        for &alpha in &[1.8, 2.2, 2.8] {
            let h = zeta_sample(alpha, 100_000, 1000 + (alpha * 10.0) as u64);
            let fit = fit_alpha_discrete(&h, 1).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.03,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
            assert!(fit.ks < 0.01);
            assert_eq!(fit.x_min, 1);
            assert!(fit.alpha_std_err > 0.0);
        }
    }

    #[test]
    fn discrete_mle_with_tail_cutoff() {
        // Contaminate small degrees heavily; the tail fit must still
        // recover the exponent when conditioned past the contamination.
        let alpha = 2.5;
        let mut h = zeta_sample(alpha, 200_000, 42);
        h.increment(1, 500_000); // inject a huge d=1 spike (leaf noise)
        let fit = fit_alpha_discrete(&h, 4).unwrap();
        assert!(
            (fit.alpha - alpha).abs() < 0.08,
            "fitted {} (tail n {})",
            fit.alpha,
            fit.n_tail
        );
    }

    #[test]
    fn degenerate_tails_are_rejected() {
        let h = DegreeHistogram::from_counts([(5, 100)]);
        assert!(fit_alpha_discrete(&h, 5).is_err());
        let h = DegreeHistogram::from_counts([(5, 1), (6, 1)]);
        // Two observations is the minimum; should succeed or at least
        // not panic.
        let _ = fit_alpha_discrete(&h, 5);
        let empty = DegreeHistogram::new();
        assert!(fit_alpha_discrete(&empty, 1).is_err());
    }

    #[test]
    fn continuous_estimator_close_but_biased_at_small_xmin() {
        let alpha = 2.5;
        let h = zeta_sample(alpha, 100_000, 7);
        let discrete = fit_alpha_discrete(&h, 1).unwrap().alpha;
        let continuous = fit_alpha_continuous(&h, 1).unwrap();
        // Discrete should be closer to truth than the continuous
        // shortcut at x_min = 1 (CSN Table 3 shows the shortcut's bias).
        assert!(
            (discrete - alpha).abs() <= (continuous - alpha).abs() + 1e-9,
            "discrete {discrete}, continuous {continuous}"
        );
        // At larger x_min the continuous version becomes accurate.
        let cont_tail = fit_alpha_continuous(&h, 10).unwrap();
        assert!((cont_tail - alpha).abs() < 0.15, "cont_tail {cont_tail}");
    }

    #[test]
    fn continuous_estimator_input_validation() {
        let empty = DegreeHistogram::new();
        assert!(fit_alpha_continuous(&empty, 1).is_err());
    }

    #[test]
    fn csn_scan_selects_sensible_cutoff() {
        // Pure zeta data: the scan should pick a small x_min and the
        // true exponent.
        let alpha = 2.2;
        let h = zeta_sample(alpha, 100_000, 99);
        let fit = fit_csn(&h, &CsnOptions::default()).unwrap();
        assert!(fit.x_min <= 4, "x_min {}", fit.x_min);
        assert!((fit.alpha - alpha).abs() < 0.05, "alpha {}", fit.alpha);
    }

    #[test]
    fn csn_scan_skips_past_contamination() {
        // Zeta tail plus a large non-power-law bump at d ∈ {1, 2}:
        // the chosen x_min must move past the bump.
        let alpha = 2.5;
        let mut h = zeta_sample(alpha, 150_000, 123);
        h.increment(1, 400_000);
        h.increment(2, 300_000);
        let fit = fit_csn(
            &h,
            &CsnOptions {
                min_tail: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(fit.x_min >= 3, "x_min {}", fit.x_min);
        assert!((fit.alpha - alpha).abs() < 0.1, "alpha {}", fit.alpha);
    }

    #[test]
    fn csn_errors_on_unusable_data() {
        let h = DegreeHistogram::from_counts([(3, 10)]);
        assert!(fit_csn(&h, &CsnOptions::default()).is_err());
    }

    #[test]
    fn csn_ladder_rungs_on_all_ones_histogram() {
        // Ten degrees with one observation each: far below the default
        // min_tail of 50, so the primary scan fails and the ladder must
        // rescue the fit on a lower rung.
        let h = DegreeHistogram::from_counts((1..=10).map(|d| (d, 1)));
        assert!(fit_csn(&h, &CsnOptions::default()).is_err());
        let ladder =
            fit_csn_with_restarts(&h, &CsnOptions::default(), &RestartPolicy::default()).unwrap();
        assert_ne!(ladder.rung, Rung::Primary);
        assert!(ladder.attempts > 1, "attempts {}", ladder.attempts);
        assert!(ladder.value.alpha.is_finite());
        assert!(ladder.value.alpha >= 1.0);
        // The ladder is deterministic: reruns agree exactly.
        let again =
            fit_csn_with_restarts(&h, &CsnOptions::default(), &RestartPolicy::default()).unwrap();
        assert_eq!(ladder, again);
        // A clean sample stays on the primary rung.
        let clean = zeta_sample(2.2, 50_000, 7);
        let l2 = fit_csn_with_restarts(&clean, &CsnOptions::default(), &RestartPolicy::default())
            .unwrap();
        assert_eq!(l2.rung, Rung::Primary);
        assert_eq!(l2.attempts, 1);
    }

    #[test]
    fn alpha_ladder_primary_and_degenerate_paths() {
        // Ten distinct degrees: the primary MLE works outright.
        let h = DegreeHistogram::from_counts((1..=10).map(|d| (d, 1)));
        let a = fit_alpha_discrete_with_restarts(&h, 1, &RestartPolicy::default()).unwrap();
        assert_eq!(a.rung, Rung::Primary);
        assert_eq!(a.attempts, 1);
        // A tail concentrated on one degree defeats every rung; the
        // primary error surfaces.
        let single = DegreeHistogram::from_counts([(5, 100)]);
        let err = fit_alpha_discrete_with_restarts(&single, 5, &RestartPolicy::default());
        assert!(err.is_err());
    }

    #[test]
    fn goodness_of_fit_errors_on_empty_tail() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let empty = DegreeHistogram::new();
        assert!(goodness_of_fit(&empty, &CsnOptions::default(), 10, &mut rng).is_err());
        // A tail concentrated on one degree is equally unusable.
        let single = DegreeHistogram::from_counts([(7, 500)]);
        assert!(goodness_of_fit(&single, &CsnOptions::default(), 10, &mut rng).is_err());
    }

    #[test]
    fn tail_zeta_sampler_matches_pmf() {
        let alpha = 2.3;
        let x_min = 5u64;
        let mut rng = Xoshiro256pp::seed_from_u64(2024);
        let n = 100_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let d = sample_tail_zeta(alpha, x_min, &mut rng).unwrap();
            assert!(d >= x_min);
            *counts.entry(d).or_insert(0u64) += 1;
        }
        let z = hurwitz_zeta(alpha, x_min as f64).unwrap();
        for d in x_min..x_min + 5 {
            let p = (d as f64).powf(-alpha) / z;
            let expected = p * n as f64;
            let se = (n as f64 * p * (1.0 - p)).sqrt();
            let obs = *counts.get(&d).unwrap_or(&0) as f64;
            assert!(
                (obs - expected).abs() < 5.0 * se,
                "d={d}: obs {obs} expected {expected}"
            );
        }
    }

    #[test]
    fn goodness_of_fit_accepts_true_power_law() {
        // Data truly drawn from a zeta law: p-value should be large.
        let h = zeta_sample(2.2, 30_000, 37);
        let mut rng = Xoshiro256pp::seed_from_u64(38);
        let gof = goodness_of_fit(&h, &CsnOptions::default(), 50, &mut rng).unwrap();
        // Under H0 the p-value is ~uniform, so any single run can land
        // low by chance; what must NOT happen is a *strong* rejection
        // (contrast with the Poisson test below, where p ≈ 0).
        assert!(
            gof.p_value > 0.02,
            "true power law strongly rejected: p = {} (observed KS {})",
            gof.p_value,
            gof.observed_ks
        );
        assert!(!gof.replicate_ks.is_empty());
    }

    #[test]
    fn goodness_of_fit_rejects_poisson_data() {
        // Poisson(8) data is emphatically not a power law anywhere.
        use crate::distributions::Poisson;
        let pois = Poisson::new(8.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(33);
        let h: DegreeHistogram = (0..30_000).map(|_| pois.sample(&mut rng).max(1)).collect();
        let gof = goodness_of_fit(
            &h,
            &CsnOptions {
                min_tail: 100,
                ..Default::default()
            },
            30,
            &mut rng,
        )
        .unwrap();
        assert!(
            gof.p_value <= 0.1,
            "Poisson data accepted as power law: p = {}",
            gof.p_value
        );
    }

    #[test]
    fn tail_cdf_is_a_distribution() {
        let h = zeta_sample(2.0, 50_000, 5);
        let fit = fit_alpha_discrete(&h, 2).unwrap();
        assert_eq!(fit.tail_cdf(1), 0.0);
        let mut prev = 0.0;
        for d in 2..200 {
            let c = fit.tail_cdf(d);
            assert!(c >= prev - 1e-12);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!(fit.tail_cdf(1_000_000) > 0.999);
    }
}
