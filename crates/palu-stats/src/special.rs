//! Special functions: log-gamma, log-factorial, Riemann and Hurwitz zeta.
//!
//! The PALU analysis (Section IV of the paper) normalizes the
//! preferential-attachment core's degree distribution by the Riemann zeta
//! function `ζ(α)` and evaluates Poisson probabilities `(λp)^d / d!`.
//! The modified Zipf–Mandelbrot model of Section II-B is normalized by a
//! *truncated* Hurwitz zeta sum `Σ_{d=1}^{d_max} (d+δ)^{-α}`. This module
//! provides all of those pieces with double-precision accuracy,
//! replacing the MATLAB built-in `zeta(x)` the authors used.

use crate::error::StatsError;
use crate::Result;

/// Lanczos coefficients (g = 7, n = 9) for [`ln_gamma`].
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 terms), accurate to roughly
/// 15 significant digits over the positive real axis.
///
/// # Examples
///
/// ```
/// use palu_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Exact `ln(n!)` for integer `n`.
///
/// Values up to `n = 255` come from a lazily built table of cumulative
/// logs (exact summation); larger arguments fall back to
/// `ln_gamma(n + 1)`.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 256;
    // A static table of ln(k!) for k < 256, built on first use.
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (k, slot) in t.iter_mut().enumerate().skip(1) {
            acc += (k as f64).ln();
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Bernoulli numbers `B_2, B_4, …, B_14` for the Euler–Maclaurin tail.
const BERNOULLI_2K: [f64; 7] = [
    1.0 / 6.0,
    -1.0 / 30.0,
    1.0 / 42.0,
    -1.0 / 30.0,
    5.0 / 66.0,
    -691.0 / 2730.0,
    7.0 / 6.0,
];

/// Hurwitz zeta function `ζ(s, q) = Σ_{n=0}^∞ (n + q)^{-s}`.
///
/// Requires `s > 1` (absolute convergence) and `q > 0`. Computed by
/// direct summation of the first `N` terms followed by an
/// Euler–Maclaurin correction, giving full double precision for all
/// arguments used in this workspace (`1 < s ≤ 5`, `q ≥ 0.01`).
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `s ≤ 1` or `q ≤ 0`.
pub fn hurwitz_zeta(s: f64, q: f64) -> Result<f64> {
    // NaN-safe domain guard: `!(s > 1)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(s > 1.0) {
        return Err(StatsError::domain(
            "hurwitz_zeta",
            format!("s must be > 1 for convergence, got {s}"),
        ));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(q > 0.0) {
        return Err(StatsError::domain(
            "hurwitz_zeta",
            format!("q must be > 0, got {q}"),
        ));
    }
    // Direct sum of the head: Σ_{n=0}^{N-1} (n+q)^{-s}.
    // N is chosen so N + q ≥ 16, which keeps the Euler–Maclaurin
    // remainder below double-precision noise for s ≤ ~50.
    let n_head = if q >= 16.0 {
        0
    } else {
        (16.0 - q).ceil() as usize
    };
    let mut head = 0.0f64;
    for n in 0..n_head {
        head += (n as f64 + q).powf(-s);
    }
    let a = n_head as f64 + q;
    // Euler–Maclaurin tail:
    //   a^{1-s}/(s-1) + a^{-s}/2 + Σ_k B_{2k}/(2k)! · (s)_{2k-1} · a^{-s-2k+1}
    let mut tail = a.powf(1.0 - s) / (s - 1.0) + 0.5 * a.powf(-s);
    let mut pochhammer = s; // (s)_1
    let mut fact = 1.0f64; // (2k)! accumulator
    let mut a_pow = a.powf(-s - 1.0);
    for (k, &b2k) in BERNOULLI_2K.iter().enumerate() {
        let two_k = 2 * (k + 1);
        fact *= (two_k - 1) as f64 * two_k as f64; // builds (2k)!
        if k > 0 {
            // extend rising factorial (s)_{2k-1} by two more terms
            pochhammer *= (s + (two_k - 3) as f64) * (s + (two_k - 2) as f64);
            a_pow /= a * a;
        }
        let term = b2k / fact * pochhammer * a_pow;
        tail += term;
        if term.abs() < f64::EPSILON * tail.abs() {
            break;
        }
    }
    Ok(head + tail)
}

/// Riemann zeta function `ζ(s) = Σ_{n=1}^∞ n^{-s}` for `s > 1`.
///
/// The paper evaluates this for the PA exponent range `1.5 ≤ α ≤ 3`,
/// noting `1.202 ≤ ζ(α) ≤ 2.612` over that interval.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `s ≤ 1`.
///
/// # Examples
///
/// ```
/// use palu_stats::special::riemann_zeta;
/// let z2 = riemann_zeta(2.0).unwrap();
/// assert!((z2 - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-12);
/// ```
pub fn riemann_zeta(s: f64) -> Result<f64> {
    hurwitz_zeta(s, 1.0)
}

/// Tail of the zeta series: `Σ_{d=n}^∞ d^{-s} = ζ(s, n)`.
///
/// Used when converting between truncated and infinite power-law
/// normalizations (e.g. the `x_min`-conditioned CSN likelihood).
///
/// # Errors
///
/// Returns [`StatsError::Domain`] if `s ≤ 1` or `n == 0`.
pub fn zeta_tail(s: f64, n: u64) -> Result<f64> {
    if n == 0 {
        return Err(StatsError::domain("zeta_tail", "n must be >= 1"));
    }
    hurwitz_zeta(s, n as f64)
}

/// Partial generalized harmonic number `H(n, s) = Σ_{d=1}^n d^{-s}`.
///
/// For small `n` this is a direct sum; for large `n` it is computed as
/// `ζ(s) − ζ(s, n+1)` to avoid an O(n) loop. Requires `s > 1` when the
/// fast path is taken; for `s ≤ 1` the direct sum is always used (it is
/// finite for any finite `n`).
pub fn harmonic_partial(n: u64, s: f64) -> f64 {
    const DIRECT_CUTOFF: u64 = 4096;
    if n == 0 {
        return 0.0;
    }
    if n <= DIRECT_CUTOFF || s <= 1.0 {
        // Sum smallest-to-largest terms for accuracy: d^{-s} decreases in
        // d when s > 0, so iterate downward.
        let mut acc = 0.0f64;
        let mut d = n;
        while d >= 1 {
            acc += (d as f64).powf(-s);
            d -= 1;
        }
        acc
    } else {
        // ζ(s) − Σ_{d=n+1}^∞ d^{-s}; both pieces are full precision.
        // `s > 1` is guaranteed on this branch so the domain error is
        // unreachable — but if it ever fires, fall back to the exact
        // direct sum rather than panicking.
        match (hurwitz_zeta(s, 1.0), hurwitz_zeta(s, n as f64 + 1.0)) {
            (Ok(total), Ok(tail)) => total - tail,
            _ => (1..=n).rev().map(|d| (d as f64).powf(-s)).sum(),
        }
    }
}

/// Truncated Hurwitz sum `Σ_{d=1}^{n} (d + q)^{-s}`.
///
/// This is exactly the normalization constant of the *modified
/// Zipf–Mandelbrot* model of Section II-B, with `q = δ` and
/// `n = d_max`. Accepts any `s > 0` (the sum is finite), using the
/// zeta-difference fast path only when `s > 1`.
pub fn zm_normalizer(n: u64, s: f64, q: f64) -> f64 {
    const DIRECT_CUTOFF: u64 = 4096;
    if n == 0 {
        return 0.0;
    }
    if n <= DIRECT_CUTOFF || s <= 1.0 {
        let mut acc = 0.0f64;
        let mut d = n;
        while d >= 1 {
            acc += (d as f64 + q).powf(-s);
            d -= 1;
        }
        acc
    } else {
        // As in `harmonic_partial`: `s > 1` here, so the zeta domain
        // error is unreachable; the direct sum is the safe fallback.
        match (
            hurwitz_zeta(s, 1.0 + q),
            hurwitz_zeta(s, n as f64 + 1.0 + q),
        ) {
            (Ok(total), Ok(tail)) => total - tail,
            _ => (1..=n).rev().map(|d| (d as f64 + q).powf(-s)).sum(),
        }
    }
}

/// Polylogarithm `Li_s(z) = Σ_{k=1}^∞ z^k / k^s` for real `s` and
/// `0 ≤ z < 1` (direct series).
///
/// Used by the exact Binomial-thinning analysis of the PA core: the
/// probability that a thinned zeta(α) node has observed degree 1
/// involves `Li_{α−1}(1 − p)`. The series converges geometrically for
/// `z < 1`; near `z = 1` with `s ≤ 1` the value grows without bound
/// (heavier and heavier degree-1 mass as `p → 0`), which the iteration
/// cap guards against.
///
/// # Errors
///
/// Returns [`StatsError::Domain`] for `z` outside `[0, 1)`, and
/// [`StatsError::NoConvergence`] if the series needs more than 10⁶
/// terms (only possible for `z` within ~1e-6 of 1).
pub fn polylog(s: f64, z: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&z) {
        return Err(StatsError::domain(
            "polylog",
            format!("z must be in [0, 1), got {z}"),
        ));
    }
    if z == 0.0 {
        return Ok(0.0);
    }
    const MAX_TERMS: usize = 1_000_000;
    let mut acc = 0.0f64;
    let mut z_pow = 1.0f64;
    for k in 1..=MAX_TERMS {
        z_pow *= z;
        let term = z_pow / (k as f64).powf(s);
        acc += term;
        if term < acc.abs() * 1e-16 {
            return Ok(acc);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "polylog",
        iterations: MAX_TERMS,
        residual: z_pow,
    })
}

/// Complementary error function `erfc(x)`, Numerical-Recipes rational
/// approximation (fractional error < 1.2e-7 everywhere) — plenty for
/// p-values.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF `Φ(x) = erfc(−x/√2)/2`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < TOL);
        // Γ(3/2) = √π / 2
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < TOL);
    }

    #[test]
    fn ln_factorial_table_and_fallback_agree() {
        for n in [0u64, 1, 2, 10, 100, 255, 256, 1000] {
            let via_gamma = ln_gamma(n as f64 + 1.0);
            assert!(
                (ln_factorial(n) - via_gamma).abs() < 1e-9 * (1.0 + via_gamma.abs()),
                "n = {n}"
            );
        }
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < TOL);
    }

    #[test]
    fn riemann_zeta_known_values() {
        let pi = std::f64::consts::PI;
        assert!((riemann_zeta(2.0).unwrap() - pi * pi / 6.0).abs() < TOL);
        assert!((riemann_zeta(4.0).unwrap() - pi.powi(4) / 90.0).abs() < TOL);
        // Apéry's constant
        assert!((riemann_zeta(3.0).unwrap() - 1.202_056_903_159_594_2).abs() < TOL);
        // ζ(1.5), the other endpoint the paper quotes (≈ 2.612)
        assert!((riemann_zeta(1.5).unwrap() - 2.612_375_348_685_488).abs() < 1e-11);
    }

    #[test]
    fn paper_quoted_zeta_range() {
        // Paper: "1.202 ≤ ζ(α) ≤ 2.612" for 1.5 ≤ α ≤ 3.
        let lo = riemann_zeta(3.0).unwrap();
        let hi = riemann_zeta(1.5).unwrap();
        assert!((lo - 1.202).abs() < 5e-4);
        assert!((hi - 2.612).abs() < 5e-4);
        // Monotone decreasing in between.
        let mut prev = f64::INFINITY;
        let mut a = 1.5;
        while a <= 3.0 + 1e-9 {
            let z = riemann_zeta(a).unwrap();
            assert!(z < prev);
            prev = z;
            a += 0.1;
        }
    }

    #[test]
    fn hurwitz_reduces_to_riemann() {
        for s in [1.5, 2.0, 2.5, 3.0] {
            let h = hurwitz_zeta(s, 1.0).unwrap();
            let r = riemann_zeta(s).unwrap();
            assert_eq!(h, r);
        }
    }

    #[test]
    fn hurwitz_shift_identity() {
        // ζ(s, q) = q^{-s} + ζ(s, q+1)
        for &(s, q) in &[(2.0, 0.5), (1.7, 2.3), (3.0, 10.0), (2.2, 0.01)] {
            let lhs = hurwitz_zeta(s, q).unwrap();
            let rhs = q.powf(-s) + hurwitz_zeta(s, q + 1.0).unwrap();
            assert!((lhs - rhs).abs() < 1e-12 * lhs.abs(), "s={s}, q={q}");
        }
    }

    #[test]
    fn hurwitz_domain_errors() {
        assert!(hurwitz_zeta(1.0, 1.0).is_err());
        assert!(hurwitz_zeta(0.5, 1.0).is_err());
        assert!(hurwitz_zeta(2.0, 0.0).is_err());
        assert!(hurwitz_zeta(2.0, -1.0).is_err());
    }

    #[test]
    fn zeta_tail_consistency() {
        // ζ(s) = H(n, s) + tail(s, n+1)
        for &(s, n) in &[(2.0, 10u64), (1.6, 100), (3.0, 5000)] {
            let whole = riemann_zeta(s).unwrap();
            let head = harmonic_partial(n, s);
            let tail = zeta_tail(s, n + 1).unwrap();
            assert!(
                (whole - head - tail).abs() < 1e-11,
                "s={s}, n={n}: {} vs {}",
                whole,
                head + tail
            );
        }
        assert!(zeta_tail(2.0, 0).is_err());
    }

    #[test]
    fn harmonic_partial_direct_vs_fast_path() {
        // Straddle the cutoff and compare against brute force.
        for &n in &[4096u64, 4097, 10_000] {
            let brute: f64 = (1..=n).map(|d| (d as f64).powf(-2.0)).sum();
            let fast = harmonic_partial(n, 2.0);
            assert!((brute - fast).abs() < 1e-11, "n={n}");
        }
        // s <= 1 still works via direct summation.
        let h1 = harmonic_partial(100, 1.0);
        let brute: f64 = (1..=100u64).map(|d| 1.0 / d as f64).sum();
        assert!((h1 - brute).abs() < 1e-12);
        assert_eq!(harmonic_partial(0, 2.0), 0.0);
    }

    #[test]
    fn erfc_and_normal_cdf_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, symmetry erfc(−x) = 2 − erfc(x).
        assert!((erfc(0.0) - 1.0).abs() < 2e-7);
        assert!(erfc(5.0) < 2e-11);
        for &x in &[0.3, 1.0, 2.2] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
        // erfc(1) = 0.157299207050285…
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 3e-7);
        // Φ reference points.
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        // Monotone.
        let mut prev = 0.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let v = normal_cdf(x);
            assert!(v >= prev);
            prev = v;
            x += 0.25;
        }
    }

    #[test]
    fn polylog_known_values() {
        // Li_1(z) = −ln(1 − z).
        for &z in &[0.1, 0.5, 0.9] {
            let expected = -(1.0f64 - z).ln();
            assert!((polylog(1.0, z).unwrap() - expected).abs() < 1e-12, "z={z}");
        }
        // Li_2(1/2) = π²/12 − ln²2 / 2.
        let pi = std::f64::consts::PI;
        let expected = pi * pi / 12.0 - 0.5 * (2f64.ln()).powi(2);
        assert!((polylog(2.0, 0.5).unwrap() - expected).abs() < 1e-12);
        // Li_0(z) = z/(1−z).
        assert!((polylog(0.0, 0.3).unwrap() - 0.3 / 0.7).abs() < 1e-12);
        // Edge cases.
        assert_eq!(polylog(2.0, 0.0).unwrap(), 0.0);
        assert!(polylog(2.0, 1.0).is_err());
        assert!(polylog(2.0, -0.1).is_err());
    }

    #[test]
    fn zm_normalizer_matches_brute_force() {
        for &(n, s, q) in &[
            (100u64, 2.0, 0.5),
            (5000, 1.8, 3.0),
            (10_000, 2.5, 0.0001),
            (50, 0.9, 1.0), // s ≤ 1 direct path
        ] {
            let brute: f64 = (1..=n).map(|d| (d as f64 + q).powf(-s)).sum();
            let fast = zm_normalizer(n, s, q);
            assert!(
                (brute - fast).abs() < 1e-10 * brute.max(1.0),
                "n={n} s={s} q={q}: {brute} vs {fast}"
            );
        }
        assert_eq!(zm_normalizer(0, 2.0, 1.0), 0.0);
    }
}
