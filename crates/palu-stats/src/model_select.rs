//! Model selection: power law vs lognormal via likelihood ratios.
//!
//! The paper's conclusion proposes "determining if there is a better
//! fitting model than the Zipf-Mandelbrot distribution"; the classical
//! instrument (Clauset–Shalizi–Newman §5, Vuong 1989) is the
//! normalized log-likelihood-ratio test between a fitted power law and
//! a fitted lognormal on the same tail. This module provides:
//!
//! * [`fit_lognormal_tail`] — tail-conditioned lognormal MLE via
//!   Nelder–Mead;
//! * [`log_likelihood_powerlaw_tail`] — the matching power-law tail
//!   log-likelihood;
//! * [`vuong_test`] — the sign-and-significance verdict.

use crate::error::StatsError;
use crate::histogram::DegreeHistogram;
use crate::mle::PowerLawFit;
use crate::optimize::{golden_section, nelder_mead, NelderMeadOptions};
use crate::restart::{perturbation, Laddered, RestartPolicy, Rung};
use crate::special::{hurwitz_zeta, normal_cdf};
use crate::Result;

/// A lognormal fitted to a histogram tail (`d ≥ x_min`), with the pmf
/// renormalized over `x_min..=d_cap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalFit {
    /// Location parameter (log-space).
    pub mu: f64,
    /// Scale parameter (log-space).
    pub sigma: f64,
    /// Tail cutoff conditioned on.
    pub x_min: u64,
    /// Normalization cap (≥ the largest observed degree).
    pub d_cap: u64,
    /// Maximized tail log-likelihood.
    pub ln_likelihood: f64,
    /// Tail observation count.
    pub n_tail: u64,
}

/// Tail log-pmf table for a lognormal candidate: returns
/// `(per-degree ln pmf lookup, total over support)` or `None` for an
/// infeasible candidate.
fn lognormal_tail_lnpmf(
    mu: f64,
    sigma: f64,
    x_min: u64,
    d_cap: u64,
) -> Option<impl Fn(u64) -> f64> {
    // NaN-safe domain guard: `!(x > t)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(sigma > 1e-4) || !mu.is_finite() {
        return None;
    }
    // Normalizer over the tail support, in a stable log-sum-exp.
    let ln_rho = move |d: u64| {
        let ln_d = (d as f64).ln(); // d is a degree >= 1. lint:allow(R3)
        -((ln_d - mu).powi(2)) / (2.0 * sigma * sigma) - ln_d
    };
    let mut max_ln = f64::NEG_INFINITY;
    for d in x_min..=d_cap {
        max_ln = max_ln.max(ln_rho(d));
    }
    if !max_ln.is_finite() {
        return None;
    }
    let mut z = 0.0f64;
    for d in x_min..=d_cap {
        z += (ln_rho(d) - max_ln).exp();
    }
    // z sums exp(ln_rho - max_ln); the max term contributes 1, so z >= 1. lint:allow(R3)
    let ln_z = max_ln + z.ln();
    Some(move |d: u64| ln_rho(d) - ln_z)
}

/// Precomputed tail view shared by every rung of the lognormal ladder:
/// the filtered counts plus the moment estimates that seed (or, on the
/// last rung, *are*) the fit.
struct TailSetup {
    tail: Vec<(u64, u64)>,
    n_tail: u64,
    d_cap: u64,
    /// Count-weighted mean of `ln d` over the tail.
    mean_ln: f64,
    /// Moment estimate of σ, floored at 0.05 to stay feasible.
    sigma0: f64,
}

fn tail_setup(h: &DegreeHistogram, x_min: u64) -> Result<TailSetup> {
    let tail: Vec<(u64, u64)> = h.iter().filter(|&(d, _)| d >= x_min).collect();
    let n_tail: u64 = tail.iter().map(|&(_, c)| c).sum();
    if tail.len() < 2 || n_tail < 2 {
        return Err(StatsError::EmptyInput {
            routine: "fit_lognormal_tail",
        });
    }
    let d_cap = tail[tail.len() - 1].0;
    let mean_ln: f64 = tail
        .iter()
        .map(|&(d, c)| c as f64 * (d as f64).ln()) // d >= x_min >= 1. lint:allow(R3)
        .sum::<f64>()
        / n_tail as f64;
    let var_ln: f64 = tail
        .iter()
        .map(|&(d, c)| c as f64 * ((d as f64).ln() - mean_ln).powi(2)) // d >= 1. lint:allow(R3)
        .sum::<f64>()
        / n_tail as f64;
    // var_ln is a mean of squares >= 0; the floor keeps σ feasible. lint:allow(R3)
    let sigma0 = var_ln.sqrt().max(0.05);
    Ok(TailSetup {
        tail,
        n_tail,
        d_cap,
        mean_ln,
        sigma0,
    })
}

/// Negative tail log-likelihood of a `(μ, σ)` candidate; `+∞` when the
/// candidate is infeasible.
fn tail_neg_ll(setup: &TailSetup, x_min: u64, mu: f64, sigma: f64) -> f64 {
    match lognormal_tail_lnpmf(mu, sigma, x_min, setup.d_cap) {
        Some(lnpmf) => -setup
            .tail
            .iter()
            .map(|&(d, c)| c as f64 * lnpmf(d))
            .sum::<f64>(),
        None => f64::INFINITY,
    }
}

/// One Nelder–Mead run from `x0 = [μ, ln σ]` over the tail objective.
fn fit_lognormal_nm(
    setup: &TailSetup,
    x_min: u64,
    x0: &[f64; 2],
    opts: &NelderMeadOptions,
) -> Result<LogNormalFit> {
    let neg_ll = |v: &[f64]| tail_neg_ll(setup, x_min, v[0], v[1].exp());
    let result = nelder_mead(neg_ll, x0, opts)?;
    Ok(LogNormalFit {
        mu: result.x[0],
        sigma: result.x[1].exp(),
        x_min,
        d_cap: setup.d_cap,
        ln_likelihood: -result.f,
        n_tail: setup.n_tail,
    })
}

/// Fit a tail-conditioned lognormal by maximum likelihood.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] when fewer than two distinct tail
/// degrees exist; optimizer errors propagate.
pub fn fit_lognormal_tail(h: &DegreeHistogram, x_min: u64) -> Result<LogNormalFit> {
    let x_min = x_min.max(1);
    let setup = tail_setup(h, x_min)?;
    let x0 = [setup.mean_ln, setup.sigma0.ln()]; // sigma0 >= 0.05. lint:allow(R3)
    fit_lognormal_nm(&setup, x_min, &x0, &NelderMeadOptions::default())
}

/// [`fit_lognormal_tail`] hardened by the deterministic restart ladder
/// (DESIGN.md §4e).
///
/// Rungs, in order: a strict-convergence Nelder–Mead from the moment
/// start ([`Rung::Primary`]); strict Nelder–Mead from deterministically
/// perturbed starts ([`Rung::Perturbed`]); a golden-section profile
/// over `ln σ` with `μ` pinned at the tail log-mean
/// ([`Rung::Profile`]); and the raw moment estimates
/// ([`Rung::Fallback`]). The result records which rung succeeded and
/// how many optimizer invocations were spent.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] on a degenerate tail; otherwise the
/// *primary* rung's error if even the moment fallback is infeasible.
pub fn fit_lognormal_tail_with_restarts(
    h: &DegreeHistogram,
    x_min: u64,
    policy: &RestartPolicy,
) -> Result<Laddered<LogNormalFit>> {
    let x_min = x_min.max(1);
    let setup = tail_setup(h, x_min)?;
    let strict = NelderMeadOptions {
        require_convergence: true,
        ..Default::default()
    };
    let x0 = [setup.mean_ln, setup.sigma0.ln()]; // sigma0 >= 0.05. lint:allow(R3)

    let mut attempts = 1u32;
    let primary_err = match fit_lognormal_nm(&setup, x_min, &x0, &strict) {
        Ok(value) => {
            return Ok(Laddered {
                value,
                rung: Rung::Primary,
                attempts,
            })
        }
        Err(e) => e,
    };

    // Perturbed restarts: shift μ by up to ±0.5 and scale σ by a
    // deterministic factor in [0.5, 1.5).
    for k in 1..=policy.max_perturbations {
        let u = perturbation(policy.seed, k);
        let sigma_k = (setup.sigma0 * (0.5 + u)).max(0.05);
        let x0_k = [setup.mean_ln + (u - 0.5), sigma_k.ln()]; // >= 0.05. lint:allow(R3)
        attempts += 1;
        if let Ok(value) = fit_lognormal_nm(&setup, x_min, &x0_k, &strict) {
            return Ok(Laddered {
                value,
                rung: Rung::Perturbed,
                attempts,
            });
        }
    }

    // Profile: pin μ at the tail log-mean and line-search ln σ.
    attempts += 1;
    let profile = |s: f64| tail_neg_ll(&setup, x_min, setup.mean_ln, s.exp());
    // Bracket σ in [0.05, 5]: below the feasibility floor the
    // objective is +∞, above it the discretized pmf is flat.
    let (lo, hi) = (0.05f64.ln(), 5.0f64.ln()); // literals > 0. lint:allow(R3)
    if let Ok(m) = golden_section(profile, lo, hi, 1e-9, 200) {
        if m.converged && m.f.is_finite() {
            return Ok(Laddered {
                value: LogNormalFit {
                    mu: setup.mean_ln,
                    sigma: m.x.exp(),
                    x_min,
                    d_cap: setup.d_cap,
                    ln_likelihood: -m.f,
                    n_tail: setup.n_tail,
                },
                rung: Rung::Profile,
                attempts,
            });
        }
    }

    // Fallback: the moment estimates themselves, scored once.
    attempts += 1;
    let ll = -tail_neg_ll(&setup, x_min, setup.mean_ln, setup.sigma0);
    if ll.is_finite() {
        return Ok(Laddered {
            value: LogNormalFit {
                mu: setup.mean_ln,
                sigma: setup.sigma0,
                x_min,
                d_cap: setup.d_cap,
                ln_likelihood: ll,
                n_tail: setup.n_tail,
            },
            rung: Rung::Fallback,
            attempts,
        });
    }
    Err(primary_err)
}

/// Tail log-likelihood of a fitted power law on the same histogram
/// (conditioned on `d ≥ fit.x_min`), for comparison with
/// [`LogNormalFit::ln_likelihood`].
///
/// When `d_cap` is given, the power-law pmf is renormalized over
/// `[x_min, d_cap]` — required for a fair comparison against the
/// lognormal, whose discretized pmf is necessarily normalized over a
/// finite support. (Comparing a `[x_min, ∞)`-normalized power law to a
/// `[x_min, d_cap]`-normalized alternative hands the alternative the
/// power law's own unobserved-tail mass.)
///
/// # Errors
///
/// Propagates the Hurwitz-zeta domain check (`α > 1`).
pub fn log_likelihood_powerlaw_tail(
    h: &DegreeHistogram,
    fit: &PowerLawFit,
    d_cap: Option<u64>,
) -> Result<f64> {
    let mut z = hurwitz_zeta(fit.alpha, fit.x_min as f64)?;
    if let Some(cap) = d_cap {
        z -= hurwitz_zeta(fit.alpha, cap as f64 + 1.0)?;
    }
    Ok(h.iter()
        .filter(|&(d, _)| d >= fit.x_min)
        // d >= x_min >= 1; z is a Hurwitz-zeta value > 0 (checked above). lint:allow(R3)
        .map(|(d, c)| c as f64 * (-fit.alpha * (d as f64).ln() - z.ln()))
        .sum())
}

/// Verdict of a Vuong comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVerdict {
    /// Power law significantly better.
    PowerLaw,
    /// Lognormal significantly better.
    LogNormal,
    /// Neither model is significantly preferred.
    Inconclusive,
}

/// Result of the Vuong likelihood-ratio test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VuongTest {
    /// Total log-likelihood ratio `ln L_pl − ln L_ln` (positive favors
    /// the power law).
    pub lr: f64,
    /// Normalized statistic `lr / (√n · s)`, asymptotically standard
    /// normal under equivalence.
    pub z: f64,
    /// Two-sided p-value for "the models are equally close".
    pub p_value: f64,
    /// Verdict at the given significance level.
    pub verdict: ModelVerdict,
}

/// Vuong test between a fitted power law and a fitted lognormal on the
/// same tail.
///
/// # Errors
///
/// [`StatsError::Domain`] if the two fits condition on different
/// `x_min`; [`StatsError::EmptyInput`] if the tail is degenerate.
pub fn vuong_test(
    h: &DegreeHistogram,
    pl: &PowerLawFit,
    ln: &LogNormalFit,
    significance: f64,
) -> Result<VuongTest> {
    if pl.x_min != ln.x_min {
        return Err(StatsError::domain(
            "vuong_test",
            format!(
                "x_min mismatch: power law {} vs lognormal {}",
                pl.x_min, ln.x_min
            ),
        ));
    }
    let x_min = pl.x_min;
    // Both models normalized over the same finite support
    // [x_min, d_cap] — see `log_likelihood_powerlaw_tail`.
    let z_pl =
        hurwitz_zeta(pl.alpha, x_min as f64)? - hurwitz_zeta(pl.alpha, ln.d_cap as f64 + 1.0)?;
    let Some(ln_pmf) = lognormal_tail_lnpmf(ln.mu, ln.sigma, x_min, ln.d_cap) else {
        return Err(StatsError::domain("vuong_test", "degenerate lognormal fit"));
    };

    // Per-observation log-likelihood ratios (weighted by counts).
    let mut n = 0u64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (d, c) in h.iter().filter(|&(d, _)| d >= x_min) {
        let d_eval = d.min(ln.d_cap);
        // d >= x_min >= 1; z_pl is a Hurwitz-zeta value > 0. lint:allow(R3)
        let li = (-pl.alpha * (d as f64).ln() - z_pl.ln()) - ln_pmf(d_eval);
        n += c;
        sum += c as f64 * li;
        sum_sq += c as f64 * li * li;
    }
    if n < 2 {
        return Err(StatsError::EmptyInput {
            routine: "vuong_test",
        });
    }
    let nf = n as f64;
    let mean = sum / nf;
    let var = (sum_sq / nf - mean * mean).max(0.0);
    let sd = var.sqrt(); // var is clamped with .max(0.0) above. lint:allow(R3)
    let z = if sd > 0.0 {
        sum / (nf.sqrt() * sd) // nf = n >= 2. lint:allow(R3)
    } else {
        0.0
    };
    let p_value = 2.0 * normal_cdf(-z.abs());
    let verdict = if p_value > significance {
        ModelVerdict::Inconclusive
    } else if z > 0.0 {
        ModelVerdict::PowerLaw
    } else {
        ModelVerdict::LogNormal
    };
    Ok(VuongTest {
        lr: sum,
        z,
        p_value,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{DiscreteDistribution, DiscretizedLogNormal, Zeta};
    use crate::mle::fit_alpha_discrete;
    use crate::rng::Xoshiro256pp;

    fn vuong_on(h: &DegreeHistogram, x_min: u64) -> VuongTest {
        let pl = fit_alpha_discrete(h, x_min).unwrap();
        let ln = fit_lognormal_tail(h, x_min).unwrap();
        vuong_test(h, &pl, &ln, 0.05).unwrap()
    }

    #[test]
    fn lognormal_tail_fit_recovers_parameters() {
        let truth = DiscretizedLogNormal::new(2.0, 0.7, 50_000).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 100_000).into_iter().collect();
        let fit = fit_lognormal_tail(&h, 1).unwrap();
        assert!((fit.mu - 2.0).abs() < 0.05, "μ {}", fit.mu);
        assert!((fit.sigma - 0.7).abs() < 0.05, "σ {}", fit.sigma);
        assert!(fit.ln_likelihood.is_finite());
        assert_eq!(fit.n_tail, 100_000);
    }

    #[test]
    fn lognormal_fit_validates() {
        assert!(fit_lognormal_tail(&DegreeHistogram::new(), 1).is_err());
        let single = DegreeHistogram::from_counts([(5, 100)]);
        assert!(fit_lognormal_tail(&single, 1).is_err());
    }

    #[test]
    fn lognormal_ladder_stays_primary_on_clean_data() {
        let truth = DiscretizedLogNormal::new(2.0, 0.7, 50_000).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 50_000).into_iter().collect();
        let policy = crate::restart::RestartPolicy::default();
        let l = fit_lognormal_tail_with_restarts(&h, 1, &policy).unwrap();
        assert_eq!(l.rung, crate::restart::Rung::Primary);
        assert_eq!(l.attempts, 1);
        assert!((l.value.mu - 2.0).abs() < 0.1, "μ {}", l.value.mu);
        // Ladder determinism: bit-identical across reruns.
        let again = fit_lognormal_tail_with_restarts(&h, 1, &policy).unwrap();
        assert_eq!(l, again);
    }

    #[test]
    fn lognormal_ladder_handles_degenerate_tails() {
        let policy = crate::restart::RestartPolicy::default();
        // Empty / single-degree tails fail outright, same as the
        // unladdered fit.
        assert!(fit_lognormal_tail_with_restarts(&DegreeHistogram::new(), 1, &policy).is_err());
        let single = DegreeHistogram::from_counts([(5, 100)]);
        assert!(fit_lognormal_tail_with_restarts(&single, 1, &policy).is_err());
        // A barely-two-point tail still resolves on *some* rung with
        // finite parameters.
        let two = DegreeHistogram::from_counts([(3, 4), (9, 2)]);
        let l = fit_lognormal_tail_with_restarts(&two, 1, &policy).unwrap();
        assert!(l.value.mu.is_finite());
        assert!(l.value.sigma > 0.0);
        assert!(l.value.ln_likelihood.is_finite());
    }

    #[test]
    fn vuong_does_not_reject_power_law_on_zeta_data() {
        // On genuine power-law data the lognormal (with σ free) can
        // mimic the zeta shape almost exactly — Clauset–Shalizi–Newman
        // §5 document that the comparison is then *inconclusive*, not
        // a power-law win. What must never happen is a significant
        // LogNormal verdict on true zeta data.
        let z = Zeta::new(2.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let h: DegreeHistogram = (0..100_000).map(|_| z.sample(&mut rng)).collect();
        let v = vuong_on(&h, 1);
        assert!(
            v.z > -2.0,
            "z = {}: lognormal must not significantly beat the true model",
            v.z
        );
        assert_ne!(v.verdict, ModelVerdict::LogNormal, "z = {}", v.z);
    }

    #[test]
    fn vuong_prefers_lognormal_on_lognormal_data() {
        let truth = DiscretizedLogNormal::new(1.5, 0.9, 50_000).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 100_000).into_iter().collect();
        let v = vuong_on(&h, 1);
        assert!(
            v.z < -2.0,
            "z = {} should strongly favor the lognormal",
            v.z
        );
        assert_eq!(v.verdict, ModelVerdict::LogNormal);
    }

    #[test]
    fn vuong_is_inconclusive_on_tiny_samples() {
        // 60 observations cannot separate the families.
        let z = Zeta::new(2.2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let h: DegreeHistogram = (0..60).map(|_| z.sample(&mut rng)).collect();
        if let (Ok(pl), Ok(ln)) = (fit_alpha_discrete(&h, 1), fit_lognormal_tail(&h, 1)) {
            let v = vuong_test(&h, &pl, &ln, 0.05).unwrap();
            assert_eq!(v.verdict, ModelVerdict::Inconclusive, "z = {}", v.z);
        }
    }

    #[test]
    fn vuong_validates_matching_xmin() {
        let z = Zeta::new(2.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let h: DegreeHistogram = (0..10_000).map(|_| z.sample(&mut rng)).collect();
        let pl = fit_alpha_discrete(&h, 2).unwrap();
        let ln = fit_lognormal_tail(&h, 3).unwrap();
        assert!(vuong_test(&h, &pl, &ln, 0.05).is_err());
    }

    #[test]
    fn powerlaw_tail_likelihood_matches_fit_definition() {
        // The MLE maximizes exactly this likelihood: perturbing α away
        // from the fitted value must not increase it.
        let z = Zeta::new(2.3).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let h: DegreeHistogram = (0..50_000).map(|_| z.sample(&mut rng)).collect();
        let fit = fit_alpha_discrete(&h, 1).unwrap();
        let at_fit = log_likelihood_powerlaw_tail(&h, &fit, None).unwrap();
        for d_alpha in [-0.1f64, 0.1] {
            let perturbed = PowerLawFit {
                alpha: fit.alpha + d_alpha,
                ..fit
            };
            let ll = log_likelihood_powerlaw_tail(&h, &perturbed, None).unwrap();
            assert!(ll < at_fit, "perturbed {ll} ≥ fitted {at_fit}");
        }
        // Capped normalization only adds back unobserved-tail mass:
        // the likelihood must strictly improve.
        let capped = log_likelihood_powerlaw_tail(&h, &fit, Some(h.d_max().unwrap())).unwrap();
        assert!(capped > at_fit);
    }
}
