//! Error type shared by the statistical substrate.

use std::fmt;

/// Errors produced by numerical routines in this crate.
///
/// Every failure is a *domain* or *convergence* problem: the routines
/// themselves are deterministic and allocation failures abort. Callers are
/// expected to either validate inputs up front or propagate these errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An argument was outside the mathematical domain of the function.
    ///
    /// Carries the routine name and a human-readable description of the
    /// violated constraint.
    Domain {
        /// Name of the routine that rejected the argument.
        routine: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed to converge.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Best residual (or bracket width) achieved.
        residual: f64,
    },
    /// A routine that requires data received an empty or degenerate input.
    EmptyInput {
        /// Name of the routine that received the degenerate input.
        routine: &'static str,
    },
    /// A root- or minimum-bracketing precondition failed.
    BadBracket {
        /// Name of the routine whose bracket was invalid.
        routine: &'static str,
        /// Left end of the offending bracket.
        a: f64,
        /// Right end of the offending bracket.
        b: f64,
    },
}

impl StatsError {
    /// Convenience constructor for [`StatsError::Domain`].
    pub fn domain(routine: &'static str, message: impl Into<String>) -> Self {
        StatsError::Domain {
            routine,
            message: message.into(),
        }
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Domain { routine, message } => {
                write!(f, "{routine}: domain error: {message}")
            }
            StatsError::NoConvergence {
                routine,
                iterations,
                residual,
            } => write!(
                f,
                "{routine}: no convergence after {iterations} iterations (residual {residual:e})"
            ),
            StatsError::EmptyInput { routine } => write!(f, "{routine}: empty input"),
            StatsError::BadBracket { routine, a, b } => {
                write!(f, "{routine}: invalid bracket [{a}, {b}]")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StatsError::domain("zeta", "alpha must be > 1");
        assert_eq!(e.to_string(), "zeta: domain error: alpha must be > 1");

        let e = StatsError::NoConvergence {
            routine: "brent",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("brent"));
        assert!(e.to_string().contains("100"));

        let e = StatsError::EmptyInput { routine: "ols" };
        assert_eq!(e.to_string(), "ols: empty input");

        let e = StatsError::BadBracket {
            routine: "bisect",
            a: 0.0,
            b: 1.0,
        };
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StatsError::domain("f", "x"), StatsError::domain("f", "x"));
        assert_ne!(StatsError::domain("f", "x"), StatsError::domain("g", "x"));
    }
}
