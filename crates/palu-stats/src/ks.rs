//! Kolmogorov–Smirnov distances for discrete degree data.
//!
//! Used in two places: (1) `x_min` selection in the Clauset–Shalizi–
//! Newman baseline ([`crate::mle`]), which picks the tail cutoff
//! minimizing the KS distance between the empirical tail and the fitted
//! power law; and (2) as an alternative fit objective in the
//! Zipf–Mandelbrot fitter ablation.

use crate::histogram::DegreeHistogram;

/// KS distance between an empirical degree histogram and a model CDF
/// evaluated on the histogram's support:
/// `sup_d |F_emp(d) − F_model(d)|`.
///
/// The supremum over a discrete support is attained at a support point,
/// so scanning the observed degrees is exact. Returns 0 for an empty
/// histogram.
pub fn ks_distance<F: Fn(u64) -> f64>(h: &DegreeHistogram, model_cdf: F) -> f64 {
    if h.is_empty() {
        return 0.0;
    }
    let total = h.total() as f64;
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (d, c) in h.iter() {
        // Check just below the jump (empirical CDF before counting d)…
        let f_emp_before = acc as f64 / total;
        let f_model_before = if d == 0 { 0.0 } else { model_cdf(d - 1) };
        worst = worst.max((f_emp_before - f_model_before).abs());
        // …and at the jump.
        acc += c;
        let f_emp = acc as f64 / total;
        worst = worst.max((f_emp - model_cdf(d)).abs());
    }
    worst
}

/// KS distance restricted to the tail `d ≥ x_min`, with both the
/// empirical and model distributions renormalized to that tail. This is
/// the CSN goodness statistic.
///
/// `model_tail_cdf(d)` must give `P(X ≤ d | X ≥ x_min)` under the model.
/// Returns 0 if the histogram has no mass at or above `x_min`.
pub fn ks_distance_tail<F: Fn(u64) -> f64>(
    h: &DegreeHistogram,
    x_min: u64,
    model_tail_cdf: F,
) -> f64 {
    let tail_total: u64 = h.iter().filter(|&(d, _)| d >= x_min).map(|(_, c)| c).sum();
    if tail_total == 0 {
        return 0.0;
    }
    let total = tail_total as f64;
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (d, c) in h.iter().filter(|&(d, _)| d >= x_min) {
        let f_emp_before = acc as f64 / total;
        let f_model_before = if d <= x_min {
            0.0
        } else {
            model_tail_cdf(d - 1)
        };
        worst = worst.max((f_emp_before - f_model_before).abs());
        acc += c;
        let f_emp = acc as f64 / total;
        worst = worst.max((f_emp - model_tail_cdf(d)).abs());
    }
    worst
}

/// Two-sample KS distance between two empirical degree histograms.
pub fn ks_two_sample(a: &DegreeHistogram, b: &DegreeHistogram) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Merge supports; walk both CDFs across every jump point.
    let mut points: Vec<u64> = a.iter().map(|(d, _)| d).collect();
    points.extend(b.iter().map(|(d, _)| d));
    points.sort_unstable();
    points.dedup();
    points
        .iter()
        .map(|&d| (a.cumulative(d) - b.cumulative(d)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{DiscreteDistribution, Zeta};
    use crate::rng::Xoshiro256pp;

    #[test]
    fn ks_zero_for_perfect_match() {
        // Empirical = exact uniform over 1..=4, model CDF = same.
        let h = DegreeHistogram::from_degrees([1, 2, 3, 4]);
        let d = ks_distance(&h, |d| (d.min(4)) as f64 / 4.0);
        assert!(d < 1e-12);
    }

    #[test]
    fn ks_detects_total_mismatch() {
        // All mass at 1 vs model with all mass at 10.
        let h = DegreeHistogram::from_degrees([1, 1, 1]);
        let d = ks_distance(&h, |d| if d >= 10 { 1.0 } else { 0.0 });
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_checks_pre_jump_gap() {
        // Model puts 0.9 mass strictly below the single observed degree:
        // the pre-jump comparison must catch the 0.9 gap.
        let h = DegreeHistogram::from_degrees([5, 5]);
        let d = ks_distance(&h, |d| {
            if d >= 5 {
                1.0
            } else if d >= 1 {
                0.9
            } else {
                0.0
            }
        });
        assert!((d - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_histogram() {
        assert_eq!(ks_distance(&DegreeHistogram::new(), |_| 0.5), 0.0);
        assert_eq!(ks_distance_tail(&DegreeHistogram::new(), 1, |_| 0.5), 0.0);
    }

    #[test]
    fn ks_small_for_true_model_samples() {
        let zeta = Zeta::new(2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5150);
        let n = 100_000usize;
        let h: DegreeHistogram = (0..n).map(|_| zeta.sample(&mut rng)).collect();
        let d = ks_distance(&h, |k| zeta.cdf(k));
        // KS statistic for the true model scales like 1/√n ≈ 0.003.
        assert!(d < 0.01, "KS distance {d}");
        // A wrong exponent must do noticeably worse.
        let wrong = Zeta::new(1.7).unwrap();
        let d_wrong = ks_distance(&h, |k| wrong.cdf(k));
        assert!(d_wrong > 5.0 * d, "right {d}, wrong {d_wrong}");
    }

    #[test]
    fn ks_tail_renormalizes() {
        // Tail at x_min=3 of a histogram {1×5, 3×1, 4×1}: tail is
        // uniform over {3,4}. A tail-model matching that gives ~0.
        let h = DegreeHistogram::from_counts([(1, 5), (3, 1), (4, 1)]);
        let d = ks_distance_tail(&h, 3, |d| match d {
            0..=2 => 0.0,
            3 => 0.5,
            _ => 1.0,
        });
        assert!(d < 1e-12);
        // No tail mass → 0.
        assert_eq!(ks_distance_tail(&h, 100, |_| 0.5), 0.0);
    }

    #[test]
    fn two_sample_properties() {
        let a = DegreeHistogram::from_degrees([1, 2, 3]);
        let b = DegreeHistogram::from_degrees([1, 2, 3]);
        assert!(ks_two_sample(&a, &b) < 1e-12);
        let c = DegreeHistogram::from_degrees([10, 11, 12]);
        assert!((ks_two_sample(&a, &c) - 1.0).abs() < 1e-12);
        // Symmetry.
        let d1 = ks_two_sample(&a, &c);
        let d2 = ks_two_sample(&c, &a);
        assert_eq!(d1, d2);
        // Empty inputs.
        assert_eq!(ks_two_sample(&DegreeHistogram::new(), &a), 0.0);
    }
}
