//! Binomial distribution with exact sampling for any `(n, p)`.
//!
//! Erdős–Rényi edge thinning is the observation mechanism of the PALU
//! model: a degree-`d` node of the underlying network has observed degree
//! `Bin(d, p)` (Section V). Degrees in a power-law core can reach the
//! supernode scale (`d ~ 10^5`), so the sampler must stay exact and fast
//! far beyond the naive `n`-Bernoulli loop.

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::rng::Rng;
use crate::special::ln_factorial;
use crate::Result;

/// Below this expected count, plain inversion from 0 is fastest.
const BINV_CUTOFF: f64 = 16.0;

/// Binomial distribution `Bin(n, p)` with support `{0, …, n}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a binomial distribution with `n` trials and success
    /// probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `p` is outside `[0, 1]` or not
    /// finite.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(StatsError::domain(
                "Binomial::new",
                format!("p must be in [0,1], got {p}"),
            ));
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `ln C(n, k)` computed via log-factorials.
    fn ln_choose(n: u64, k: u64) -> f64 {
        ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
    }

    /// Exact inversion from k = 0 (fast when `n·min(p,1-p)` is small).
    fn sample_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
        let q = 1.0 - p;
        let ratio = p / q;
        // Log-space start handles huge n with tiny p without underflow
        // surprises from repeated multiplication.
        let mut pmf = (n as f64 * q.ln()).exp();
        let mut cdf = pmf;
        let u = rng.gen::<f64>();
        let mut k = 0u64;
        while u > cdf && k < n {
            pmf *= ratio * (n - k) as f64 / (k + 1) as f64;
            cdf += pmf;
            k += 1;
            // Guard against FP shortfall: if pmf has decayed to zero the
            // remaining mass is numerically negligible.
            if pmf == 0.0 {
                break;
            }
        }
        k
    }

    /// Exact two-sided inversion started at the mode: expected
    /// `O(√(npq))` steps, robust for large `n`.
    fn sample_mode_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
        let q = 1.0 - p;
        let mode = ((n as f64 + 1.0) * p).floor().min(n as f64) as u64;
        // pmf at the mode via log space (safe for huge n).
        let ln_pmf_mode =
            Self::ln_choose(n, mode) + mode as f64 * p.ln() + (n - mode) as f64 * q.ln();
        let pmf_mode = ln_pmf_mode.exp();

        let mut u = rng.gen::<f64>();
        u -= pmf_mode;
        if u <= 0.0 {
            return mode;
        }
        // Walk outward from the mode, alternating sides; recurrences:
        //   pmf(k+1) = pmf(k) · (n-k)/(k+1) · p/q
        //   pmf(k-1) = pmf(k) · k/(n-k+1) · q/p
        let ratio_up = p / q;
        let ratio_dn = q / p;
        let mut pmf_up = pmf_mode;
        let mut pmf_dn = pmf_mode;
        let mut k_up = mode;
        let mut k_dn = mode;
        loop {
            let can_up = k_up < n;
            let can_dn = k_dn > 0;
            if can_up {
                pmf_up *= ratio_up * (n - k_up) as f64 / (k_up + 1) as f64;
                k_up += 1;
                u -= pmf_up;
                if u <= 0.0 {
                    return k_up;
                }
            }
            if can_dn {
                pmf_dn *= ratio_dn * k_dn as f64 / (n - k_dn + 1) as f64;
                k_dn -= 1;
                u -= pmf_dn;
                if u <= 0.0 {
                    return k_dn;
                }
            }
            if !can_up && !can_dn {
                // Numerical shortfall (u was in the last few ulps of the
                // CDF); return the mode as the highest-density fallback.
                return mode;
            }
            // If both frontier masses have decayed to zero, remaining
            // probability is numerically zero.
            if pmf_up == 0.0 && pmf_dn == 0.0 {
                return mode;
            }
        }
    }
}

impl DiscreteDistribution for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        Self::ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        (0..=k).map(|j| self.pmf(j)).sum::<f64>().min(1.0)
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Exploit symmetry: sample with p' = min(p, 1-p), flip back.
        let flipped = p > 0.5;
        let ps = if flipped { 1.0 - p } else { p };
        let k = if n as f64 * ps < BINV_CUTOFF {
            Self::sample_inversion(n, ps, rng)
        } else {
            Self::sample_mode_inversion(n, ps, rng)
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_moments, check_pmf_frequencies};
    use super::super::DiscreteDistribution;
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn construction_validates_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(0, 0.5).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.5), (10, 0.3), (100, 0.77), (1000, 0.01)] {
            let d = Binomial::new(n, p).unwrap();
            let total: f64 = (0..=n).map(|k| d.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        let d = Binomial::new(4, 0.5).unwrap();
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (k, &e) in expected.iter().enumerate() {
            assert!((d.pmf(k as u64) - e).abs() < 1e-12, "k={k}");
        }
        assert_eq!(d.pmf(5), 0.0);
    }

    #[test]
    fn degenerate_p_values() {
        let d0 = Binomial::new(10, 0.0).unwrap();
        assert_eq!(d0.pmf(0), 1.0);
        assert_eq!(d0.pmf(3), 0.0);
        let d1 = Binomial::new(10, 1.0).unwrap();
        assert_eq!(d1.pmf(10), 1.0);
        assert_eq!(d1.pmf(9), 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        assert_eq!(d0.sample(&mut rng), 0);
        assert_eq!(d1.sample(&mut rng), 10);
    }

    #[test]
    fn cdf_endpoints() {
        let d = Binomial::new(20, 0.4).unwrap();
        assert!((d.cdf(20) - 1.0).abs() < 1e-12);
        assert!((d.cdf(25) - 1.0).abs() < 1e-12);
        assert!(d.cdf(0) > 0.0 && d.cdf(0) < 1.0);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for k in 0..=20 {
            let c = d.cdf(k);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
    }

    #[test]
    fn sampler_moments_inversion_regime() {
        check_moments(&Binomial::new(10, 0.3).unwrap(), 200_000, 31, 4.5);
        check_moments(&Binomial::new(500, 0.01).unwrap(), 200_000, 32, 4.5);
    }

    #[test]
    fn sampler_moments_mode_inversion_regime() {
        check_moments(&Binomial::new(1000, 0.4).unwrap(), 100_000, 33, 4.5);
        check_moments(&Binomial::new(100_000, 0.25).unwrap(), 30_000, 34, 4.5);
    }

    #[test]
    fn sampler_symmetry_flip() {
        // p > 0.5 path (internally flipped) must match moments too.
        check_moments(&Binomial::new(1000, 0.9).unwrap(), 100_000, 35, 4.5);
        check_moments(&Binomial::new(12, 0.8).unwrap(), 200_000, 36, 4.5);
    }

    #[test]
    fn sampler_frequencies_match_pmf() {
        check_pmf_frequencies(&Binomial::new(30, 0.35).unwrap(), 300_000, 30, 41, 4.5);
        check_pmf_frequencies(&Binomial::new(200, 0.5).unwrap(), 200_000, 130, 42, 4.5);
    }

    #[test]
    fn samples_never_exceed_n() {
        let d = Binomial::new(17, 0.6).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(50);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) <= 17);
        }
    }

    #[test]
    fn supernode_scale_sampling_is_sane() {
        // A supernode with d = 10^6 observed through p = 0.001.
        let d = Binomial::new(1_000_000, 0.001).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(60);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let se = (d.variance() / n as f64).sqrt();
        assert!((mean - 1000.0).abs() < 5.0 * se, "mean {mean}");
    }
}
