//! Discrete power law (zeta distribution) for the PA core.
//!
//! The paper assumes "the number of core nodes of the underlying network
//! having degree d follows a power-law distribution of the form
//! `d^{-α}/ζ(α)`" (Section V). That is exactly the zeta distribution,
//! implemented here with Devroye's exact rejection sampler, together
//! with a truncated variant for finite networks (where `d_max` caps the
//! supernode degree).

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::rng::Rng;
use crate::special::{harmonic_partial, riemann_zeta};
use crate::Result;

/// Zeta (discrete power-law) distribution: `pmf(d) = d^{-α}/ζ(α)`,
/// support `{1, 2, 3, …}`, exponent `α > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zeta {
    alpha: f64,
    zeta_alpha: f64,
}

impl Zeta {
    /// Create a zeta distribution with exponent `α > 1`.
    ///
    /// The paper works with `α ∈ [1.5, 3]` but any `α > 1` is valid.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `α ≤ 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(StatsError::domain(
                "Zeta::new",
                format!("exponent must be finite and > 1, got {alpha}"),
            ));
        }
        Ok(Zeta {
            alpha,
            zeta_alpha: riemann_zeta(alpha)?,
        })
    }

    /// The power-law exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The normalization constant `ζ(α)`.
    pub fn zeta_alpha(&self) -> f64 {
        self.zeta_alpha
    }
}

impl DiscreteDistribution for Zeta {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        (k as f64).powf(-self.alpha) / self.zeta_alpha
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        harmonic_partial(k, self.alpha) / self.zeta_alpha
    }

    fn mean(&self) -> f64 {
        // Finite only for α > 2: ζ(α-1)/ζ(α).
        if self.alpha > 2.0 {
            riemann_zeta(self.alpha - 1.0).expect("alpha - 1 > 1") / self.zeta_alpha
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        // Finite only for α > 3.
        if self.alpha > 3.0 {
            let z = self.zeta_alpha;
            let m2 = riemann_zeta(self.alpha - 2.0).expect("alpha - 2 > 1") / z;
            let m1 = riemann_zeta(self.alpha - 1.0).expect("alpha - 1 > 1") / z;
            m2 - m1 * m1
        } else {
            f64::INFINITY
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Devroye (1986), Non-Uniform Random Variate Generation, X.6.1:
        // exact rejection for the zeta distribution.
        let am1 = self.alpha - 1.0;
        let b = 2f64.powf(am1);
        loop {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let v: f64 = rng.gen();
            let x = u.powf(-1.0 / am1).floor();
            if x < 1.0 || !x.is_finite() {
                // x < 1 cannot occur mathematically (u ≤ 1 ⇒ x ≥ 1) but
                // guard FP edge cases; non-finite x means u was at the
                // smallest subnormal — resample.
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(am1);
            if v * x * (t - 1.0) / (b - 1.0) <= t / b {
                return x as u64;
            }
        }
    }
}

/// Zeta distribution truncated to `{1, …, d_max}`:
/// `pmf(d) = d^{-α} / H(d_max, α)`.
///
/// Finite networks cannot host arbitrarily large degrees; the paper's
/// `d_max` (Equation 1) is the supernode degree, and all of its
/// normalized model probabilities are truncated sums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedZeta {
    alpha: f64,
    d_max: u64,
    normalizer: f64,
    /// Probability mass the truncation removed from the untruncated law.
    tail_mass: f64,
}

impl TruncatedZeta {
    /// Create a truncated zeta distribution with exponent `α > 1` and
    /// maximum degree `d_max ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `α ≤ 1` or `d_max == 0`.
    pub fn new(alpha: f64, d_max: u64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(StatsError::domain(
                "TruncatedZeta::new",
                format!("exponent must be finite and > 1, got {alpha}"),
            ));
        }
        if d_max == 0 {
            return Err(StatsError::domain(
                "TruncatedZeta::new",
                "d_max must be >= 1",
            ));
        }
        let normalizer = harmonic_partial(d_max, alpha);
        let total = riemann_zeta(alpha)?;
        Ok(TruncatedZeta {
            alpha,
            d_max,
            normalizer,
            tail_mass: (total - normalizer) / total,
        })
    }

    /// The power-law exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The truncation point `d_max`.
    pub fn d_max(&self) -> u64 {
        self.d_max
    }

    /// Fraction of untruncated zeta mass that lies beyond `d_max`
    /// (i.e. the rejection rate of [`DiscreteDistribution::sample`]).
    pub fn tail_mass(&self) -> f64 {
        self.tail_mass
    }

    /// Expected value `Σ d·pmf(d)`, always finite under truncation.
    pub fn mean_truncated(&self) -> f64 {
        harmonic_partial(self.d_max, self.alpha - 1.0) / self.normalizer
    }
}

impl DiscreteDistribution for TruncatedZeta {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.d_max {
            return 0.0;
        }
        (k as f64).powf(-self.alpha) / self.normalizer
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k >= self.d_max {
            return 1.0;
        }
        harmonic_partial(k, self.alpha) / self.normalizer
    }

    fn mean(&self) -> f64 {
        self.mean_truncated()
    }

    fn variance(&self) -> f64 {
        let m1 = self.mean_truncated();
        let m2 = harmonic_partial(self.d_max, self.alpha - 2.0) / self.normalizer;
        m2 - m1 * m1
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Rejection from the untruncated zeta sampler; acceptance
        // probability is 1 − tail_mass, which is ≈ 1 for any realistic
        // d_max (the zeta tail above d_max carries d_max^{1-α} mass).
        let untruncated = Zeta {
            alpha: self.alpha,
            zeta_alpha: riemann_zeta(self.alpha).expect("validated alpha"),
        };
        loop {
            let x = untruncated.sample(rng);
            if x <= self.d_max {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::DiscreteDistribution;
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn construction_validates() {
        assert!(Zeta::new(1.0).is_err());
        assert!(Zeta::new(0.5).is_err());
        assert!(Zeta::new(f64::NAN).is_err());
        assert!(Zeta::new(1.5).is_ok());
        assert!(TruncatedZeta::new(2.0, 0).is_err());
        assert!(TruncatedZeta::new(1.0, 10).is_err());
    }

    #[test]
    fn pmf_is_power_law_over_zeta() {
        let d = Zeta::new(2.0).unwrap();
        let z2 = std::f64::consts::PI.powi(2) / 6.0;
        assert!((d.pmf(1) - 1.0 / z2).abs() < 1e-12);
        assert!((d.pmf(2) - 0.25 / z2).abs() < 1e-12);
        assert!((d.pmf(10) - 0.01 / z2).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
    }

    #[test]
    fn pmf_sums_to_one_numerically() {
        // α = 3 converges fast enough to check directly.
        let d = Zeta::new(3.0).unwrap();
        let head: f64 = (1..100_000u64).map(|k| d.pmf(k)).sum();
        assert!((head - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moments_match_zeta_ratios() {
        let d = Zeta::new(3.5).unwrap();
        let expected_mean = riemann_zeta(2.5).unwrap() / riemann_zeta(3.5).unwrap();
        assert!((d.mean() - expected_mean).abs() < 1e-12);
        assert!(Zeta::new(1.8).unwrap().mean().is_infinite());
        assert!(Zeta::new(2.5).unwrap().variance().is_infinite());
        assert!(Zeta::new(3.5).unwrap().variance().is_finite());
    }

    #[test]
    fn devroye_sampler_matches_pmf() {
        // Frequency check for small d where mass concentrates.
        let d = Zeta::new(2.5).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let n = 400_000usize;
        let mut counts = [0u64; 11];
        for _ in 0..n {
            let x = d.sample(&mut rng);
            if x <= 10 {
                counts[x as usize] += 1;
            }
        }
        for k in 1..=10u64 {
            let p = d.pmf(k);
            let expected = p * n as f64;
            let se = (n as f64 * p * (1.0 - p)).sqrt();
            let obs = counts[k as usize] as f64;
            assert!(
                (obs - expected).abs() < 5.0 * se,
                "k={k}: obs {obs}, expected {expected}"
            );
        }
    }

    #[test]
    fn sampler_tail_exponent_via_log_regression() {
        // The empirical log-log survival curve should have slope ≈ 1-α.
        let alpha = 2.2;
        let d = Zeta::new(alpha).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(78);
        let n = 500_000usize;
        let mut samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        // Survival at thresholds 2^1..2^7.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 1..=7u32 {
            let t = 2u64.pow(i);
            let surv = samples.iter().filter(|&&s| s >= t).count() as f64 / n as f64;
            xs.push((t as f64).ln());
            ys.push(surv.ln());
        }
        // Simple slope fit.
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let slope = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>();
        // Survival of a zeta(α) decays like d^{1-α}.
        assert!(
            (slope - (1.0 - alpha)).abs() < 0.1,
            "slope {slope} vs {}",
            1.0 - alpha
        );
    }

    #[test]
    fn truncated_pmf_normalizes_and_caps() {
        let t = TruncatedZeta::new(2.0, 100).unwrap();
        let total: f64 = (1..=100u64).map(|k| t.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(t.pmf(101), 0.0);
        assert_eq!(t.cdf(100), 1.0);
        assert_eq!(t.cdf(5000), 1.0);
    }

    #[test]
    fn truncated_sampler_respects_cap() {
        let t = TruncatedZeta::new(1.6, 50).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(79);
        for _ in 0..20_000 {
            let x = t.sample(&mut rng);
            assert!((1..=50).contains(&x));
        }
    }

    #[test]
    fn truncated_mean_matches_brute_force() {
        let t = TruncatedZeta::new(2.3, 1000).unwrap();
        let brute: f64 = (1..=1000u64).map(|k| k as f64 * t.pmf(k)).sum();
        assert!((t.mean() - brute).abs() < 1e-10);
        let brute_var: f64 = (1..=1000u64)
            .map(|k| (k as f64 - brute).powi(2) * t.pmf(k))
            .sum();
        assert!((t.variance() - brute_var).abs() < 1e-8);
    }

    #[test]
    fn tail_mass_decreases_with_d_max() {
        let t1 = TruncatedZeta::new(2.0, 10).unwrap();
        let t2 = TruncatedZeta::new(2.0, 1000).unwrap();
        assert!(t1.tail_mass() > t2.tail_mass());
        assert!(t2.tail_mass() > 0.0);
        assert!(t2.tail_mass() < 0.01);
    }
}
