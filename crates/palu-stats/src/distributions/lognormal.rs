//! Discretized lognormal distribution — the classical alternative to
//! the power law.
//!
//! The paper's conclusion asks about "determining if there is a better
//! fitting model than the Zipf-Mandelbrot distribution", and the
//! literature it cites (Sheridan & Onodera 2018) argues PA + growth
//! produces *log-normal* in-degrees. This module provides the standard
//! discretization used by the python `powerlaw` package: the
//! continuous density evaluated at integer support and renormalized,
//!
//! ```text
//! pmf(d) ∝ (1/d)·exp(−(ln d − μ)² / (2σ²)),   d = 1, …, d_max.
//! ```

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::rng::Rng;
use crate::Result;

/// Discretized lognormal over `{1, …, d_max}`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizedLogNormal {
    mu: f64,
    sigma: f64,
    d_max: u64,
    /// Normalization constant `Σ_d ρ(d)`.
    normalizer: f64,
    /// Cached cumulative table for sampling/cdf when the support is
    /// small enough; otherwise computed on demand.
    cumulative: Vec<f64>,
}

impl DiscretizedLogNormal {
    /// Largest support size for which the cumulative table is cached.
    const CACHE_LIMIT: u64 = 1 << 22;

    /// Create with location `μ`, scale `σ > 0`, and support bound
    /// `d_max ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] on invalid `σ` or empty support.
    pub fn new(mu: f64, sigma: f64, d_max: u64) -> Result<Self> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::domain(
                "DiscretizedLogNormal::new",
                format!("sigma must be positive, got {sigma}"),
            ));
        }
        if !mu.is_finite() {
            return Err(StatsError::domain(
                "DiscretizedLogNormal::new",
                "mu must be finite",
            ));
        }
        if d_max == 0 {
            return Err(StatsError::domain(
                "DiscretizedLogNormal::new",
                "d_max must be >= 1",
            ));
        }
        let rho = |d: u64| {
            let ln_d = (d as f64).ln();
            (-((ln_d - mu).powi(2)) / (2.0 * sigma * sigma)).exp() / d as f64
        };
        let cache = d_max <= Self::CACHE_LIMIT;
        let mut cumulative = Vec::new();
        let mut normalizer = 0.0;
        if cache {
            cumulative.reserve(d_max as usize);
            for d in 1..=d_max {
                normalizer += rho(d);
                cumulative.push(normalizer);
            }
        } else {
            for d in 1..=d_max {
                normalizer += rho(d);
            }
        }
        if normalizer <= 0.0 || !normalizer.is_finite() {
            return Err(StatsError::domain(
                "DiscretizedLogNormal::new",
                "support carries no mass (mu/sigma push the density out of range)",
            ));
        }
        Ok(DiscretizedLogNormal {
            mu,
            sigma,
            d_max,
            normalizer,
            cumulative,
        })
    }

    /// Location parameter `μ` (log-space mean of the continuous law).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Support bound.
    pub fn d_max(&self) -> u64 {
        self.d_max
    }

    /// Log-pmf (finite only on support).
    pub fn ln_pmf_checked(&self, d: u64) -> f64 {
        if d == 0 || d > self.d_max {
            return f64::NEG_INFINITY;
        }
        let ln_d = (d as f64).ln();
        -((ln_d - self.mu).powi(2)) / (2.0 * self.sigma * self.sigma) - ln_d - self.normalizer.ln()
    }
}

impl DiscreteDistribution for DiscretizedLogNormal {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf_checked(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        self.ln_pmf_checked(k)
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k.min(self.d_max);
        if !self.cumulative.is_empty() {
            self.cumulative[k as usize - 1] / self.normalizer
        } else {
            (1..=k).map(|d| self.pmf(d)).sum()
        }
    }

    fn mean(&self) -> f64 {
        (1..=self.d_max).map(|d| d as f64 * self.pmf(d)).sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        (1..=self.d_max)
            .map(|d| (d as f64 - m).powi(2) * self.pmf(d))
            .sum()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let target = rng.gen::<f64>() * self.normalizer;
        if !self.cumulative.is_empty() {
            // Binary search the cached cumulative table.
            let idx = self.cumulative.partition_point(|&c| c < target);
            (idx as u64 + 1).min(self.d_max)
        } else {
            // Linear scan fallback (only for astronomically large
            // supports, where the mass is still concentrated early).
            let mut acc = 0.0;
            for d in 1..=self.d_max {
                acc += self.pmf(d) * self.normalizer;
                if acc >= target {
                    return d;
                }
            }
            self.d_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_moments;
    use super::super::DiscreteDistribution;
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn construction_validates() {
        assert!(DiscretizedLogNormal::new(1.0, 0.0, 100).is_err());
        assert!(DiscretizedLogNormal::new(1.0, -1.0, 100).is_err());
        assert!(DiscretizedLogNormal::new(f64::NAN, 1.0, 100).is_err());
        assert!(DiscretizedLogNormal::new(1.0, 1.0, 0).is_err());
        assert!(DiscretizedLogNormal::new(1.0, 1.0, 100).is_ok());
        // A density pushed absurdly far away still normalizes (tiny
        // but positive mass) or errors cleanly — never panics.
        let far = DiscretizedLogNormal::new(200.0, 0.1, 100);
        if let Ok(d) = far {
            assert!(d.pmf(1).is_finite())
        }
    }

    #[test]
    fn pmf_normalizes() {
        let d = DiscretizedLogNormal::new(1.5, 0.8, 5000).unwrap();
        let total: f64 = (1..=5000u64).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(5001), 0.0);
    }

    #[test]
    fn mode_is_near_exp_mu_minus_sigma_sq() {
        // Continuous lognormal density (with the 1/d factor) peaks at
        // exp(μ − σ²).
        let (mu, sigma) = (3.0f64, 0.5f64);
        let d = DiscretizedLogNormal::new(mu, sigma, 10_000).unwrap();
        let expected_mode = (mu - sigma * sigma).exp();
        let mode = (1..=10_000u64)
            .max_by(|&a, &b| d.pmf(a).partial_cmp(&d.pmf(b)).unwrap())
            .unwrap();
        assert!(
            (mode as f64 - expected_mode).abs() <= 2.0,
            "mode {mode} vs {expected_mode}"
        );
    }

    #[test]
    fn cdf_matches_pmf_sums() {
        let d = DiscretizedLogNormal::new(1.0, 1.0, 300).unwrap();
        let mut acc = 0.0;
        for k in 1..=300 {
            acc += d.pmf(k);
            assert!((d.cdf(k) - acc).abs() < 1e-12, "k={k}");
        }
        assert!((d.cdf(300) - 1.0).abs() < 1e-12);
        assert_eq!(d.cdf(0), 0.0);
    }

    #[test]
    fn sampler_moments() {
        let d = DiscretizedLogNormal::new(2.0, 0.6, 10_000).unwrap();
        check_moments(&d, 100_000, 44, 4.5);
        let mut rng = Xoshiro256pp::seed_from_u64(45);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1..=10_000).contains(&x));
        }
    }

    #[test]
    fn lognormal_mimics_power_law_over_finite_range() {
        // The classic confusability: over a bounded range a lognormal
        // with large σ looks like a power law. Check log-log curvature
        // is small but nonzero (the discriminating feature the Vuong
        // test exploits).
        let d = DiscretizedLogNormal::new(0.0, 3.0, 10_000).unwrap();
        let slope =
            |a: u64, b: u64| (d.pmf(b).ln() - d.pmf(a).ln()) / ((b as f64).ln() - (a as f64).ln());
        let early = slope(2, 8);
        let late = slope(512, 2048);
        // Both look like plausible power-law exponents…
        assert!(early < -0.8 && early > -2.5, "early slope {early}");
        assert!(late < early, "log-log curvature must bend down");
    }
}
