//! Poisson distribution with exact sampling at any rate.
//!
//! The PALU model uses `Po(λ)` for the number of non-central nodes of
//! each unattached star, and the key thinning identity
//! `Bin(Po(λ), p) = Po(λp)` (Section V) for their observed counterparts.

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::rng::Rng;
use crate::special::ln_factorial;
use crate::Result;

/// Rate threshold below which inversion-by-sequential-search is used;
/// above it the PTRS transformed-rejection sampler takes over.
const INVERSION_CUTOFF: f64 = 10.0;

/// Poisson distribution `Po(λ)` with support `{0, 1, 2, …}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution with rate `λ ≥ 0`.
    ///
    /// `λ = 0` is allowed and yields the point mass at 0 — the PALU
    /// generator hits this case when the observation window shrinks to
    /// nothing (`p → 0`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] for negative or non-finite rates.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(StatsError::domain(
                "Poisson::new",
                format!("rate must be finite and >= 0, got {lambda}"),
            ));
        }
        Ok(Poisson { lambda })
    }

    /// The rate parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability of drawing exactly zero: `e^{-λ}`.
    ///
    /// This is the paper's isolated-central-node probability — the
    /// fraction `Bin(U_N, e^{-λ})` of star centers that are invisible to
    /// traffic observation.
    pub fn p_zero(&self) -> f64 {
        (-self.lambda).exp()
    }

    /// Thin this Poisson by independently keeping each counted item with
    /// probability `p`, yielding `Po(λp)` (the Section V identity).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `p` is outside `[0, 1]`.
    pub fn thin(&self, p: f64) -> Result<Poisson> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::domain(
                "Poisson::thin",
                format!("retention probability must be in [0,1], got {p}"),
            ));
        }
        Poisson::new(self.lambda * p)
    }

    /// Sample via multiplicative inversion (exact, O(λ) expected).
    fn sample_inversion<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut prod = rng.gen::<f64>();
        while prod > l {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        k
    }

    /// Sample via Hörmann's PTRS transformed rejection (exact, O(1)
    /// expected, valid for `λ ≥ 10`).
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lam = self.lambda;
        let b = 0.931 + 2.53 * lam.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        let ln_lam = lam.ln();
        loop {
            let u = rng.gen::<f64>() - 0.5;
            let v = rng.gen::<f64>();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lam + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let accept = (v * inv_alpha / (a / (us * us) + b)).ln()
                <= k * ln_lam - lam - ln_factorial(k as u64);
            if accept {
                return k as u64;
            }
        }
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    fn cdf(&self, k: u64) -> f64 {
        // Direct summation with the multiplicative recurrence
        // pmf(j+1) = pmf(j)·λ/(j+1); exact enough for the k ranges used
        // here (k up to a few thousand).
        let mut term = (-self.lambda).exp();
        let mut acc = term;
        for j in 0..k {
            term *= self.lambda / (j + 1) as f64;
            acc += term;
        }
        acc.min(1.0)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            0
        } else if self.lambda < INVERSION_CUTOFF {
            self.sample_inversion(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_moments, check_pmf_frequencies};
    use super::super::DiscreteDistribution;
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn construction_validates_rate() {
        assert!(Poisson::new(-0.1).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(0.0).is_ok());
        assert!(Poisson::new(1e6).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        for lam in [0.3, 1.0, 4.5, 20.0] {
            let d = Poisson::new(lam).unwrap();
            let total: f64 = (0..200).map(|k| d.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "λ={lam}");
        }
    }

    #[test]
    fn pmf_known_values() {
        let d = Poisson::new(2.0).unwrap();
        // P(X=0) = e^-2, P(X=1) = 2e^-2, P(X=2) = 2e^-2
        let e2 = (-2.0f64).exp();
        assert!((d.pmf(0) - e2).abs() < 1e-14);
        assert!((d.pmf(1) - 2.0 * e2).abs() < 1e-14);
        assert!((d.pmf(2) - 2.0 * e2).abs() < 1e-14);
        assert!((d.pmf(3) - 4.0 / 3.0 * e2).abs() < 1e-14);
    }

    #[test]
    fn zero_rate_is_point_mass() {
        let d = Poisson::new(0.0).unwrap();
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.pmf(1), 0.0);
        assert_eq!(d.cdf(0), 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let d = Poisson::new(3.7).unwrap();
        let mut acc = 0.0;
        for k in 0..30 {
            acc += d.pmf(k);
            assert!((d.cdf(k) - acc).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn p_zero_matches_pmf() {
        for lam in [0.1, 1.0, 5.0, 15.0] {
            let d = Poisson::new(lam).unwrap();
            assert!((d.p_zero() - d.pmf(0)).abs() < 1e-14);
        }
    }

    #[test]
    fn thinning_identity_parameters() {
        let d = Poisson::new(8.0).unwrap();
        let t = d.thin(0.25).unwrap();
        assert!((t.lambda() - 2.0).abs() < 1e-14);
        assert!(d.thin(1.5).is_err());
        assert!(d.thin(-0.1).is_err());
    }

    #[test]
    fn sampler_moments_small_lambda() {
        check_moments(&Poisson::new(0.8).unwrap(), 200_000, 11, 4.5);
        check_moments(&Poisson::new(4.2).unwrap(), 200_000, 12, 4.5);
    }

    #[test]
    fn sampler_moments_large_lambda_ptrs() {
        check_moments(&Poisson::new(10.0).unwrap(), 200_000, 13, 4.5);
        check_moments(&Poisson::new(37.5).unwrap(), 200_000, 14, 4.5);
        check_moments(&Poisson::new(400.0).unwrap(), 100_000, 15, 4.5);
    }

    #[test]
    fn sampler_frequencies_match_pmf() {
        check_pmf_frequencies(&Poisson::new(3.0).unwrap(), 300_000, 12, 21, 4.5);
        check_pmf_frequencies(&Poisson::new(15.0).unwrap(), 300_000, 35, 22, 4.5);
    }

    #[test]
    fn thinned_sampling_matches_direct_po_lambda_p() {
        // Empirically verify Bin(Po(λ), p) ≈ Po(λp): thin each Poisson
        // draw by Bernoulli(p) and compare the mean to λp.
        let lam = 6.0;
        let p = 0.3;
        let d = Poisson::new(lam).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 200_000;
        let mut total = 0u64;
        for _ in 0..n {
            let y = d.sample(&mut rng);
            let kept = (0..y).filter(|_| rng.gen::<f64>() < p).count() as u64;
            total += kept;
        }
        let mean = total as f64 / n as f64;
        let se = (lam * p / n as f64).sqrt();
        assert!(
            (mean - lam * p).abs() < 5.0 * se,
            "mean {mean} vs {}",
            lam * p
        );
    }
}
