//! Geometric distribution on `{1, 2, 3, …}`.
//!
//! Section VI of the paper replaces the Poisson term `(Λ/d)^d` with the
//! geometric tail `r^{1-d}` ("an equally valid Geometric distribution"),
//! producing the one-parameter PALU(d) approximation of Equation (5).
//! This module provides that distribution with the paper's
//! parameterization: `pmf(d) ∝ r^{1-d}` for a decay base `r > 1`, which
//! is the classical first-success geometric with success probability
//! `q = 1 - 1/r`.

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::rng::Rng;
use crate::Result;

/// Geometric distribution with support `{1, 2, 3, …}` and
/// `pmf(d) = (1 - 1/r) · r^{1-d}` for decay base `r > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    /// Decay base `r` from the paper's `r^{1-d}` tail.
    r: f64,
}

impl Geometric {
    /// Create a geometric distribution from the paper's decay base
    /// `r > 1` (larger `r` decays faster).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `r ≤ 1` or `r` is not finite.
    pub fn from_decay_base(r: f64) -> Result<Self> {
        if !r.is_finite() || r <= 1.0 {
            return Err(StatsError::domain(
                "Geometric::from_decay_base",
                format!("decay base must be finite and > 1, got {r}"),
            ));
        }
        Ok(Geometric { r })
    }

    /// Create from the classical success probability `q ∈ (0, 1)`:
    /// `pmf(d) = (1-q)^{d-1} q`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `q` is outside `(0, 1)`.
    pub fn from_success_prob(q: f64) -> Result<Self> {
        if !(q.is_finite() && 0.0 < q && q < 1.0) {
            return Err(StatsError::domain(
                "Geometric::from_success_prob",
                format!("success probability must be in (0,1), got {q}"),
            ));
        }
        // (1-q)^{d-1} q = q · r^{1-d} with r = 1/(1-q).
        Ok(Geometric { r: 1.0 / (1.0 - q) })
    }

    /// The paper's decay base `r`.
    pub fn decay_base(&self) -> f64 {
        self.r
    }

    /// Equivalent success probability `q = 1 - 1/r`.
    pub fn success_prob(&self) -> f64 {
        1.0 - 1.0 / self.r
    }

    /// The unnormalized tail value `r^{1-d}` as written in Equation (5).
    pub fn unnormalized(&self, d: u64) -> f64 {
        debug_assert!(d >= 1);
        self.r.powf(1.0 - d as f64)
    }
}

impl DiscreteDistribution for Geometric {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.success_prob() * self.unnormalized(k)
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        // 1 - (1-q)^k = 1 - r^{-k}
        1.0 - self.r.powf(-(k as f64))
    }

    fn mean(&self) -> f64 {
        1.0 / self.success_prob()
    }

    fn variance(&self) -> f64 {
        let q = self.success_prob();
        (1.0 - q) / (q * q)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse CDF: d = ceil(ln(1-U) / ln(1-q)) = ceil(ln(U') / -ln r).
        let u: f64 = rng.gen::<f64>();
        // Guard u = 0 (ln → -inf) by nudging into (0, 1).
        let u = u.max(f64::MIN_POSITIVE);
        let d = (u.ln() / -self.r.ln()).ceil();
        (d.max(1.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_moments;
    use super::super::DiscreteDistribution;
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Geometric::from_decay_base(1.0).is_err());
        assert!(Geometric::from_decay_base(0.5).is_err());
        assert!(Geometric::from_decay_base(f64::NAN).is_err());
        assert!(Geometric::from_success_prob(0.0).is_err());
        assert!(Geometric::from_success_prob(1.0).is_err());
        assert!(Geometric::from_success_prob(0.5).is_ok());
    }

    #[test]
    fn parameterizations_agree() {
        let a = Geometric::from_decay_base(2.0).unwrap();
        let b = Geometric::from_success_prob(0.5).unwrap();
        assert!((a.decay_base() - b.decay_base()).abs() < 1e-14);
        for d in 1..10 {
            assert!((a.pmf(d) - b.pmf(d)).abs() < 1e-14);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for r in [1.2, 2.0, 5.0, 20.0] {
            let g = Geometric::from_decay_base(r).unwrap();
            let total: f64 = (1..2000).map(|d| g.pmf(d)).sum();
            assert!((total - 1.0).abs() < 1e-9, "r={r}");
        }
    }

    #[test]
    fn pmf_off_support() {
        let g = Geometric::from_decay_base(2.0).unwrap();
        assert_eq!(g.pmf(0), 0.0);
        assert_eq!(g.cdf(0), 0.0);
    }

    #[test]
    fn unnormalized_matches_paper_form() {
        // r^{1-d}: equals 1 at d = 1, decays by 1/r each step.
        let g = Geometric::from_decay_base(3.0).unwrap();
        assert_eq!(g.unnormalized(1), 1.0);
        assert!((g.unnormalized(2) - 1.0 / 3.0).abs() < 1e-14);
        assert!((g.unnormalized(4) - 1.0 / 27.0).abs() < 1e-14);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let g = Geometric::from_decay_base(1.7).unwrap();
        let mut acc = 0.0;
        for d in 1..50 {
            acc += g.pmf(d);
            assert!((g.cdf(d) - acc).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn sampler_moments() {
        check_moments(&Geometric::from_decay_base(2.0).unwrap(), 200_000, 71, 4.5);
        check_moments(&Geometric::from_decay_base(1.25).unwrap(), 200_000, 72, 4.5);
    }

    #[test]
    fn samples_are_at_least_one() {
        use crate::rng::Xoshiro256pp;
        let g = Geometric::from_decay_base(10.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 1);
        }
    }
}
