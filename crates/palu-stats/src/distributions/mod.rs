//! Exact discrete distributions used by the PALU model derivation.
//!
//! Section V of the paper builds the model from four distributions:
//!
//! * [`Poisson`] — sizes of the unattached stars
//!   (`Po(λ)` leaves per central node) and their thinned observation
//!   (`Bin(Po(λ), p) = Po(λp)`).
//! * [`Binomial`] — Erdős–Rényi edge thinning: a
//!   degree-`d` node of the underlying network has observed degree
//!   `Bin(d, p)`.
//! * [`Geometric`] — the Section VI one-parameter
//!   approximation `(Λ/d)^d ≈ r^{1-d}` swaps the Poisson for a geometric
//!   tail.
//! * [`Zeta`] — the discrete power law
//!   `d^{-α}/ζ(α)` describing the preferential-attachment core.
//!
//! All samplers are exact (no normal approximations) and deterministic
//! given an RNG, so simulated experiments are replayable.

/// Exact binomial sampling via inversion / BTPE-free splitting.
pub mod binomial;
/// Geometric distribution sampling and pmf.
pub mod geometric;
/// Lognormal sampling for leaf-degree multiplicities.
pub mod lognormal;
/// Poisson sampling for star-component sizes.
pub mod poisson;
/// Discrete power-law (zeta) sampling and pmf for the PA core.
pub mod powerlaw;

pub use binomial::Binomial;
pub use geometric::Geometric;
pub use lognormal::DiscretizedLogNormal;
pub use poisson::Poisson;
pub use powerlaw::{TruncatedZeta, Zeta};

use crate::rng::Rng;

/// Common interface for the discrete distributions in this module.
///
/// Support is a subset of the non-negative integers; `pmf` returns 0
/// outside the support rather than panicking.
pub trait DiscreteDistribution {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Natural log of the probability mass at `k` (`-inf` off-support).
    fn ln_pmf(&self, k: u64) -> f64 {
        self.pmf(k).ln()
    }

    /// Cumulative probability `P(X ≤ k)`.
    fn cdf(&self, k: u64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;

    /// Draw `n` samples into a fresh vector.
    fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Sum the pmf over `lo..=hi` (inclusive). Utility shared by tests and
/// the logarithmic-pooling comparisons in the core crate.
pub fn pmf_mass<D: DiscreteDistribution>(dist: &D, lo: u64, hi: u64) -> f64 {
    (lo..=hi).map(|k| dist.pmf(k)).sum()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for distribution tests: empirical moment and
    //! goodness-of-fit checks with generous-but-meaningful tolerances.

    use super::DiscreteDistribution;
    use crate::rng::Xoshiro256pp;

    /// Draw `n` samples and assert the empirical mean and variance are
    /// within `tol_sigmas` standard errors of the theoretical values.
    pub fn check_moments<D: DiscreteDistribution>(dist: &D, n: usize, seed: u64, tol_sigmas: f64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let samples = dist.sample_many(&mut rng, n);
        let nf = n as f64;
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / nf;
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (nf - 1.0);
        let se_mean = (dist.variance() / nf).sqrt();
        assert!(
            (mean - dist.mean()).abs() < tol_sigmas * se_mean,
            "empirical mean {mean} vs theoretical {} (se {se_mean})",
            dist.mean()
        );
        // Variance check is looser: the SE of the sample variance depends
        // on the fourth moment, which we bound crudely by 3·var²/n
        // (exact for the normal; heavy-tailed dists opt out).
        let se_var = (3.0 * dist.variance().powi(2) / nf).sqrt();
        assert!(
            (var - dist.variance()).abs() < tol_sigmas * se_var.max(1e-12),
            "empirical var {var} vs theoretical {}",
            dist.variance()
        );
    }

    /// Chi-squared-style check: empirical frequencies of each value in
    /// `0..=k_max` must match the pmf within `tol_sigmas` binomial
    /// standard errors.
    pub fn check_pmf_frequencies<D: DiscreteDistribution>(
        dist: &D,
        n: usize,
        k_max: u64,
        seed: u64,
        tol_sigmas: f64,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let samples = dist.sample_many(&mut rng, n);
        let mut counts = vec![0u64; k_max as usize + 1];
        for &s in &samples {
            if s <= k_max {
                counts[s as usize] += 1;
            }
        }
        for k in 0..=k_max {
            let p = dist.pmf(k);
            if p * (n as f64) < 20.0 {
                continue; // not enough expected mass for a z-test
            }
            let expected = p * n as f64;
            let se = (n as f64 * p * (1.0 - p)).sqrt();
            let observed = counts[k as usize] as f64;
            assert!(
                (observed - expected).abs() < tol_sigmas * se,
                "k={k}: observed {observed}, expected {expected} (se {se})"
            );
        }
    }
}
