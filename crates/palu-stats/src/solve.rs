//! Scalar root finding: bisection and Brent's method.
//!
//! Section IV-B of the paper estimates the Poisson scale `Λ` by
//! "numerically solving" the moment-ratio equation
//! `R = Λ + Λ²/(e^Λ − Λ − 1)`; these solvers provide that step (and the
//! `δ`/`r` inversions of the Zipf–Mandelbrot connection in Section VI).

use crate::error::StatsError;
use crate::Result;

/// Default convergence tolerance on the root's bracket width.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Default iteration budget for the bracketing solvers.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Find a root of `f` in `[a, b]` by bisection.
///
/// Requires `f(a)` and `f(b)` to have opposite signs (or one endpoint to
/// be an exact root). Converges unconditionally at one bit per
/// iteration.
///
/// # Errors
///
/// * [`StatsError::BadBracket`] if the bracket does not straddle a sign
///   change.
/// * [`StatsError::NoConvergence`] if the tolerance is not reached
///   within `max_iter` iterations.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(StatsError::BadBracket {
            routine: "bisect",
            a: lo,
            b: hi,
        });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || hi - lo < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(StatsError::NoConvergence {
        routine: "bisect",
        iterations: max_iter,
        residual: hi - lo,
    })
}

/// Find a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation + secant + bisection fallback).
///
/// Same bracketing requirement as [`bisect`], but typically an order of
/// magnitude fewer function evaluations on smooth problems.
///
/// # Errors
///
/// * [`StatsError::BadBracket`] if the bracket does not straddle a sign
///   change.
/// * [`StatsError::NoConvergence`] if the tolerance is not reached
///   within `max_iter` iterations.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let mut a = a;
    let mut b = b;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(StatsError::BadBracket {
            routine: "brent",
            a,
            b,
        });
    }
    // Ensure |f(b)| <= |f(a)| — b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a; // step used in the previous iteration
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && d.abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = b - c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "brent",
        iterations: max_iter,
        residual: (b - a).abs(),
    })
}

/// Expand a bracket geometrically around `[a, b]` until `f` changes
/// sign, then return the bracketing interval. Useful when only a rough
/// initial guess is known (e.g. for the `Λ` moment equation where the
/// scale of the answer depends on the data).
///
/// # Errors
///
/// Returns [`StatsError::BadBracket`] if no sign change is found within
/// `max_expansions` doublings.
pub fn expand_bracket<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    max_expansions: usize,
) -> Result<(f64, f64)> {
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let mut fhi = f(hi);
    for _ in 0..max_expansions {
        if flo.signum() != fhi.signum() || flo == 0.0 || fhi == 0.0 {
            return Ok((lo, hi));
        }
        let width = hi - lo;
        if flo.abs() < fhi.abs() {
            lo -= width;
            flo = f(lo);
        } else {
            hi += width;
            fhi = f(hi);
        }
    }
    Err(StatsError::BadBracket {
        routine: "expand_bracket",
        a: lo,
        b: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((root - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100);
        assert!(matches!(e, Err(StatsError::BadBracket { .. })));
    }

    #[test]
    fn bisect_handles_reversed_bracket() {
        let root = bisect(|x| x - 0.25, 1.0, 0.0, 1e-12, 100).unwrap();
        assert!((root - 0.25).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_roots_fast() {
        let mut evals = 0usize;
        let root = brent(
            |x| {
                evals += 1;
                x.powi(3) - 2.0 * x - 5.0
            },
            2.0,
            3.0,
            1e-13,
            100,
        )
        .unwrap();
        // Classic Brent test function; root ≈ 2.0945514815423265.
        assert!((root - 2.094_551_481_542_326_5).abs() < 1e-9);
        assert!(evals < 30, "brent used {evals} evaluations");
    }

    #[test]
    fn brent_transcendental() {
        // x e^x = 1 → x = W(1) ≈ 0.5671432904097838
        let root = brent(|x| x * x.exp() - 1.0, 0.0, 1.0, 1e-13, 100).unwrap();
        assert!((root - 0.567_143_290_409_783_8).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        let e = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100);
        assert!(matches!(e, Err(StatsError::BadBracket { .. })));
    }

    #[test]
    fn brent_solves_lambda_moment_equation() {
        // The paper's Λ equation: R = Λ + Λ²/(e^Λ − Λ − 1).
        // With Λ = 2 the RHS is 2 + 4/(e²−3) ≈ 2.91079…; recover Λ.
        let lam_true = 2.0f64;
        let r = lam_true + lam_true.powi(2) / (lam_true.exp() - lam_true - 1.0);
        let root = brent(
            |l: f64| l + l * l / (l.exp() - l - 1.0) - r,
            0.05,
            20.0,
            1e-12,
            200,
        )
        .unwrap();
        assert!((root - lam_true).abs() < 1e-9);
    }

    #[test]
    fn expand_bracket_grows_to_sign_change() {
        // Root at 100; start with a tiny bracket near 0.
        let (lo, hi) = expand_bracket(|x| x - 100.0, 0.0, 1.0, 60).unwrap();
        assert!(lo <= 100.0 && 100.0 <= hi);
        let root = brent(|x| x - 100.0, lo, hi, 1e-12, 200).unwrap();
        assert!((root - 100.0).abs() < 1e-9);
    }

    #[test]
    fn expand_bracket_gives_up() {
        let e = expand_bracket(|_| 1.0, 0.0, 1.0, 8);
        assert!(matches!(e, Err(StatsError::BadBracket { .. })));
    }
}
