//! Numerical and statistical substrate for the PALU network-traffic model.
//!
//! This crate implements, from scratch, every piece of numerical machinery
//! the paper *Hybrid Power-Law Models of Network Traffic* (Devlin, Kepner,
//! Luo, Meger, 2021) relies on:
//!
//! * [`special`] — the Riemann zeta function `ζ(α)` (the paper uses
//!   MATLAB's `zeta(x)`), the Hurwitz zeta function used by the modified
//!   Zipf–Mandelbrot normalization, and log-gamma/log-factorial helpers
//!   for Poisson terms such as `(λp)^d / d!`.
//! * [`distributions`] — exact discrete distributions used by the model's
//!   derivation (Section V): Poisson (star sizes), Binomial (edge
//!   thinning), Geometric (the Section VI approximation), and the discrete
//!   power law (zeta distribution) describing the preferential-attachment
//!   core.
//! * [`histogram`] and [`logbin`] — degree histograms and the binary
//!   logarithmic pooling (`d_i = 2^i`) producing the differential
//!   cumulative probabilities `D(d_i)` that every figure in the paper
//!   plots.
//! * [`summary`] — numerically stable mean/variance accumulation for the
//!   per-bin `D(d_i) ± σ(d_i)` statistics over consecutive windows.
//! * [`solve`], [`optimize`], [`regression`] — root finders, a
//!   Nelder–Mead simplex, golden-section search, and (weighted) linear
//!   regression used by the Section IV-B estimation pipeline and the
//!   Zipf–Mandelbrot fitter.
//! * [`ks`] — Kolmogorov–Smirnov distances for discrete data.
//! * [`mle`] — a Clauset–Shalizi–Newman single-exponent power-law MLE
//!   with KS-based `x_min` selection: the classical "webcrawl" baseline
//!   the paper contrasts its hybrid model against.
//! * [`rng`] — deterministic seeding utilities so every experiment in the
//!   reproduction is replayable.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Exact samplers for the distributions the PALU model composes.
pub mod distributions;
/// The shared error type for statistical routines.
pub mod error;
/// Dense integer histograms with tail accumulation.
pub mod histogram;
/// Kolmogorov–Smirnov statistics and bootstrapped p-values.
pub mod ks;
/// Logarithmic pooling of degree histograms (the paper's binning).
pub mod logbin;
/// Maximum-likelihood estimation for discrete power laws.
pub mod mle;
/// Likelihood-ratio and information-criterion model comparison.
pub mod model_select;
/// Derivative-free scalar/bivariate minimizers for fit objectives.
pub mod optimize;
/// Least-squares regression in log space.
pub mod regression;
/// Deterministic fit-restart ladder (perturb → profile → OLS fallback).
pub mod restart;
/// Deterministic from-scratch RNG (SplitMix64 + xoshiro256++).
pub mod rng;
/// Bracketing root solvers for implicit parameter equations.
pub mod solve;
/// Special functions (zeta, polygamma-free Hurwitz sums) used by the fits.
pub mod special;
/// Streaming summary statistics (moments, quantiles).
pub mod summary;

pub use error::StatsError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
