//! Numerically stable summary statistics.
//!
//! The paper reports, for each logarithmic bin `d_i`, "the corresponding
//! mean and standard deviation of `D_t(d_i)` over many different
//! consecutive values of t": every error bar in Figure 3 is one of
//! these. [`Welford`] provides single-pass mean/variance; [`BinStats`]
//! vectorizes it across bins.

use crate::error::StatsError;
use crate::logbin::DifferentialCumulative;

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// An accumulator holding `n` zero observations — the implicit
    /// contribution of windows that never reached a bin. Pushing `n`
    /// zeros into a fresh accumulator gives exactly this state (mean
    /// and m2 stay identically 0.0), so merging it is bit-equivalent
    /// to replaying those zeros.
    pub fn zeros(n: u64) -> Self {
        Welford {
            n,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    ///
    /// Merging an empty accumulator in either direction is an exact
    /// identity. Merging a single-observation accumulator is routed
    /// through [`Welford::push`], which performs the *same* floating-
    /// point operations in the same order as sequential accumulation —
    /// the property the parallel pipeline's window-ordered merge uses
    /// to stay bit-identical to the serial fold.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        if other.n == 1 {
            // `other` is exactly one observation of value `other.mean`
            // (push of x sets mean = x, m2 = 0). Replaying the push is
            // bitwise-identical to having accumulated it sequentially,
            // which the general Chan update below is not (its mean and
            // m2 roundings differ by up to 1 ULP).
            self.push(other.mean);
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Fixed size of the [`Welford::encode_into`] wire form: `n`,
    /// `mean` bits, `m2` bits, each 8 bytes little-endian.
    pub const ENCODED_LEN: usize = 24;

    /// Append the byte-exact little-endian wire form to `buf`.
    ///
    /// Floats are encoded as their raw IEEE-754 bit patterns
    /// ([`f64::to_bits`]), so the round trip through
    /// [`Welford::decode`] preserves every representable value bit for
    /// bit — including ±0.0, subnormals, and NaN payloads. This is the
    /// property the capture journal's crash-equivalence guarantee
    /// rests on: a replayed accumulator merges exactly like the
    /// original.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.n.to_le_bytes());
        buf.extend_from_slice(&self.mean.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.m2.to_bits().to_le_bytes());
    }

    /// Decode one accumulator from the front of `bytes`, returning it
    /// with the unconsumed remainder.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] when fewer than
    /// [`Welford::ENCODED_LEN`] bytes remain.
    pub fn decode(bytes: &[u8]) -> Result<(Welford, &[u8]), StatsError> {
        if bytes.len() < Self::ENCODED_LEN {
            return Err(StatsError::domain(
                "Welford::decode",
                "truncated input: fewer than 24 bytes",
            ));
        }
        let u = |at: usize| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(raw)
        };
        let w = Welford {
            n: u(0),
            mean: f64::from_bits(u(8)),
            m2: f64::from_bits(u(16)),
        };
        Ok((w, &bytes[Self::ENCODED_LEN..]))
    }
}

/// Per-bin mean/σ of pooled distributions over consecutive windows:
/// the paper's `D(d_i)` and `σ(d_i)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinStats {
    bins: Vec<Welford>,
    windows: u64,
}

impl BinStats {
    /// Create an empty per-bin accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one window's pooled distribution `D_t(d_i)`.
    ///
    /// Bins the window doesn't reach are counted as zero for that
    /// window — a window with no supernode contributes `D_t = 0` to the
    /// supernode bin, exactly as the measurement pipeline does.
    pub fn push(&mut self, window: &DifferentialCumulative) {
        if window.n_bins() > self.bins.len() {
            self.bins.resize(window.n_bins(), Welford::new());
        }
        self.windows += 1;
        for (i, w) in self.bins.iter_mut().enumerate() {
            // Replay implicit zeros for bins this accumulator has seen
            // before but the incoming window lacks (and vice versa, new
            // bins must back-fill zeros for earlier windows).
            w.push(window.value(i));
        }
        // Back-fill: a freshly created bin has only this window's value;
        // earlier windows implicitly contributed zeros.
        for w in &mut self.bins {
            while w.count() < self.windows {
                // Insert the missing leading zeros. Order does not
                // matter for mean/variance.
                w.push(0.0);
            }
        }
    }

    /// Merge another accumulator covering a *later*, disjoint run of
    /// windows: if `self` pooled windows `[0, n)` and `other` pooled
    /// `[n, n + m)`, the result pools `[0, n + m)`.
    ///
    /// Ragged bin counts are reconciled exactly as [`BinStats::push`]
    /// does: bins one side never reached contribute zeros, and a bin
    /// first observed by `other` back-fills `self`'s earlier windows
    /// with zeros *after* `other`'s values — the same value-then-zeros
    /// push order `push` produces. Because of that ordering, and the
    /// single-observation fast path in [`Welford::merge`], merging a
    /// sequence of single-window accumulators in window order is
    /// **bit-identical** to pushing the windows serially — the
    /// contract the parallel measurement pipeline is built on.
    pub fn merge(&mut self, other: &BinStats) {
        if other.windows == 0 {
            return;
        }
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), Welford::new());
        }
        self.windows += other.windows;
        for (i, w) in self.bins.iter_mut().enumerate() {
            match other.bins.get(i) {
                Some(o) => w.merge(o),
                // `other` never reached this bin: its windows each
                // contributed an implicit zero.
                None => w.merge(&Welford::zeros(other.windows)),
            }
            // Back-fill `self`'s leading zeros for bins `other`
            // introduced (after the merge, matching push's
            // value-then-zeros order bit for bit).
            while w.count() < self.windows {
                w.push(0.0);
            }
        }
    }

    /// Number of windows folded in.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Append the byte-exact little-endian wire form to `buf`: the
    /// window count, the bin count, then each bin's
    /// [`Welford::encode_into`] block in order.
    ///
    /// The encoding is *state*-exact, not merely value-approximate: a
    /// decoded accumulator merges through [`BinStats::merge`] with
    /// bitwise the same result as the original would have — the
    /// capture journal's crash-equivalence contract.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.windows.to_le_bytes());
        buf.extend_from_slice(&(self.bins.len() as u64).to_le_bytes());
        for w in &self.bins {
            w.encode_into(buf);
        }
    }

    /// Decode one accumulator from the front of `bytes`, returning it
    /// with the unconsumed remainder.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] when the header is truncated or the
    /// declared bin count extends past the available bytes (the
    /// declared length is validated *before* any allocation, so a
    /// corrupt count cannot drive an out-of-memory abort).
    pub fn decode(bytes: &[u8]) -> Result<(BinStats, &[u8]), StatsError> {
        if bytes.len() < 16 {
            return Err(StatsError::domain(
                "BinStats::decode",
                "truncated input: missing window/bin counts",
            ));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[..8]);
        let windows = u64::from_le_bytes(raw);
        raw.copy_from_slice(&bytes[8..16]);
        let n_bins = u64::from_le_bytes(raw);
        let rest = &bytes[16..];
        let need = (n_bins as u128) * Welford::ENCODED_LEN as u128;
        if need > rest.len() as u128 {
            return Err(StatsError::domain(
                "BinStats::decode",
                "declared bin count extends past the available bytes",
            ));
        }
        let n_bins = n_bins as usize;
        let mut bins = Vec::with_capacity(n_bins);
        let mut rest = rest;
        for _ in 0..n_bins {
            let (w, r) = Welford::decode(rest)?;
            bins.push(w);
            rest = r;
        }
        Ok((BinStats { bins, windows }, rest))
    }

    /// Number of bins tracked so far.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Approximate resident size in bytes: the bin vector's backing
    /// storage plus the struct header. Used by the pipeline's resource
    /// budget to account pooled state; an estimate, not an exact
    /// allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        (size_of::<BinStats>() + self.bins.capacity() * size_of::<Welford>()) as u64
    }

    /// Mean pooled distribution `D(d_i)` across windows.
    pub fn mean_distribution(&self) -> DifferentialCumulative {
        DifferentialCumulative::from_values(self.bins.iter().map(|w| w.mean()).collect())
    }

    /// Per-bin standard deviations `σ(d_i)`.
    pub fn std_devs(&self) -> Vec<f64> {
        self.bins.iter().map(|w| w.std_dev()).collect()
    }

    /// Per-bin inverse-variance weights for weighted fitting; bins with
    /// zero variance (constant across windows) get the supplied
    /// `default_weight`.
    ///
    /// When *every* bin has zero variance (a single window, or
    /// bit-identical windows) there is no variance information at all:
    /// the weights degenerate to uniform `1.0` rather than
    /// `default_weight`, so a weighted fit coincides exactly with the
    /// unweighted one instead of silently scaling its objective.
    pub fn inverse_variance_weights(&self, default_weight: f64) -> Vec<f64> {
        if self.bins.iter().all(|w| w.variance() <= 0.0) {
            return vec![1.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|w| {
                let v = w.variance();
                if v > 0.0 {
                    1.0 / v
                } else {
                    default_weight
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
        assert!((w.std_dev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_edge_cases() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0); // single observation
        assert_eq!(w.variance_population(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-12);
        // Merging with an empty accumulator is identity in both directions.
        let mut c = Welford::new();
        c.merge(&seq);
        assert!((c.mean() - seq.mean()).abs() < 1e-15);
        let mut d = seq;
        d.merge(&Welford::new());
        assert!((d.mean() - seq.mean()).abs() < 1e-15);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation scenario.
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.push(x);
        }
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((w.variance() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn bin_stats_means_and_sigmas() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        s.push(&DifferentialCumulative::from_values(vec![0.7, 0.3]));
        assert_eq!(s.windows(), 2);
        assert_eq!(s.n_bins(), 2);
        let mean = s.mean_distribution();
        assert!((mean.value(0) - 0.6).abs() < 1e-12);
        assert!((mean.value(1) - 0.4).abs() < 1e-12);
        let sd = s.std_devs();
        // sample std dev of {0.5, 0.7} is 0.1414…
        assert!((sd[0] - (0.02f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bin_stats_ragged_windows_backfill_zeros() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![1.0]));
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        // Bin 1 saw values {0 (implicit), 0.5}.
        let mean = s.mean_distribution();
        assert!((mean.value(1) - 0.25).abs() < 1e-12);
        // Every bin accumulator must have seen both windows.
        assert_eq!(s.n_bins(), 2);
        // And the reverse order: wide window first, then a short one.
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        s.push(&DifferentialCumulative::from_values(vec![1.0]));
        let mean = s.mean_distribution();
        assert!((mean.value(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inverse_variance_weights() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.1]));
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.3]));
        let w = s.inverse_variance_weights(123.0);
        assert_eq!(w[0], 123.0); // constant bin → default weight
        assert!((w[1] - 1.0 / 0.02).abs() < 1e-9);
    }

    #[test]
    fn inverse_variance_weights_degenerate_all_constant() {
        // A single window (or bit-identical windows) carries no
        // variance information: uniform unit weights, never the
        // default weight.
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.3, 0.2]));
        assert_eq!(s.inverse_variance_weights(123.0), vec![1.0, 1.0, 1.0]);
        let same = DifferentialCumulative::from_values(vec![0.6, 0.4]);
        let mut s = BinStats::new();
        s.push(&same);
        s.push(&same);
        assert_eq!(s.inverse_variance_weights(9.0), vec![1.0, 1.0]);
    }

    #[test]
    fn welford_merge_empty_is_exact_identity() {
        // Empty merge in either direction preserves mean/variance
        // *exactly* (bitwise), not just approximately.
        let mut w = Welford::new();
        for x in [0.1, 0.7, 0.30000000000000004, 1e9 + 4.0] {
            w.push(x);
        }
        let reference = w;
        let mut left = Welford::new();
        left.merge(&reference);
        assert_eq!(left.mean().to_bits(), reference.mean().to_bits());
        assert_eq!(left.variance().to_bits(), reference.variance().to_bits());
        assert_eq!(left.count(), reference.count());
        let mut right = reference;
        right.merge(&Welford::new());
        assert_eq!(right.mean().to_bits(), reference.mean().to_bits());
        assert_eq!(right.variance().to_bits(), reference.variance().to_bits());
        assert_eq!(right.count(), reference.count());
    }

    #[test]
    fn welford_merge_three_shards_exact_for_integer_inputs() {
        // ≥3 shards of integer-valued observations: the merged result
        // matches the serial fold within 0 ULP (exact dyadic means).
        let xs: [f64; 6] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let mut serial = Welford::new();
        for &x in &xs {
            serial.push(x);
        }
        let mut merged = Welford::new();
        for shard_xs in xs.chunks(2) {
            let mut shard = Welford::new();
            for &x in shard_xs {
                shard.push(x);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.count(), serial.count());
        assert_eq!(merged.mean().to_bits(), serial.mean().to_bits());
        assert_eq!(merged.variance().to_bits(), serial.variance().to_bits());
    }

    #[test]
    fn welford_merge_single_observation_shards_match_push_bitwise() {
        // The n == 1 fast path: merging single-observation shards in
        // order is the same float-op sequence as pushing the values —
        // bit-identical even for awkward non-dyadic values.
        let xs = [0.1, 0.3, 1.0 / 3.0, 0.7, 2.0f64.sqrt(), 1e-12];
        let mut serial = Welford::new();
        let mut merged = Welford::new();
        for &x in &xs {
            serial.push(x);
            let mut one = Welford::new();
            one.push(x);
            merged.merge(&one);
        }
        assert_eq!(merged.mean().to_bits(), serial.mean().to_bits());
        assert_eq!(merged.variance().to_bits(), serial.variance().to_bits());
        assert_eq!(merged.count(), serial.count());
    }

    #[test]
    fn welford_zeros_equals_pushed_zeros() {
        let mut pushed = Welford::new();
        for _ in 0..5 {
            pushed.push(0.0);
        }
        assert_eq!(Welford::zeros(5), pushed);
        assert_eq!(Welford::zeros(0), Welford::new());
    }

    #[test]
    fn bin_stats_merge_of_single_window_shards_is_bitwise_serial() {
        // Ragged windows (bin counts grow and shrink) merged one
        // window at a time reproduce the serial push fold exactly —
        // the parallel pipeline's determinism contract.
        let windows = [
            vec![0.5, 0.3, 0.2],
            vec![1.0],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.9, 0.1],
        ];
        let mut serial = BinStats::new();
        let mut merged = BinStats::new();
        for w in &windows {
            let d = DifferentialCumulative::from_values(w.clone());
            serial.push(&d);
            let mut one = BinStats::new();
            one.push(&d);
            merged.merge(&one);
        }
        assert_eq!(merged.windows(), serial.windows());
        assert_eq!(merged.n_bins(), serial.n_bins());
        let (ms, ss) = (merged.mean_distribution(), serial.mean_distribution());
        for i in 0..serial.n_bins() {
            assert_eq!(ms.value(i).to_bits(), ss.value(i).to_bits(), "mean bin {i}");
        }
        let (md, sd) = (merged.std_devs(), serial.std_devs());
        for i in 0..serial.n_bins() {
            assert_eq!(md[i].to_bits(), sd[i].to_bits(), "sigma bin {i}");
        }
    }

    #[test]
    fn bin_stats_merge_empty_either_direction() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        s.push(&DifferentialCumulative::from_values(vec![0.7, 0.3]));
        // Merging an empty accumulator changes nothing.
        let before = (s.windows(), s.mean_distribution(), s.std_devs());
        s.merge(&BinStats::new());
        assert_eq!(s.windows(), before.0);
        assert_eq!(s.mean_distribution(), before.1);
        assert_eq!(s.std_devs(), before.2);
        // Merging *into* an empty accumulator copies the other side.
        let mut empty = BinStats::new();
        empty.merge(&s);
        assert_eq!(empty.windows(), s.windows());
        assert_eq!(empty.mean_distribution(), s.mean_distribution());
        assert_eq!(empty.std_devs(), s.std_devs());
    }

    #[test]
    fn bin_stats_merge_multi_window_shards_close_to_serial() {
        // Multi-window shards go through the Chan update: not bitwise,
        // but must agree to fp accuracy and count windows correctly.
        let values: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.5 + 0.01 * i as f64, 0.5 - 0.01 * i as f64])
            .collect();
        let mut serial = BinStats::new();
        for v in &values {
            serial.push(&DifferentialCumulative::from_values(v.clone()));
        }
        let mut merged = BinStats::new();
        for shard_vs in values.chunks(3) {
            let mut shard = BinStats::new();
            for v in shard_vs {
                shard.push(&DifferentialCumulative::from_values(v.clone()));
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.windows(), 9);
        let (ms, ss) = (merged.mean_distribution(), serial.mean_distribution());
        for i in 0..serial.n_bins() {
            assert!((ms.value(i) - ss.value(i)).abs() < 1e-14, "mean bin {i}");
        }
        let (md, sd) = (merged.std_devs(), serial.std_devs());
        for i in 0..serial.n_bins() {
            assert!((md[i] - sd[i]).abs() < 1e-14, "sigma bin {i}");
        }
    }
}
