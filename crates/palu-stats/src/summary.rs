//! Numerically stable summary statistics.
//!
//! The paper reports, for each logarithmic bin `d_i`, "the corresponding
//! mean and standard deviation of `D_t(d_i)` over many different
//! consecutive values of t": every error bar in Figure 3 is one of
//! these. [`Welford`] provides single-pass mean/variance; [`BinStats`]
//! vectorizes it across bins.

use crate::logbin::DifferentialCumulative;

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Per-bin mean/σ of pooled distributions over consecutive windows:
/// the paper's `D(d_i)` and `σ(d_i)`.
#[derive(Debug, Clone, Default)]
pub struct BinStats {
    bins: Vec<Welford>,
    windows: u64,
}

impl BinStats {
    /// Create an empty per-bin accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one window's pooled distribution `D_t(d_i)`.
    ///
    /// Bins the window doesn't reach are counted as zero for that
    /// window — a window with no supernode contributes `D_t = 0` to the
    /// supernode bin, exactly as the measurement pipeline does.
    pub fn push(&mut self, window: &DifferentialCumulative) {
        if window.n_bins() > self.bins.len() {
            self.bins.resize(window.n_bins(), Welford::new());
        }
        self.windows += 1;
        for (i, w) in self.bins.iter_mut().enumerate() {
            // Replay implicit zeros for bins this accumulator has seen
            // before but the incoming window lacks (and vice versa, new
            // bins must back-fill zeros for earlier windows).
            w.push(window.value(i));
        }
        // Back-fill: a freshly created bin has only this window's value;
        // earlier windows implicitly contributed zeros.
        for w in &mut self.bins {
            while w.count() < self.windows {
                // Insert the missing leading zeros. Order does not
                // matter for mean/variance.
                w.push(0.0);
            }
        }
    }

    /// Number of windows folded in.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of bins tracked so far.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Mean pooled distribution `D(d_i)` across windows.
    pub fn mean_distribution(&self) -> DifferentialCumulative {
        DifferentialCumulative::from_values(self.bins.iter().map(|w| w.mean()).collect())
    }

    /// Per-bin standard deviations `σ(d_i)`.
    pub fn std_devs(&self) -> Vec<f64> {
        self.bins.iter().map(|w| w.std_dev()).collect()
    }

    /// Per-bin inverse-variance weights for weighted fitting; bins with
    /// zero variance (constant across windows) get the supplied
    /// `default_weight`.
    pub fn inverse_variance_weights(&self, default_weight: f64) -> Vec<f64> {
        self.bins
            .iter()
            .map(|w| {
                let v = w.variance();
                if v > 0.0 {
                    1.0 / v
                } else {
                    default_weight
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
        assert!((w.std_dev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_edge_cases() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0); // single observation
        assert_eq!(w.variance_population(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-12);
        // Merging with an empty accumulator is identity in both directions.
        let mut c = Welford::new();
        c.merge(&seq);
        assert!((c.mean() - seq.mean()).abs() < 1e-15);
        let mut d = seq;
        d.merge(&Welford::new());
        assert!((d.mean() - seq.mean()).abs() < 1e-15);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation scenario.
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.push(x);
        }
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((w.variance() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn bin_stats_means_and_sigmas() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        s.push(&DifferentialCumulative::from_values(vec![0.7, 0.3]));
        assert_eq!(s.windows(), 2);
        assert_eq!(s.n_bins(), 2);
        let mean = s.mean_distribution();
        assert!((mean.value(0) - 0.6).abs() < 1e-12);
        assert!((mean.value(1) - 0.4).abs() < 1e-12);
        let sd = s.std_devs();
        // sample std dev of {0.5, 0.7} is 0.1414…
        assert!((sd[0] - (0.02f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bin_stats_ragged_windows_backfill_zeros() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![1.0]));
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        // Bin 1 saw values {0 (implicit), 0.5}.
        let mean = s.mean_distribution();
        assert!((mean.value(1) - 0.25).abs() < 1e-12);
        // Every bin accumulator must have seen both windows.
        assert_eq!(s.n_bins(), 2);
        // And the reverse order: wide window first, then a short one.
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.5]));
        s.push(&DifferentialCumulative::from_values(vec![1.0]));
        let mean = s.mean_distribution();
        assert!((mean.value(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inverse_variance_weights() {
        let mut s = BinStats::new();
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.1]));
        s.push(&DifferentialCumulative::from_values(vec![0.5, 0.3]));
        let w = s.inverse_variance_weights(123.0);
        assert_eq!(w[0], 123.0); // constant bin → default weight
        assert!((w[1] - 1.0 / 0.02).abs() < 1e-9);
    }
}
