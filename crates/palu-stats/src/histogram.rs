//! Sparse degree histograms `n_t(d)`.
//!
//! Section II of the paper turns every network quantity computed from a
//! traffic matrix `A_t` into a histogram `n_t(d)` with probability
//! `p_t(d) = n_t(d) / Σ_d n_t(d)` and cumulative `P_t(d)`. Degrees in
//! Internet traffic span six orders of magnitude with most mass at
//! `d = 1`, so the histogram is stored sparsely (degree → count).

use crate::rng::Rng;
use std::collections::BTreeMap;

/// Sparse histogram over positive integer degrees (counts).
///
/// Degree 0 entries are permitted (the model reasons about invisible
/// isolated nodes) but all probability accessors treat the histogram's
/// recorded support as-is — callers that exclude degree 0 simply never
/// insert it.
///
/// # Examples
///
/// ```
/// use palu_stats::histogram::DegreeHistogram;
/// let h = DegreeHistogram::from_degrees([1, 1, 1, 2, 5]);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.count(1), 3);
/// assert_eq!(h.d_max(), Some(5));
/// // The paper's D(d = 1): fraction of single-connection nodes.
/// assert!((h.fraction_degree_one() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl DegreeHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a histogram from an iterator of observed degrees.
    pub fn from_degrees<I: IntoIterator<Item = u64>>(degrees: I) -> Self {
        let mut h = Self::new();
        for d in degrees {
            h.increment(d, 1);
        }
        h
    }

    /// Build a histogram from a **non-decreasing** slice of degrees.
    ///
    /// Fast path for callers that already hold sorted degrees (the
    /// window pipeline produces them as a by-product of sort-based
    /// degree accumulation): equal degrees are run-length collapsed so
    /// the B-tree sees one insert per *distinct* degree instead of one
    /// per observation. Produces a histogram identical to
    /// [`DegreeHistogram::from_degrees`] on the same multiset.
    ///
    /// Ordering is the caller's contract; it is checked with a debug
    /// assertion only.
    pub fn from_sorted_degrees(degrees: &[u64]) -> Self {
        debug_assert!(
            degrees
                .iter()
                .zip(degrees.iter().skip(1))
                .all(|(a, b)| a <= b),
            "from_sorted_degrees requires non-decreasing input"
        );
        let mut h = Self::new();
        let mut iter = degrees.iter().copied();
        if let Some(first) = iter.next() {
            let mut cur = first;
            let mut run = 1u64;
            for d in iter {
                if d == cur {
                    run += 1;
                } else {
                    h.counts.insert(cur, run);
                    h.total += run;
                    cur = d;
                    run = 1;
                }
            }
            h.counts.insert(cur, run);
            h.total += run;
        }
        h
    }

    /// Build from explicit `(degree, count)` pairs, accumulating
    /// duplicates.
    pub fn from_counts<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        let mut h = Self::new();
        for (d, c) in pairs {
            h.increment(d, c);
        }
        h
    }

    /// Add `count` observations of degree `d`.
    pub fn increment(&mut self, d: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(d).or_insert(0) += count;
        self.total += count;
    }

    /// Number of observations of exactly degree `d` — the paper's
    /// `n_t(d)`.
    pub fn count(&self, d: u64) -> u64 {
        self.counts.get(&d).copied().unwrap_or(0)
    }

    /// Total number of observations `Σ_d n_t(d)`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct degrees with nonzero count.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Approximate resident size in bytes, modelling each B-tree entry
    /// at 48 bytes (key + value + amortized node overhead). Used by the
    /// pipeline's resource budget to account retained histograms; an
    /// estimate, not an exact allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        const BTREE_ENTRY_BYTES: u64 = 48;
        size_of::<DegreeHistogram>() as u64 + self.counts.len() as u64 * BTREE_ENTRY_BYTES
    }

    /// Largest degree with a nonzero count — the paper's supernode
    /// degree `d_max = argmax(D(d) > 0)` (Equation 1). `None` if empty.
    pub fn d_max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observed degree. `None` if empty.
    pub fn d_min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Empirical probability `p_t(d) = n_t(d) / total`; 0 for an empty
    /// histogram.
    pub fn probability(&self, d: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(d) as f64 / self.total as f64
        }
    }

    /// Empirical cumulative probability `P_t(d) = Σ_{i≤d} p_t(i)`.
    pub fn cumulative(&self, d: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let acc: u64 = self.counts.range(..=d).map(|(_, &c)| c).sum();
        acc as f64 / self.total as f64
    }

    /// Iterate `(degree, count)` pairs in increasing degree order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Iterate `(degree, empirical probability)` pairs.
    pub fn probabilities(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let total = self.total as f64;
        self.counts
            .iter()
            .map(move |(&d, &c)| (d, c as f64 / total))
    }

    /// Merge another histogram into this one (bin-wise count addition).
    pub fn merge(&mut self, other: &DegreeHistogram) {
        for (&d, &c) in &other.counts {
            self.increment(d, c);
        }
    }

    /// Mean degree `Σ d·n(d) / Σ n(d)`; 0 for an empty histogram.
    pub fn mean_degree(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self.counts.iter().map(|(&d, &c)| d as f64 * c as f64).sum();
        weighted / self.total as f64
    }

    /// Sum of `d·n(d)` — for degree histograms of a graph this is twice
    /// the edge count (or the packet count for weighted quantities).
    pub fn degree_sum(&self) -> u64 {
        self.counts.iter().map(|(&d, &c)| d * c).sum()
    }

    /// Fraction of observations at degree exactly 1 — the paper's
    /// `D(d=1)`, "the fraction of nodes with only one connection".
    pub fn fraction_degree_one(&self) -> f64 {
        self.probability(1)
    }

    /// One multinomial bootstrap resample: draw `total()` observations
    /// with replacement from this histogram's empirical distribution.
    /// The standard resampling step behind every bootstrap confidence
    /// interval in the workspace.
    pub fn resample<R: Rng + ?Sized>(&self, rng: &mut R) -> DegreeHistogram {
        if self.total() == 0 {
            return DegreeHistogram::new();
        }
        let support: Vec<(u64, u64)> = self.iter().collect();
        let mut cum = Vec::with_capacity(support.len());
        let mut acc = 0u64;
        for &(_, c) in &support {
            acc += c;
            cum.push(acc);
        }
        let mut out = DegreeHistogram::new();
        for _ in 0..self.total() {
            let x = rng.gen_range(0..self.total());
            let idx = cum.partition_point(|&c| c <= x);
            out.increment(support[idx].0, 1);
        }
        out
    }
}

impl FromIterator<u64> for DegreeHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_degrees(iter)
    }
}

impl<'a> IntoIterator for &'a DegreeHistogram {
    type Item = (u64, u64);
    type IntoIter = Box<dyn Iterator<Item = (u64, u64)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DegreeHistogram {
        // degrees: 1,1,1,2,2,3,10
        DegreeHistogram::from_degrees([1, 1, 1, 2, 2, 3, 10])
    }

    #[test]
    fn counts_and_total() {
        let h = sample();
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(10), 1);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.total(), 7);
        assert_eq!(h.support_size(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = DegreeHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.d_max(), None);
        assert_eq!(h.d_min(), None);
        assert_eq!(h.probability(1), 0.0);
        assert_eq!(h.cumulative(100), 0.0);
        assert_eq!(h.mean_degree(), 0.0);
    }

    #[test]
    fn zero_count_increment_is_noop() {
        let mut h = DegreeHistogram::new();
        h.increment(5, 0);
        assert!(h.is_empty());
        assert_eq!(h.support_size(), 0);
    }

    #[test]
    fn extrema() {
        let h = sample();
        assert_eq!(h.d_max(), Some(10));
        assert_eq!(h.d_min(), Some(1));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let h = sample();
        let total: f64 = h.probabilities().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((h.probability(1) - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.fraction_degree_one() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone_and_correct() {
        let h = sample();
        assert!((h.cumulative(1) - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.cumulative(2) - 5.0 / 7.0).abs() < 1e-12);
        assert!((h.cumulative(3) - 6.0 / 7.0).abs() < 1e-12);
        assert!((h.cumulative(9) - 6.0 / 7.0).abs() < 1e-12);
        assert!((h.cumulative(10) - 1.0).abs() < 1e-12);
        assert!((h.cumulative(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DegreeHistogram::from_degrees([1, 2]);
        let b = DegreeHistogram::from_degrees([2, 3]);
        a.merge(&b);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn from_counts_accumulates_duplicates() {
        let h = DegreeHistogram::from_counts([(1, 2), (1, 3), (7, 1)]);
        assert_eq!(h.count(1), 5);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn mean_and_degree_sum() {
        let h = sample();
        assert_eq!(h.degree_sum(), 3 + 4 + 3 + 10);
        assert!((h.mean_degree() - 20.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn iter_is_sorted() {
        let h = DegreeHistogram::from_degrees([10, 1, 5, 5, 2]);
        let degrees: Vec<u64> = h.iter().map(|(d, _)| d).collect();
        assert_eq!(degrees, vec![1, 2, 5, 10]);
    }

    #[test]
    fn resample_preserves_total_and_support() {
        use crate::rng::Xoshiro256pp;
        let h = DegreeHistogram::from_counts([(1, 500), (2, 300), (7, 200)]);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let b = h.resample(&mut rng);
        assert_eq!(b.total(), h.total());
        // Resampled degrees come from the original support.
        for (d, _) in b.iter() {
            assert!(h.count(d) > 0, "alien degree {d}");
        }
        // Counts concentrate near the originals (SE ≈ √(n·p·q) ≈ 15).
        assert!((b.count(1) as i64 - 500).unsigned_abs() < 80);
        // Resampling an empty histogram is a no-op.
        let e = DegreeHistogram::new().resample(&mut rng);
        assert!(e.is_empty());
    }

    #[test]
    fn from_sorted_degrees_matches_from_degrees() {
        let sorted = [0u64, 1, 1, 1, 2, 2, 3, 10, 10, 10, 10];
        let fast = DegreeHistogram::from_sorted_degrees(&sorted);
        let slow = DegreeHistogram::from_degrees(sorted);
        assert_eq!(fast, slow);
        assert_eq!(fast.total(), 11);
        assert_eq!(fast.count(10), 4);
        assert_eq!(fast.count(0), 1);
        assert!(DegreeHistogram::from_sorted_degrees(&[]).is_empty());
        let single = DegreeHistogram::from_sorted_degrees(&[7]);
        assert_eq!(single.count(7), 1);
        assert_eq!(single.total(), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    #[cfg(debug_assertions)]
    fn from_sorted_degrees_asserts_ordering_in_debug() {
        let _ = DegreeHistogram::from_sorted_degrees(&[3, 1, 2]);
    }

    #[test]
    fn collect_from_iterator() {
        let h: DegreeHistogram = [1u64, 1, 4].into_iter().collect();
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 1);
    }
}
