//! Derivative-free minimization: golden-section, grid refinement, and
//! Nelder–Mead simplex.
//!
//! The Zipf–Mandelbrot fitter (Section II-B) minimizes the squared
//! difference between observed and model differential cumulative
//! distributions over `(α, δ)` — a smooth 2-D problem solved here by a
//! coarse grid scan (global) refined with Nelder–Mead (local). The
//! Section VI curve-family alignment fits the single decay parameter
//! `r` with golden-section search.

use crate::error::StatsError;
use crate::Result;

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Min1d {
    /// Argmin.
    pub x: f64,
    /// Minimum objective value.
    pub f: f64,
    /// Function evaluations used.
    pub evals: usize,
    /// Whether the bracket shrank below `tol` (rather than the
    /// iteration budget stopping the search).
    pub converged: bool,
}

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// # Errors
///
/// Returns [`StatsError::BadBracket`] if `a >= b`.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Min1d> {
    // NaN-safe bracket check: `!(a < b)` also rejects NaN endpoints.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(a < b) {
        return Err(StatsError::BadBracket {
            routine: "golden_section",
            a,
            b,
        });
    }
    let inv_phi = (5f64.sqrt() - 1.0) / 2.0; // 1/φ ≈ 0.618
    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - inv_phi * (hi - lo);
    let mut x2 = lo + inv_phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2;
    for _ in 0..max_iter {
        if hi - lo < tol {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - inv_phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + inv_phi * (hi - lo);
            f2 = f(x2);
        }
        evals += 1;
    }
    let (x, fx) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
    Ok(Min1d {
        x,
        f: fx,
        evals,
        converged: hi - lo < tol,
    })
}

/// Uniform grid scan over a rectangle, returning the best grid point.
/// Used as the global stage before local refinement; robust to the
/// multi-modality that appears when fitting heavy-tailed data.
pub fn grid_search_2d<F: FnMut(f64, f64) -> f64>(
    mut f: F,
    x_range: (f64, f64),
    y_range: (f64, f64),
    nx: usize,
    ny: usize,
) -> (f64, f64, f64) {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2 points per axis");
    let mut best = (x_range.0, y_range.0, f64::INFINITY);
    for i in 0..nx {
        let x = x_range.0 + (x_range.1 - x_range.0) * i as f64 / (nx - 1) as f64;
        for j in 0..ny {
            let y = y_range.0 + (y_range.1 - y_range.0) * j as f64 / (ny - 1) as f64;
            let v = f(x, y);
            if v < best.2 {
                best = (x, y, v);
            }
        }
    }
    best
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex's diameter falls below this.
    pub x_tol: f64,
    /// Initial simplex edge length, per coordinate, as a fraction of
    /// `max(|x_0|, 1)`.
    pub initial_step: f64,
    /// When set, exhausting `max_evals` without meeting a tolerance
    /// criterion is a hard [`StatsError::NoConvergence`] error instead
    /// of an `Ok` result with `converged == false`. The fit-restart
    /// ladder uses this to trigger its fallback rungs.
    pub require_convergence: bool,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
            require_convergence: false,
        }
    }
}

/// Result of a Nelder–Mead minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct MinNd {
    /// Argmin.
    pub x: Vec<f64>,
    /// Minimum objective value.
    pub f: f64,
    /// Function evaluations used.
    pub evals: usize,
    /// Whether a tolerance criterion (rather than the evaluation budget)
    /// stopped the search.
    pub converged: bool,
}

/// Nelder–Mead downhill simplex minimization of `f` from `x0`.
///
/// Standard coefficients (reflection 1, expansion 2, contraction ½,
/// shrink ½). The objective may return `INFINITY` to encode constraint
/// violations — the simplex simply avoids those regions.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `x0` is empty, and — only
/// when `opts.require_convergence` is set — [`StatsError::NoConvergence`]
/// if the evaluation budget runs out before a tolerance criterion is
/// met.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> Result<MinNd> {
    let n = x0.len();
    if n == 0 {
        return Err(StatsError::EmptyInput {
            routine: "nelder_mead",
        });
    }
    // Build initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = opts.initial_step * v[i].abs().max(1.0);
        v[i] += step;
        simplex.push(v);
    }
    let mut fvals: Vec<f64> = simplex.iter().map(|v| f(v)).collect();
    let mut evals = n + 1;

    let centroid = |simplex: &[Vec<f64>], exclude: usize| -> Vec<f64> {
        let mut c = vec![0.0; n];
        for (i, v) in simplex.iter().enumerate() {
            if i == exclude {
                continue;
            }
            for (cj, vj) in c.iter_mut().zip(v) {
                *cj += vj;
            }
        }
        for cj in &mut c {
            *cj /= n as f64;
        }
        c
    };

    let mut converged = false;
    while evals < opts.max_evals {
        // Order the simplex: best first, worst last.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| {
            fvals[i]
                .partial_cmp(&fvals[j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence tests.
        let f_spread = fvals[worst] - fvals[best];
        let x_spread = simplex
            .iter()
            .flat_map(|v| v.iter().zip(&simplex[best]).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if f_spread.abs() < opts.f_tol || x_spread < opts.x_tol {
            converged = true;
            break;
        }

        let c = centroid(&simplex, worst);
        // Reflection.
        let xr: Vec<f64> = c
            .iter()
            .zip(&simplex[worst])
            .map(|(cj, wj)| cj + (cj - wj))
            .collect();
        let fr = f(&xr);
        evals += 1;

        if fr < fvals[best] {
            // Expansion.
            let xe: Vec<f64> = c
                .iter()
                .zip(&simplex[worst])
                .map(|(cj, wj)| cj + 2.0 * (cj - wj))
                .collect();
            let fe = f(&xe);
            evals += 1;
            if fe < fr {
                simplex[worst] = xe;
                fvals[worst] = fe;
            } else {
                simplex[worst] = xr;
                fvals[worst] = fr;
            }
        } else if fr < fvals[second_worst] {
            simplex[worst] = xr;
            fvals[worst] = fr;
        } else {
            // Contraction (outside if reflected point improved on the
            // worst, inside otherwise).
            let towards: &[f64] = if fr < fvals[worst] {
                &xr
            } else {
                &simplex[worst]
            };
            let xc: Vec<f64> = c
                .iter()
                .zip(towards)
                .map(|(cj, tj)| cj + 0.5 * (tj - cj))
                .collect();
            let fc = f(&xc);
            evals += 1;
            if fc < fvals[worst].min(fr) {
                simplex[worst] = xc;
                fvals[worst] = fc;
            } else {
                // Shrink towards the best vertex.
                let best_v = simplex[best].clone();
                for (i, v) in simplex.iter_mut().enumerate() {
                    if i == best {
                        continue;
                    }
                    for (vj, bj) in v.iter_mut().zip(&best_v) {
                        *vj = bj + 0.5 * (*vj - bj);
                    }
                    fvals[i] = f(v);
                    evals += 1;
                }
            }
        }
    }

    if !converged && opts.require_convergence {
        let spread = fvals.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - fvals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        return Err(StatsError::NoConvergence {
            routine: "nelder_mead",
            iterations: evals,
            residual: spread,
        });
    }
    // Plain fold, not `min_by(..).expect(..)`: ties and NaN both keep
    // the earlier vertex, matching the comparator this replaces.
    let mut best_idx = 0;
    for i in 1..=n {
        if fvals[i] < fvals[best_idx] {
            best_idx = i;
        }
    }
    Ok(MinNd {
        x: simplex[best_idx].clone(),
        f: fvals[best_idx],
        evals,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section(|x| (x - 1.5).powi(2) + 2.0, -10.0, 10.0, 1e-10, 200).unwrap();
        assert!((m.x - 1.5).abs() < 1e-7);
        assert!((m.f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_asymmetric() {
        // min of x^4 - 3x at x = (3/4)^{1/3}
        let expected = (0.75f64).powf(1.0 / 3.0);
        let m = golden_section(|x| x.powi(4) - 3.0 * x, 0.0, 2.0, 1e-12, 300).unwrap();
        assert!((m.x - expected).abs() < 1e-6);
    }

    #[test]
    fn golden_section_rejects_empty_interval() {
        assert!(golden_section(|x| x, 1.0, 1.0, 1e-9, 10).is_err());
        assert!(golden_section(|x| x, 2.0, 1.0, 1e-9, 10).is_err());
    }

    #[test]
    fn grid_search_locates_basin() {
        let (x, y, v) = grid_search_2d(
            |x, y| (x - 0.3).powi(2) + (y + 0.7).powi(2),
            (-1.0, 1.0),
            (-1.0, 1.0),
            21,
            21,
        );
        assert!((x - 0.3).abs() < 0.1);
        assert!((y + 0.7).abs() < 0.1);
        assert!(v < 0.02);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |v: &[f64]| {
            let (x, y) = (v[0], v[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        };
        let opts = NelderMeadOptions {
            max_evals: 5000,
            ..Default::default()
        };
        let m = nelder_mead(rosen, &[-1.2, 1.0], &opts).unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "x = {:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-4);
        assert!(m.f < 1e-7);
    }

    #[test]
    fn nelder_mead_handles_infinite_barrier() {
        // Constrained: minimize (x−2)² subject to x ≥ 0 via ∞ barrier.
        let m = nelder_mead(
            |v| {
                if v[0] < 0.0 {
                    f64::INFINITY
                } else {
                    (v[0] - 2.0).powi(2)
                }
            },
            &[0.5],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((m.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_empty_input_errors() {
        assert!(nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default()).is_err());
    }

    #[test]
    fn nelder_mead_converges_flag() {
        let m = nelder_mead(|v| v[0] * v[0], &[3.0], &NelderMeadOptions::default()).unwrap();
        assert!(m.converged);
        assert!(m.evals < NelderMeadOptions::default().max_evals);
    }

    #[test]
    fn nelder_mead_no_convergence_on_pathological_objective() {
        // A hash-like deterministic objective with no descent structure:
        // the simplex thrashes until the evaluation budget runs out.
        let nasty = |v: &[f64]| {
            let bits = (v[0] * 1e9).to_bits() ^ (v[1] * 1e7).to_bits();
            (bits.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64
        };
        let strict = NelderMeadOptions {
            max_evals: 60,
            require_convergence: true,
            ..Default::default()
        };
        let err = nelder_mead(nasty, &[0.3, 0.7], &strict).unwrap_err();
        assert!(
            matches!(
                err,
                StatsError::NoConvergence {
                    routine: "nelder_mead",
                    ..
                }
            ),
            "{err:?}"
        );
        // Without the flag the same search reports failure softly.
        let lax = NelderMeadOptions {
            max_evals: 60,
            ..Default::default()
        };
        let m = nelder_mead(nasty, &[0.3, 0.7], &lax).unwrap();
        assert!(!m.converged);
    }

    #[test]
    fn golden_section_reports_convergence() {
        let tight = golden_section(|x| (x - 1.0).powi(2), 0.0, 3.0, 1e-8, 200).unwrap();
        assert!(tight.converged);
        // Two iterations cannot shrink [0, 3] below 1e-8.
        let starved = golden_section(|x| (x - 1.0).powi(2), 0.0, 3.0, 1e-8, 2).unwrap();
        assert!(!starved.converged);
    }

    #[test]
    fn grid_plus_nm_pipeline() {
        // The shape of the ZM fit: global grid, then local refinement.
        let objective = |a: f64, d: f64| (a - 2.2).powi(2) + 0.5 * (d - 1.3).powi(2);
        let (a0, d0, _) = grid_search_2d(objective, (1.0, 3.0), (0.0, 5.0), 9, 9);
        let m = nelder_mead(
            |v| objective(v[0], v[1]),
            &[a0, d0],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((m.x[0] - 2.2).abs() < 1e-5);
        assert!((m.x[1] - 1.3).abs() < 1e-5);
    }
}
