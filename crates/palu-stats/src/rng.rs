//! Deterministic RNG utilities — self-contained, no external crates.
//!
//! Every experiment in the reproduction must be replayable: harness
//! binaries take a master seed, and each logical component (core
//! generator, leaf attachment, star sampling, edge thinning, packet
//! synthesis, …) derives an *independent* stream from it so that adding
//! or reordering one component's draws never perturbs another's.
//!
//! The generators are from-scratch implementations of the public-domain
//! reference algorithms by Blackman & Vigna:
//!
//! * [`SplitMix64`] — the standard 64-bit seed-sequence scrambler, used
//!   to derive well-separated child seeds and to expand a 64-bit seed
//!   into generator state.
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0, the workhorse generator. Fast
//!   (one rotate, one shift, a handful of xors per draw), 2^256 − 1
//!   period, and passes BigCrush; its output stream is pinned by
//!   golden-value tests against the reference implementation so a
//!   regression can never silently change every experiment in the repo.
//!
//! The [`Rng`] trait deliberately mirrors the subset of the `rand`
//! crate's API this workspace uses (`gen`, `gen_range`, `gen_bool`,
//! slice `shuffle`), so call sites read idiomatically, but everything
//! here is dependency-free per the hermetic-build policy (lint rule R1).

use std::ops::Range;

/// SplitMix64 step — advances the state by the golden-ratio increment.
/// Used to derive well-separated child seeds from a master seed.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// One SplitMix64 output for the given (already advanced) state.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator (Steele, Lea & Flood; reference code by
/// Vigna). One 64-bit state word, period 2^64. Primarily a seed
/// expander: every bit pattern is a valid seed, and successive outputs
/// are well distributed even for adjacent seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state);
        splitmix64_mix(self.state)
    }
}

/// The xoshiro256++ 1.0 generator (Blackman & Vigna 2019). Four 64-bit
/// state words, period 2^256 − 1, all-purpose statistical quality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from a 64-bit seed by running
    /// SplitMix64, as the xoshiro authors recommend. Distinct seeds
    /// give well-separated states; the all-zero state is unreachable.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Construct from raw state words (golden-value tests, resuming a
    /// saved stream). The all-zero state is a fixed point of the
    /// transition and is remapped to `seed_from_u64(0)`.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Xoshiro256pp::seed_from_u64(0)
        } else {
            Xoshiro256pp { s }
        }
    }

    /// The current raw state words.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform random generation. The one required method is
/// [`Rng::next_u64`]; everything else derives from it, so any 64-bit
/// generator plugs in. Mirrors the `rand::Rng` call-site conventions
/// used across the workspace.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A value sampled uniformly from `T`'s standard domain: all bit
    /// patterns for integers, `[0, 1)` for floats, fair coin for bool.
    ///
    /// No `Self: Sized` bound: generic callers hold `&mut R` with
    /// `R: Rng + ?Sized`, and the provided methods must resolve on
    /// that receiver directly (the trait is never used as `dyn Rng`,
    /// so object safety is not a concern).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform in `range` (half-open). Panics on an empty
    /// range, like `rand`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical "standard" uniform distribution.
pub trait Standard: Sized {
    /// Draw one standard-uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Upper bits: xoshiro's strongest.
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform in `[0, n)` by Lemire's widening-multiply method with
/// rejection — exact (no modulo bias) and branch-light.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    /// Draw uniformly from the half-open `range`.
    fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range: empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end - range.start) as u64;
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniform random permutation in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

/// A factory deriving independent, reproducible RNG streams from a
/// master seed. Stream `k` of seed `s` is always the same RNG,
/// regardless of which other streams were drawn.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for stream `stream`.
    pub fn child_seed(&self, stream: u64) -> u64 {
        // Two rounds of splitmix over (master, stream) gives
        // well-distributed, collision-resistant child seeds.
        let mut s = self.master ^ splitmix64_mix(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(&mut s);
        splitmix64_mix(s)
    }

    /// A seeded [`Xoshiro256pp`] for stream `stream`.
    pub fn rng(&self, stream: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(self.child_seed(stream))
    }

    /// The RNG stream for measurement window `t`.
    ///
    /// The parallel pipeline needs a *splittable* per-window
    /// derivation: any worker must be able to reconstruct window `t`'s
    /// generator without replaying windows `0..t`, so the pooled
    /// result is independent of thread count and scheduling. The
    /// convention is that a window sequence is a **dedicated**
    /// `SeedSequence` (derived from a parent stream such as
    /// [`streams::PACKETS`] via [`SeedSequence::child_seed`]), inside
    /// which the window index itself is the stream id — collision-free
    /// with the fixed [`streams`] ids by construction, random-access,
    /// and bit-compatible with the serial pipeline's draws.
    pub fn window_rng(&self, t: u64) -> Xoshiro256pp {
        self.rng(t)
    }
}

/// Well-known stream identifiers used across the workspace, so that the
/// same sub-experiment always consumes the same stream.
pub mod streams {
    /// Core (preferential-attachment) degree generation.
    pub const CORE: u64 = 1;
    /// Leaf attachment.
    pub const LEAVES: u64 = 2;
    /// Unattached star sizes.
    pub const STARS: u64 = 3;
    /// Edge thinning (observation sampling).
    pub const SAMPLING: u64 = 4;
    /// Packet synthesis.
    pub const PACKETS: u64 = 5;
    /// Fitting / bootstrap utilities.
    pub const FITTING: u64 = 6;
    /// Per-window retry sub-streams of the fault-tolerant pipeline:
    /// retry `k` of window `t` draws from stream `k` of the
    /// `t`-th child of this stream, so every retry is deterministic
    /// and disjoint from the primary packet stream.
    pub const RETRY: u64 = 7;
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- Golden-value tests against the published reference streams.

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First five outputs for seed 1234567, from Vigna's reference
        // splitmix64.c (also the test vector used by rand_xoshiro).
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(sm.next_u64(), want, "output {i}");
        }
    }

    #[test]
    fn xoshiro256pp_matches_reference_vectors() {
        // First ten outputs for state [1, 2, 3, 4], from the reference
        // xoshiro256plusplus.c (also the test vector in rand_xoshiro).
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "output {i}");
        }
    }

    #[test]
    fn seed_from_u64_expands_via_splitmix() {
        // The authors' recommended seeding: state = 4 splitmix outputs.
        let mut sm = SplitMix64::new(99);
        let want = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        assert_eq!(Xoshiro256pp::seed_from_u64(99).state(), want);
    }

    #[test]
    fn all_zero_state_is_remapped() {
        let mut z = Xoshiro256pp::from_state([0, 0, 0, 0]);
        assert_ne!(z.state(), [0, 0, 0, 0]);
        // And it actually produces varying output.
        assert_ne!(z.next_u64(), z.next_u64());
    }

    // ---- Derived-sampling correctness.

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // Spread sanity: the sample actually covers the interval.
        assert!(lo < 0.01 && hi > 0.99, "lo {lo}, hi {hi}");
    }

    #[test]
    fn gen_range_respects_bounds_and_is_unbiased_enough() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let k = rng.gen_range(0..7usize);
            counts[k] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            // Each bucket expects 10_000; 4σ ≈ 380.
            assert!((9_500..10_500).contains(&c), "bucket {k}: {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5..6u64);
            assert_eq!(v, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_panics_on_empty() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let _ = rng.gen_range(4..4u64);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        a.shuffle(&mut Xoshiro256pp::seed_from_u64(5));
        b.shuffle(&mut Xoshiro256pp::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // A different seed gives a different permutation.
        let mut c: Vec<u32> = (0..100).collect();
        c.shuffle(&mut Xoshiro256pp::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [10u32, 20, 30];
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).expect("non-empty"));
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn rng_works_through_unsized_references() {
        // The `&mut R` blanket impl: generic helpers taking
        // `R: Rng + ?Sized` receive forwarded draws.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }

    // ---- SeedSequence behaviour (pre-existing API, preserved).

    #[test]
    fn child_seeds_are_deterministic() {
        let s1 = SeedSequence::new(42);
        let s2 = SeedSequence::new(42);
        for k in 0..100 {
            assert_eq!(s1.child_seed(k), s2.child_seed(k));
        }
        assert_eq!(s1.master(), 42);
    }

    #[test]
    fn child_seeds_differ_across_streams_and_masters() {
        let s = SeedSequence::new(7);
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000 {
            assert!(seen.insert(s.child_seed(k)), "collision at stream {k}");
        }
        let other = SeedSequence::new(8);
        for k in 0..100 {
            assert_ne!(s.child_seed(k), other.child_seed(k));
        }
    }

    #[test]
    fn streams_are_independent_of_draw_order() {
        let seq = SeedSequence::new(99);
        // Draw stream 5 first in one ordering, second in another: the
        // stream's output must be identical.
        let mut a = seq.rng(5);
        let first: [u64; 4] = [a.next_u64(), a.next_u64(), a.next_u64(), a.next_u64()];
        let mut b0 = seq.rng(3);
        let _burn: u64 = b0.next_u64();
        let mut b = seq.rng(5);
        let second: [u64; 4] = [b.next_u64(), b.next_u64(), b.next_u64(), b.next_u64()];
        assert_eq!(first, second);
    }

    #[test]
    fn stream_outputs_are_unperturbed_by_other_streams_draining() {
        // Stream k's whole prefix is unchanged no matter how much
        // streams j ≠ k consume — the property windows_parallel and
        // window_at rely on.
        let seq = SeedSequence::new(1234);
        let mut before = seq.rng(7);
        let prefix: Vec<u64> = (0..64).map(|_| before.next_u64()).collect();
        for j in 0..32 {
            if j != 7 {
                let mut other = seq.rng(j);
                for _ in 0..1000 {
                    let _ = other.next_u64();
                }
            }
        }
        let mut after = seq.rng(7);
        let again: Vec<u64> = (0..64).map(|_| after.next_u64()).collect();
        assert_eq!(prefix, again);
    }

    #[test]
    fn splitmix_mix_is_a_bijection_spot_check() {
        // Distinct inputs → distinct outputs (injectivity spot check).
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(splitmix64_mix(k)));
        }
    }

    #[test]
    fn window_rng_is_random_access_and_order_free() {
        let seq = SeedSequence::new(SeedSequence::new(42).child_seed(streams::PACKETS));
        // window_rng(t) is the stream-t generator of the dedicated
        // window namespace…
        for t in [0u64, 1, 7, 1_000_000] {
            assert_eq!(seq.window_rng(t).state(), seq.rng(t).state());
        }
        // …and reconstructing window 5 after draining other windows
        // gives the identical stream (splittable random access).
        let mut first = seq.window_rng(5);
        let want: Vec<u64> = (0..16).map(|_| first.next_u64()).collect();
        for t in 0..5 {
            let mut other = seq.window_rng(t);
            for _ in 0..100 {
                let _ = other.next_u64();
            }
        }
        let mut again = seq.window_rng(5);
        let got: Vec<u64> = (0..16).map(|_| again.next_u64()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn known_stream_ids_are_distinct() {
        use streams::*;
        let ids = [CORE, LEAVES, STARS, SAMPLING, PACKETS, FITTING];
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }
}
