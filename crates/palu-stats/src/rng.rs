//! Deterministic RNG utilities.
//!
//! Every experiment in the reproduction must be replayable: harness
//! binaries take a master seed, and each logical component (core
//! generator, leaf attachment, star sampling, edge thinning, packet
//! synthesis, …) derives an *independent* stream from it so that adding
//! or reordering one component's draws never perturbs another's.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard 64-bit seed-sequence scrambler. Used
/// to derive well-separated child seeds from a master seed.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// One SplitMix64 output for the given (already advanced) state.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A factory deriving independent, reproducible RNG streams from a
/// master seed. Stream `k` of seed `s` is always the same RNG,
/// regardless of which other streams were drawn.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for stream `stream`.
    pub fn child_seed(&self, stream: u64) -> u64 {
        // Two rounds of splitmix over (master, stream) gives
        // well-distributed, collision-resistant child seeds.
        let mut s = self.master ^ splitmix64_mix(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(&mut s);
        splitmix64_mix(s)
    }

    /// A seeded [`StdRng`] for stream `stream`.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.child_seed(stream))
    }
}

/// Well-known stream identifiers used across the workspace, so that the
/// same sub-experiment always consumes the same stream.
pub mod streams {
    /// Core (preferential-attachment) degree generation.
    pub const CORE: u64 = 1;
    /// Leaf attachment.
    pub const LEAVES: u64 = 2;
    /// Unattached star sizes.
    pub const STARS: u64 = 3;
    /// Edge thinning (observation sampling).
    pub const SAMPLING: u64 = 4;
    /// Packet synthesis.
    pub const PACKETS: u64 = 5;
    /// Fitting / bootstrap utilities.
    pub const FITTING: u64 = 6;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_are_deterministic() {
        let s1 = SeedSequence::new(42);
        let s2 = SeedSequence::new(42);
        for k in 0..100 {
            assert_eq!(s1.child_seed(k), s2.child_seed(k));
        }
        assert_eq!(s1.master(), 42);
    }

    #[test]
    fn child_seeds_differ_across_streams_and_masters() {
        let s = SeedSequence::new(7);
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000 {
            assert!(seen.insert(s.child_seed(k)), "collision at stream {k}");
        }
        let other = SeedSequence::new(8);
        for k in 0..100 {
            assert_ne!(s.child_seed(k), other.child_seed(k));
        }
    }

    #[test]
    fn streams_are_independent_of_draw_order() {
        let seq = SeedSequence::new(99);
        // Draw stream 5 first in one ordering, second in another: the
        // stream's output must be identical.
        let mut a = seq.rng(5);
        let first: [u64; 4] = [a.gen(), a.gen(), a.gen(), a.gen()];
        let mut b0 = seq.rng(3);
        let _burn: u64 = b0.gen();
        let mut b = seq.rng(5);
        let second: [u64; 4] = [b.gen(), b.gen(), b.gen(), b.gen()];
        assert_eq!(first, second);
    }

    #[test]
    fn splitmix_mix_is_a_bijection_spot_check() {
        // Distinct inputs → distinct outputs (injectivity spot check).
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(splitmix64_mix(k)));
        }
    }

    #[test]
    fn known_stream_ids_are_distinct() {
        use streams::*;
        let ids = [CORE, LEAVES, STARS, SAMPLING, PACKETS, FITTING];
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }
}
