//! Ordinary and weighted least-squares linear regression.
//!
//! Section IV of the paper estimates the power-law exponent "via linear
//! regression in a log-log plot": the tail of the degree distribution
//! satisfies `log(frac of degree-d nodes) ≈ −α·log d + β`, and after
//! logarithmic pooling the slope becomes `1 − α` (Section IV-A). The
//! Section IV-B pipeline also uses a linear regression to estimate `u`.

use crate::error::StatsError;
use crate::Result;

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 when all points are
    /// perfectly collinear; 0 when the fit explains nothing).
    pub r_squared: f64,
    /// Standard error of the slope estimate (0 when fewer than three
    /// points).
    pub slope_std_err: f64,
    /// Number of points used.
    pub n: usize,
}

impl Regression {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over paired slices.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] if fewer than two points are given or
///   slices mismatch in length.
/// * [`StatsError::Domain`] if all `x` are identical (vertical line).
pub fn ols(xs: &[f64], ys: &[f64]) -> Result<Regression> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return Err(StatsError::EmptyInput { routine: "ols" });
    }
    let w = vec![1.0; xs.len()];
    weighted_ols(xs, ys, &w)
}

/// Weighted least squares with per-point weights `w ≥ 0`.
///
/// Weights are typically inverse variances (from the multi-window
/// `σ(d_i)` estimates). Points with zero weight are ignored.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] on slice mismatch or fewer than two
///   effective (positively weighted) points.
/// * [`StatsError::Domain`] if the weighted `x` values are degenerate.
pub fn weighted_ols(xs: &[f64], ys: &[f64], w: &[f64]) -> Result<Regression> {
    if xs.len() != ys.len() || xs.len() != w.len() || xs.is_empty() {
        return Err(StatsError::EmptyInput {
            routine: "weighted_ols",
        });
    }
    let effective = w.iter().filter(|&&wi| wi > 0.0).count();
    if effective < 2 {
        return Err(StatsError::EmptyInput {
            routine: "weighted_ols",
        });
    }
    let sw: f64 = w.iter().sum();
    let mean_x: f64 = xs.iter().zip(w).map(|(x, wi)| x * wi).sum::<f64>() / sw;
    let mean_y: f64 = ys.iter().zip(w).map(|(y, wi)| y * wi).sum::<f64>() / sw;
    let sxx: f64 = xs
        .iter()
        .zip(w)
        .map(|(x, wi)| wi * (x - mean_x).powi(2))
        .sum();
    if sxx <= 0.0 {
        return Err(StatsError::domain(
            "weighted_ols",
            "x values are degenerate (zero weighted variance)",
        ));
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .zip(w)
        .map(|((x, y), wi)| wi * (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // R² and slope standard error from weighted residuals.
    let syy: f64 = ys
        .iter()
        .zip(w)
        .map(|(y, wi)| wi * (y - mean_y).powi(2))
        .sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .zip(w)
        .map(|((x, y), wi)| wi * (y - slope * x - intercept).powi(2))
        .sum();
    let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    let n = effective;
    let slope_std_err = if n > 2 {
        // ss_res is a sum of squares >= 0; sxx > 0 checked upstream,
        // and n > 2 by the branch guard. lint:allow(R3)
        (ss_res / (n as f64 - 2.0) / sxx).sqrt()
    } else {
        0.0
    };
    Ok(Regression {
        slope,
        intercept,
        r_squared,
        slope_std_err,
        n,
    })
}

/// Log–log regression: fits `ln y ≈ slope·ln x + intercept` over the
/// points with `x > 0` and `y > 0` (others are skipped, matching how a
/// log-log plot simply drops empty bins).
///
/// # Errors
///
/// Propagates [`ols`] errors when fewer than two usable points remain.
pub fn log_log_ols(xs: &[f64], ys: &[f64]) -> Result<Regression> {
    let pairs: (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        // The filter above keeps only x > 0, y > 0. lint:allow(R3)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .unzip();
    ols(&pairs.0, &pairs.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovery() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let r = ols(&xs, &ys).unwrap();
        assert!((r.slope - 3.0).abs() < 1e-12);
        assert!((r.intercept + 2.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
        assert!(r.slope_std_err < 1e-10);
        assert_eq!(r.n, 10);
        assert!((r.predict(20.0) - 58.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_line_recovery() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.7 * x + 0.5 + 0.01 * ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let r = ols(&xs, &ys).unwrap();
        assert!((r.slope - 1.7).abs() < 0.01);
        assert!(r.r_squared > 0.999);
    }

    #[test]
    fn input_validation() {
        assert!(ols(&[], &[]).is_err());
        assert!(ols(&[1.0], &[1.0]).is_err());
        assert!(ols(&[1.0, 2.0], &[1.0]).is_err());
        // Degenerate x.
        assert!(ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn weights_downweight_outliers() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut ys = [0.0, 1.0, 2.0, 3.0, 4.0]; // slope 1
        ys[4] = 100.0; // outlier away from the x-mean tilts the slope
        let w_out = [1.0, 1.0, 1.0, 1.0, 0.0];
        let r = weighted_ols(&xs, &ys, &w_out).unwrap();
        assert!((r.slope - 1.0).abs() < 1e-12);
        assert_eq!(r.n, 4);
        // With uniform weights the outlier drags the fit away.
        let r_uniform = ols(&xs, &ys).unwrap();
        assert!((r_uniform.slope - 1.0).abs() > 0.5);
    }

    #[test]
    fn weighted_requires_two_effective_points() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0];
        assert!(weighted_ols(&xs, &ys, &[1.0, 0.0, 0.0]).is_err());
        assert!(weighted_ols(&xs, &ys, &[0.0; 3]).is_err());
    }

    #[test]
    fn log_log_recovers_power_law_exponent() {
        // y = 5 x^{-2.5}; log-log slope must be −2.5.
        let xs: Vec<f64> = (1..=50).map(|d| d as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.powf(-2.5)).collect();
        let r = log_log_ols(&xs, &ys).unwrap();
        assert!((r.slope + 2.5).abs() < 1e-10);
        assert!((r.intercept - 5.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn log_log_skips_nonpositive_points() {
        let xs = [1.0, 2.0, 0.0, 4.0, 8.0];
        let ys = [1.0, 0.5, 9.0, 0.25, 0.125];
        // Point with x=0 dropped; remaining is y = x^{-1}.
        let r = log_log_ols(&xs, &ys).unwrap();
        assert!((r.slope + 1.0).abs() < 1e-10);
        assert_eq!(r.n, 4);
        // All-nonpositive → error.
        assert!(log_log_ols(&[0.0, -1.0], &[1.0, 1.0]).is_err());
    }
}
