//! Binary logarithmic pooling (binning) of degree distributions.
//!
//! Section II-A: "it is typical to pool the differential cumulative
//! probability with logarithmic bins in d:
//! `D_t(d_i) = P_t(d_i) − P_t(d_{i−1})` where `d_i = 2^i`."
//!
//! Bin `i` therefore covers the degree interval `(2^{i−1}, 2^i]`, with
//! bin 0 holding exactly `d = 1`. All measured and model distributions
//! in the paper's figures are compared in this pooled representation,
//! and Section IV-A shows the pooling shifts the apparent log-log slope
//! from `−α` to `1 − α`.

use crate::histogram::DegreeHistogram;

/// The binary logarithmic binning scheme `d_i = 2^i`.
///
/// This is a zero-sized strategy type: all state lives in the pooled
/// [`DifferentialCumulative`] it produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogBins;

impl LogBins {
    /// Bin index for a degree `d ≥ 1`: the unique `i` with
    /// `2^{i−1} < d ≤ 2^i`, i.e. `i = ceil(log2 d)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `d == 0`; degree-0 nodes are not
    /// observable and never enter pooled distributions.
    pub fn bin_index(d: u64) -> u32 {
        debug_assert!(d >= 1, "logarithmic bins start at degree 1");
        // ceil(log2 d) == 64 - (d-1).leading_zeros() for d >= 2; 0 for d == 1.
        if d <= 1 {
            0
        } else {
            64 - (d - 1).leading_zeros()
        }
    }

    /// Upper boundary `d_i = 2^i` of bin `i`.
    pub fn upper_bound(i: u32) -> u64 {
        1u64 << i
    }

    /// Lower boundary (exclusive) of bin `i`: `2^{i−1}`, or 0 for bin 0.
    pub fn lower_bound_exclusive(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive degree range covered by bin `i`.
    pub fn range(i: u32) -> std::ops::RangeInclusive<u64> {
        Self::lower_bound_exclusive(i) + 1..=Self::upper_bound(i)
    }

    /// Number of bins needed to cover degrees up to `d_max`.
    pub fn bins_for(d_max: u64) -> u32 {
        Self::bin_index(d_max.max(1)) + 1
    }
}

/// A pooled differential cumulative distribution `D(d_i)` over binary
/// logarithmic bins.
///
/// Invariant: `values[i]` is the probability mass in degree interval
/// `(2^{i−1}, 2^i]`; the values sum to ≤ 1 (equal to 1 when built from
/// a complete distribution).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DifferentialCumulative {
    values: Vec<f64>,
}

impl DifferentialCumulative {
    /// Pool an empirical degree histogram into `D_t(d_i)`.
    ///
    /// Returns an empty distribution for an empty histogram.
    ///
    /// # Examples
    ///
    /// ```
    /// use palu_stats::histogram::DegreeHistogram;
    /// use palu_stats::logbin::DifferentialCumulative;
    /// let h = DegreeHistogram::from_degrees([1, 1, 2, 3, 4, 8]);
    /// let d = DifferentialCumulative::from_histogram(&h);
    /// // Bin 0 holds d = 1 (mass 2/6); bin 2 holds d ∈ {3, 4} (2/6).
    /// assert!((d.value(0) - 2.0 / 6.0).abs() < 1e-12);
    /// assert!((d.value(2) - 2.0 / 6.0).abs() < 1e-12);
    /// assert!((d.total_mass() - 1.0).abs() < 1e-12);
    /// ```
    pub fn from_histogram(h: &DegreeHistogram) -> Self {
        let Some(d_max) = h.d_max() else {
            return Self::default();
        };
        let n_bins = LogBins::bins_for(d_max) as usize;
        let mut values = vec![0.0; n_bins];
        let total = h.total() as f64;
        for (d, c) in h.iter() {
            if d == 0 {
                continue; // invisible isolated nodes are not pooled
            }
            values[LogBins::bin_index(d) as usize] += c as f64 / total;
        }
        DifferentialCumulative { values }
    }

    /// Pool a model pmf `p(d)` over degrees `1..=d_max` into `D(d_i)`.
    ///
    /// The paper forms the model-side `D(d_i; α, δ)` this way so model
    /// and measurement are compared in the identical representation.
    pub fn from_pmf<F: Fn(u64) -> f64>(pmf: F, d_max: u64) -> Self {
        let n_bins = LogBins::bins_for(d_max.max(1)) as usize;
        let mut values = vec![0.0; n_bins];
        for d in 1..=d_max {
            values[LogBins::bin_index(d) as usize] += pmf(d);
        }
        DifferentialCumulative { values }
    }

    /// Construct directly from per-bin values (used by the pooled
    /// multi-window statistics).
    pub fn from_values(values: Vec<f64>) -> Self {
        DifferentialCumulative { values }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.values.len()
    }

    /// Value `D(d_i)` for bin `i` (0 beyond the last bin).
    pub fn value(&self, i: usize) -> f64 {
        self.values.get(i).copied().unwrap_or(0.0)
    }

    /// All bin values in bin-index order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(d_i, D(d_i))` pairs with `d_i = 2^i`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (LogBins::upper_bound(i as u32), v))
    }

    /// Total pooled mass (1 for a complete distribution).
    pub fn total_mass(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The supernode bin: largest `i` with `D(d_i) > 0`, per the
    /// paper's `d_max = argmax(D(d) > 0)`.
    pub fn last_nonzero_bin(&self) -> Option<usize> {
        self.values.iter().rposition(|&v| v > 0.0)
    }

    /// Sum of squared per-bin differences against another pooled
    /// distribution — the fit objective the paper minimizes
    /// ("minimizing the differences between the observed differential
    /// cumulative distributions"). Bins absent from one side count as 0.
    pub fn l2_distance_sq(&self, other: &DifferentialCumulative) -> f64 {
        let n = self.values.len().max(other.values.len());
        (0..n)
            .map(|i| {
                let d = self.value(i) - other.value(i);
                d * d
            })
            .sum()
    }

    /// Maximum absolute per-bin difference (a pooled KS-style distance).
    pub fn linf_distance(&self, other: &DifferentialCumulative) -> f64 {
        let n = self.values.len().max(other.values.len());
        (0..n)
            .map(|i| (self.value(i) - other.value(i)).abs())
            .fold(0.0, f64::max)
    }

    /// Weighted squared distance with per-bin weights `w[i]`
    /// (e.g. inverse variances from multi-window σ estimates). Bins
    /// beyond `w.len()` get weight 0.
    pub fn weighted_distance_sq(&self, other: &DifferentialCumulative, w: &[f64]) -> f64 {
        let n = self.values.len().max(other.values.len()).min(w.len());
        (0..n)
            .map(|i| {
                let d = self.value(i) - other.value(i);
                w[i] * d * d
            })
            .sum()
    }

    /// Log-space squared distance over bins where both sides are
    /// positive — emphasizes tail agreement the way a log-log plot does.
    pub fn log_distance_sq(&self, other: &DifferentialCumulative) -> f64 {
        let n = self.values.len().max(other.values.len());
        (0..n)
            .filter_map(|i| {
                let a = self.value(i);
                let b = other.value(i);
                if a > 0.0 && b > 0.0 {
                    let d = a.ln() - b.ln();
                    Some(d * d)
                } else {
                    None
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_boundaries() {
        assert_eq!(LogBins::bin_index(1), 0);
        assert_eq!(LogBins::bin_index(2), 1);
        assert_eq!(LogBins::bin_index(3), 2);
        assert_eq!(LogBins::bin_index(4), 2);
        assert_eq!(LogBins::bin_index(5), 3);
        assert_eq!(LogBins::bin_index(8), 3);
        assert_eq!(LogBins::bin_index(9), 4);
        assert_eq!(LogBins::bin_index(1024), 10);
        assert_eq!(LogBins::bin_index(1025), 11);
    }

    #[test]
    fn ranges_partition_the_integers() {
        // Bins 0..=6 must exactly tile 1..=64.
        let mut covered = Vec::new();
        for i in 0..=6u32 {
            for d in LogBins::range(i) {
                covered.push(d);
            }
        }
        assert_eq!(covered, (1..=64u64).collect::<Vec<_>>());
        // And each degree maps back to the bin that covers it.
        for i in 0..=6u32 {
            for d in LogBins::range(i) {
                assert_eq!(LogBins::bin_index(d), i, "d={d}");
            }
        }
    }

    #[test]
    fn bins_for_counts_correctly() {
        assert_eq!(LogBins::bins_for(1), 1);
        assert_eq!(LogBins::bins_for(2), 2);
        assert_eq!(LogBins::bins_for(4), 3);
        assert_eq!(LogBins::bins_for(5), 4);
        assert_eq!(LogBins::bins_for(0), 1); // degenerate, clamped
    }

    #[test]
    fn pooling_a_histogram_conserves_mass() {
        let h = DegreeHistogram::from_degrees([1, 1, 2, 3, 4, 7, 8, 100]);
        let d = DifferentialCumulative::from_histogram(&h);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        // d=1 bin holds 2/8 of the mass.
        assert!((d.value(0) - 0.25).abs() < 1e-12);
        // bin 1 holds d=2: 1/8.
        assert!((d.value(1) - 0.125).abs() < 1e-12);
        // bin 2 holds d∈{3,4}: 2/8.
        assert!((d.value(2) - 0.25).abs() < 1e-12);
        // bin 3 holds d∈{5..8}: 2/8.
        assert!((d.value(3) - 0.25).abs() < 1e-12);
        // d=100 lands in bin 7 (65..128).
        assert!((d.value(7) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_pools_to_empty() {
        let d = DifferentialCumulative::from_histogram(&DegreeHistogram::new());
        assert_eq!(d.n_bins(), 0);
        assert_eq!(d.total_mass(), 0.0);
        assert_eq!(d.last_nonzero_bin(), None);
    }

    #[test]
    fn pooling_matches_cumulative_differences() {
        // D(d_i) must equal P(d_i) − P(d_{i−1}) computed from the
        // histogram's own CDF — the paper's defining identity.
        let h = DegreeHistogram::from_degrees([1, 2, 2, 3, 5, 9, 17, 17, 33]);
        let d = DifferentialCumulative::from_histogram(&h);
        for i in 0..d.n_bins() as u32 {
            let hi = LogBins::upper_bound(i);
            let lo = LogBins::lower_bound_exclusive(i);
            let expected = h.cumulative(hi) - if lo == 0 { 0.0 } else { h.cumulative(lo) };
            assert!((d.value(i as usize) - expected).abs() < 1e-12, "bin {i}");
        }
    }

    #[test]
    fn from_pmf_pools_model_mass() {
        // Uniform pmf over 1..=8 → bins get 1/8, 1/8, 2/8, 4/8.
        let d = DifferentialCumulative::from_pmf(|_| 0.125, 8);
        assert_eq!(d.n_bins(), 4);
        assert!((d.value(0) - 0.125).abs() < 1e-12);
        assert!((d.value(1) - 0.125).abs() < 1e-12);
        assert!((d.value(2) - 0.25).abs() < 1e-12);
        assert!((d.value(3) - 0.5).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        let a = DifferentialCumulative::from_values(vec![0.5, 0.25, 0.25]);
        let b = DifferentialCumulative::from_values(vec![0.5, 0.5]);
        // Differ by 0.25 in bin 1 and 0.25 in bin 2.
        assert!((a.l2_distance_sq(&b) - 0.125).abs() < 1e-12);
        assert!((a.linf_distance(&b) - 0.25).abs() < 1e-12);
        assert_eq!(a.l2_distance_sq(&a), 0.0);
        // Weighted: zero weight on mismatched bins kills the distance.
        assert_eq!(a.weighted_distance_sq(&b, &[1.0, 0.0, 0.0]), 0.0);
        assert!((a.weighted_distance_sq(&b, &[0.0, 2.0, 2.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_distance_ignores_empty_bins() {
        let a = DifferentialCumulative::from_values(vec![0.5, 0.0, 0.5]);
        let b = DifferentialCumulative::from_values(vec![0.5, 0.25, 0.25]);
        // Only bins 0 and 2 contribute (bin 1 has a zero side).
        let expected = (0.5f64.ln() - 0.25f64.ln()).powi(2);
        assert!((a.log_distance_sq(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn last_nonzero_bin_is_supernode_bin() {
        let h = DegreeHistogram::from_degrees([1, 1, 1, 70_000]);
        let d = DifferentialCumulative::from_histogram(&h);
        // 70_000 lies in (2^16, 2^17], bin 17.
        assert_eq!(d.last_nonzero_bin(), Some(17));
        assert_eq!(LogBins::bin_index(70_000), 17);
    }

    #[test]
    fn pooled_powerlaw_slope_is_one_minus_alpha() {
        // Section IV-A: pooling a d^{-α} pmf gives log2 D(d_i) linear in
        // i with slope (1−α)·log(2) — verify via adjacent-bin ratios.
        let alpha = 2.5;
        let z = crate::special::riemann_zeta(alpha).unwrap();
        let d = DifferentialCumulative::from_pmf(|k| (k as f64).powf(-alpha) / z, 1 << 20);
        // For large i, D(d_{i+1}) / D(d_i) → 2^{1-α}.
        let expected_ratio = 2f64.powf(1.0 - alpha);
        for i in 10..18 {
            let ratio = d.value(i + 1) / d.value(i);
            assert!(
                (ratio - expected_ratio).abs() < 0.01,
                "bin {i}: ratio {ratio} vs {expected_ratio}"
            );
        }
    }
}
