//! Workspace root crate.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. It re-exports the
//! public crates of the workspace for convenience so examples can write
//! `use palu_suite::prelude::*;`.

pub use palu;
pub use palu_graph;
pub use palu_sparse;
pub use palu_stats;
pub use palu_traffic;

/// Convenience re-exports of the most commonly used items across the
/// workspace, mirroring what a downstream user of the published crates
/// would import.
pub mod prelude {
    pub use palu::{
        analytic::ObservedPrediction,
        estimate::{EstimateOptions, PaluEstimator},
        params::PaluParams,
        zm::ZipfMandelbrot,
        zm_connection::PaluCurve,
        zm_fit::{FitObjective, ZmFit, ZmFitter},
    };
    pub use palu_graph::{
        census::TopologyCensus,
        graph::Graph,
        palu_gen::{PaluGenerator, UnderlyingNetwork},
        sample::sample_edges,
    };
    pub use palu_sparse::{aggregates::Aggregates, coo::CooMatrix, csr::CsrMatrix};
    pub use palu_stats::{
        histogram::DegreeHistogram,
        logbin::{DifferentialCumulative, LogBins},
    };
    pub use palu_traffic::{
        metrics::{Metrics, MetricsSnapshot, Stage},
        observatory::Observatory,
        pipeline::{Pipeline, PooledDistribution},
        window::PacketWindow,
    };
}
