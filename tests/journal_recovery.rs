//! Tier-1 contract for the durable capture journal (DESIGN.md §4f):
//! crash-equivalence under a kill-point sweep.
//!
//! The guarantees under test:
//!
//! 1. **Every byte prefix is resumable** — a writer killed after any
//!    number of bytes leaves a journal that [`Journal::recover_bytes`]
//!    accepts: complete records replay byte-exactly, the torn tail is
//!    dropped and counted, and nothing panics or errors. The sweep is
//!    exhaustive over all prefix lengths of a 64-window capture.
//! 2. **Resume is bit-identical** — resuming a truncated journal and
//!    recomputing the complement reproduces the uninterrupted pooled
//!    `D(d_i)` bit for bit, at 1, 2, and 8 threads, whether the kill
//!    landed on a record boundary or mid-record.
//! 3. **Replay is accounted** — metrics report exactly the windows
//!    that were replayed rather than recomputed.

use palu_suite::prelude::*;

use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement};
use palu_traffic::{
    FailurePolicy, InjectionSpec, Injector, Journal, JournalHeader, Recovery, WindowEntry,
};

const WINDOWS: usize = 64;
const N_V: u64 = 200;
const SEED: u64 = 4242;
const INJECT_SEED: u64 = 7;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec!["test=journal-recovery".to_string()],
    )
}

fn observatory(gen: &PaluGenerator) -> Observatory {
    Observatory::new(
        ObservatoryConfig {
            name: "journal-recovery test".to_string(),
            date: String::new(),
            n_v: N_V,
        },
        gen,
        EdgeIntensity::Uniform,
        SEED,
    )
}

fn generator() -> PaluGenerator {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(3_000)
        .unwrap()
}

/// One capture run. The injector plants deterministic duplicate
/// storms so the journal holds all three entry shapes: clean,
/// recovered (with a fault record), and quarantined (no result).
fn run(
    gen: &PaluGenerator,
    threads: usize,
    metrics: Option<&Metrics>,
    journal: Option<&Journal>,
    recovery: Option<&Recovery>,
) -> FaultTolerantPool {
    let mut obs = observatory(gen);
    let spec = InjectionSpec {
        duplicate: 0.2,
        ..InjectionSpec::none()
    };
    let injector = Injector::new(spec, INJECT_SEED);
    Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        metrics,
        &FailurePolicy::quarantine(1),
        Some(&injector),
        journal,
        recovery,
    )
    .expect("capture succeeds")
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.report, b.report, "{what}: fault report");
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}: window count");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}: d_max");
    assert_eq!(a.histogram, b.histogram, "{what}: merged histogram");
    for (i, ((_, ma), (_, mb))) in a.pooled.mean.iter().zip(b.pooled.mean.iter()).enumerate() {
        assert_eq!(ma.to_bits(), mb.to_bits(), "{what}: mean bin {i}");
    }
    for (i, (sa, sb)) in a.pooled.sigma.iter().zip(b.pooled.sigma.iter()).enumerate() {
        assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Byte offsets just past each complete record (the first is the end
/// of the header record). A cut at one of these is a clean kill; a cut
/// anywhere else leaves a torn tail.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 8 + len;
        if end > bytes.len() {
            break;
        }
        off = end;
        ends.push(end);
    }
    ends
}

/// The raw IEEE-754 bits behind an entry's replayable state, so that
/// the sweep compares *bit patterns*, not `f64` equality (which would
/// conflate `-0.0` with `0.0`).
fn result_bits(entry: &WindowEntry) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Some(r) = &entry.result {
        r.stats.encode_into(&mut buf);
        buf.extend_from_slice(&r.d_max.unwrap_or(u64::MAX).to_le_bytes());
        for (d, c) in r.histogram.iter() {
            buf.extend_from_slice(&d.to_le_bytes());
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    buf
}

/// Capture the 64-window reference journal once, returning its raw
/// bytes and the uninterrupted pooled result.
fn reference_capture(gen: &PaluGenerator, dir: &std::path::Path) -> (Vec<u8>, FaultTolerantPool) {
    let path = dir.join("reference.journal");
    let journal = Journal::create(&path, header()).expect("journal create");
    let full = run(gen, 2, None, Some(&journal), None);
    drop(journal);
    let bytes = std::fs::read(&path).expect("journal readable");
    (bytes, full)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("palu-journal-recovery-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn every_byte_prefix_of_a_capture_stays_resumable() {
    let gen = generator();
    let dir = temp_dir("prefix-sweep");
    let (bytes, _full) = reference_capture(&gen, &dir);

    let reference = Journal::recover_bytes(&bytes, &header()).expect("full journal recovers");
    assert_eq!(reference.windows.len(), WINDOWS, "every window journaled");
    assert_eq!(reference.torn_bytes_dropped, 0);
    let reference_bits: std::collections::BTreeMap<u64, Vec<u8>> = reference
        .windows
        .iter()
        .map(|(&w, e)| (w, result_bits(e)))
        .collect();

    let boundaries = record_boundaries(&bytes);
    assert_eq!(
        boundaries.len(),
        WINDOWS + 1,
        "header + one record per window"
    );

    // The exhaustive kill-point sweep: every prefix length, including
    // 0 (nothing written) and cuts inside the header record.
    let mut complete = 0usize; // records fully inside the prefix
    for cut in 0..=bytes.len() {
        while complete < boundaries.len() && boundaries[complete] <= cut {
            complete += 1;
        }
        let last_end = if complete == 0 {
            0
        } else {
            boundaries[complete - 1]
        };
        let rec = Journal::recover_bytes(&bytes[..cut], &header())
            .unwrap_or_else(|e| panic!("prefix of {cut} bytes must stay resumable: {e}"));
        assert_eq!(
            rec.windows.len(),
            complete.saturating_sub(1),
            "complete window records in a {cut}-byte prefix"
        );
        assert_eq!(rec.bytes_replayed, last_end as u64, "cut at {cut}");
        assert_eq!(
            rec.torn_bytes_dropped,
            (cut - last_end) as u64,
            "cut at {cut}"
        );
        assert_eq!(
            rec.torn_records_dropped,
            u64::from(cut != last_end),
            "cut at {cut}"
        );
        // Replayed state only changes when a record boundary is
        // crossed; the parse is deterministic, so checking content at
        // the boundary cuts pins it for every cut in between.
        if cut == last_end {
            for (w, entry) in &rec.windows {
                let want = &reference.windows[w];
                assert_eq!(entry, want, "window {w} entry at cut {cut}");
                assert_eq!(
                    result_bits(entry),
                    reference_bits[w],
                    "window {w} replayed bits at cut {cut}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_is_bit_identical_at_every_record_boundary() {
    let gen = generator();
    let dir = temp_dir("boundary-resume");
    let (bytes, full) = reference_capture(&gen, &dir);

    // The uninterrupted result itself is thread-count invariant.
    for threads in [1usize, 8] {
        let again = run(&gen, threads, None, None, None);
        assert_bit_identical(&again, &full, &format!("clean run at {threads} threads"));
    }

    let boundaries = record_boundaries(&bytes);
    let path = dir.join("cut.journal");
    // Every record boundary is a kill point; thread counts rotate so
    // the full sweep covers 1, 2, and 8 without tripling the runtime.
    // A handful of cuts additionally run at all three counts.
    let all_threads_at = [0usize, 1, 31, 63, 64];
    for (k, &cut) in boundaries.iter().enumerate() {
        let thread_counts: &[usize] = if all_threads_at.contains(&k) {
            &[1, 2, 8]
        } else {
            &[[1usize, 2, 8][k % 3]]
        };
        for &threads in thread_counts {
            std::fs::write(&path, &bytes[..cut]).expect("write truncated journal");
            let (journal, recovery) =
                Journal::resume(&path, header()).expect("boundary cut resumes");
            assert_eq!(
                recovery.windows.len(),
                k,
                "replayed windows at boundary {k}"
            );
            assert_eq!(
                recovery.torn_records_dropped, 0,
                "boundary cut has no torn tail"
            );
            let metrics = Metrics::new();
            let resumed = run(
                &gen,
                threads,
                Some(&metrics),
                Some(&journal),
                Some(&recovery),
            );
            drop(journal);
            assert_bit_identical(
                &resumed,
                &full,
                &format!("resume at boundary {k}, {threads} threads"),
            );
            assert_eq!(metrics.snapshot().windows_recovered, k as u64);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_is_bit_identical_after_mid_record_kills() {
    let gen = generator();
    let dir = temp_dir("torn-resume");
    let (bytes, full) = reference_capture(&gen, &dir);

    let boundaries = record_boundaries(&bytes);
    let path = dir.join("torn.journal");
    // Kill points inside a record: half-way into the record after each
    // sampled boundary, plus a cut leaving a single dangling byte.
    for (k, threads) in [(0usize, 1usize), (5, 2), (20, 8), (40, 1), (63, 2)] {
        let start = boundaries[k];
        let end = boundaries[k + 1];
        for cut in [start + (end - start) / 2, start + 1] {
            std::fs::write(&path, &bytes[..cut]).expect("write torn journal");
            let (journal, recovery) = Journal::resume(&path, header()).expect("torn cut resumes");
            assert_eq!(
                recovery.windows.len(),
                k,
                "complete records before the tear"
            );
            assert_eq!(
                recovery.torn_records_dropped, 1,
                "the torn record is dropped"
            );
            assert_eq!(recovery.torn_bytes_dropped, (cut - start) as u64);
            let resumed = run(&gen, threads, None, Some(&journal), Some(&recovery));
            // The resume compacted the tear away: a second resume of
            // the same file replays everything and drops nothing.
            drop(journal);
            let (journal2, recovery2) =
                Journal::resume(&path, header()).expect("compacted journal resumes");
            drop(journal2);
            assert_eq!(recovery2.windows.len(), WINDOWS);
            assert_eq!(recovery2.torn_records_dropped, 0);
            assert_bit_identical(
                &resumed,
                &full,
                &format!("torn resume after record {k}, {threads} threads"),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
