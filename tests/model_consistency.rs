//! Cross-crate consistency between the analytic model (palu), the
//! generative substrate (palu-graph), and the measurement substrate
//! (palu-traffic): simulation must track the closed forms wherever the
//! math is exact, and deviate only where the paper's approximations
//! are known to be loose (documented in EXPERIMENTS.md).

use palu::analytic::{thinned_core_pmf, ObservedPrediction};
use palu::params::PaluParams;
use palu_graph::palu_gen::NodeRole;
use palu_graph::sample::sample_edges;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::rng::Xoshiro256pp;

fn params() -> PaluParams {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap()
}

#[test]
fn star_section_counts_match_closed_forms() {
    let truth = params();
    let n = 300_000u64;
    let net = truth
        .generator(n)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(1));
    let obs = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(2));
    let degs = obs.degrees();

    let lp = truth.lambda * truth.p;
    let nf = n as f64;

    // Visible star leaves: U·λp·n.
    let star_leaves_visible = (0..net.graph.n_nodes())
        .filter(|&v| net.role(v) == NodeRole::StarLeaf && degs[v as usize] > 0)
        .count() as f64;
    let expected = truth.unattached * lp * nf;
    assert!(
        (star_leaves_visible - expected).abs() / expected < 0.05,
        "visible star leaves {star_leaves_visible} vs {expected}"
    );

    // Invisible star centers: U·e^{−λp}·n (includes centers whose
    // leaves all vanished under sampling).
    let centers_invisible = (0..net.graph.n_nodes())
        .filter(|&v| net.role(v) == NodeRole::StarCenter && degs[v as usize] == 0)
        .count() as f64;
    let expected = truth.unattached * (-lp).exp() * nf;
    assert!(
        (centers_invisible - expected).abs() / expected < 0.05,
        "invisible centers {centers_invisible} vs {expected}"
    );
}

#[test]
fn core_degree_law_matches_exact_thinning_pmf() {
    // The thinned-core pmf (exact sum) must match the simulated core's
    // observed degree distribution bin for bin — this is the piece the
    // paper approximates and we compute exactly.
    let truth = params();
    let n = 400_000u64;
    let net = truth
        .generator(n)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(3));
    let obs = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(4));
    let degs = obs.degrees();

    let mut core_hist = DegreeHistogram::new();
    let mut n_core = 0u64;
    for v in 0..net.graph.n_nodes() {
        if net.role(v) == NodeRole::Core {
            n_core += 1;
            core_hist.increment(degs[v as usize], 1);
        }
    }
    for d in [0u64, 1, 2, 3, 5, 10, 20] {
        let predicted = thinned_core_pmf(truth.alpha, truth.p, d).unwrap();
        let measured = core_hist.count(d) as f64 / n_core as f64;
        let rel = (predicted - measured).abs() / predicted.max(1e-9);
        // Wider band in the tail where counts thin out (a few hundred
        // nodes at d = 20) and configuration-model erasure adds a
        // small systematic on top of Poisson noise.
        let tol = if d < 10 { 0.12 } else { 0.2 };
        assert!(
            rel < tol,
            "d={d}: exact-thinning pmf {predicted:.5} vs simulated {measured:.5}"
        );
    }
}

#[test]
fn paper_approximation_gap_is_where_we_say_it_is() {
    // The paper's degree-law amplitude (p^α) vs the exact one
    // (p^{α−1}): at the tail the exact form must match simulation and
    // the paper's must undershoot by ≈ p.
    let truth = params();
    let pred = ObservedPrediction::new(&truth).unwrap();
    let d = 40u64;
    let exact = thinned_core_pmf(truth.alpha, truth.p, d).unwrap();
    // Paper's per-core-node law: p^α·d^{−α}/ζ(α).
    let paper = truth.p.powf(truth.alpha) * (d as f64).powf(-truth.alpha)
        / palu_stats::special::riemann_zeta(truth.alpha).unwrap();
    let ratio = paper / exact;
    assert!(
        (ratio - truth.p).abs() < 0.1,
        "paper/exact amplitude ratio {ratio} should be ≈ p = {}",
        truth.p
    );
    // And the full prediction's tail slope is still −α in either form.
    let slope = (pred.degree_fraction_tail(80).ln() - pred.degree_fraction_tail(40).ln())
        / (80f64.ln() - 40f64.ln());
    assert!((slope + truth.alpha).abs() < 1e-9);
}

#[test]
fn pooled_model_and_pooled_simulation_share_tail_slope() {
    // Section IV-A: after logarithmic pooling, both model and
    // simulation show the 1 − α slope (not −α).
    let truth = params();
    let net = truth
        .generator(400_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(5));
    let obs = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(6));
    let pooled =
        palu_stats::logbin::DifferentialCumulative::from_histogram(&obs.degree_histogram());

    // Fit the pooled tail slope over bins 4..=9 (past leaves/stars,
    // before the noisy supernode bins).
    let (xs, ys): (Vec<f64>, Vec<f64>) = (4..=9usize)
        .filter(|&i| pooled.value(i) > 0.0)
        .map(|i| ((1u64 << i) as f64, pooled.value(i)))
        .unzip();
    let fit = palu_stats::regression::log_log_ols(&xs, &ys).unwrap();
    assert!(
        (fit.slope - (1.0 - truth.alpha)).abs() < 0.25,
        "pooled tail slope {} vs 1 − α = {}",
        fit.slope,
        1.0 - truth.alpha
    );
}

#[test]
fn role_populations_compose_into_the_full_histogram() {
    // The per-role degree histograms must add up to the whole
    // network's histogram — a conservation check across the role
    // bookkeeping.
    let truth = params();
    let net = truth
        .generator(100_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(7));
    let obs = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(8));
    let degs = obs.degrees();

    let mut by_role: std::collections::HashMap<&'static str, DegreeHistogram> =
        std::collections::HashMap::new();
    for v in 0..net.graph.n_nodes() {
        let d = degs[v as usize];
        if d == 0 {
            continue;
        }
        let key = match net.role(v) {
            NodeRole::Core => "core",
            NodeRole::Leaf => "leaf",
            NodeRole::StarCenter => "center",
            NodeRole::StarLeaf => "starleaf",
        };
        by_role.entry(key).or_default().increment(d, 1);
    }
    let mut combined = DegreeHistogram::new();
    for h in by_role.values() {
        combined.merge(h);
    }
    assert_eq!(combined, obs.degree_histogram());
    // Leaves and star leaves only ever have degree ≤ 1 observed.
    assert_eq!(by_role["leaf"].d_max(), Some(1));
    assert_eq!(by_role["starleaf"].d_max(), Some(1));
}
