//! Tier-1 contract for the fault-tolerant measurement pipeline.
//!
//! The guarantees under test:
//!
//! 1. **Deterministic injection** — the same seed and injection spec
//!    produce the same `FaultReport` and bit-identical pooled
//!    `D(d_i)` at 1, 2, and 8 threads, and across reruns.
//! 2. **Exact accounting** — with zero retries, the report's injected
//!    count equals an independent recount of the injector's plans.
//! 3. **Substitution closure** — the substitute policy always delivers
//!    `n` surviving windows, whatever was injected.
//! 4. **Clean-path identity** — with no injector and a strict policy,
//!    the checked engine is bit-identical to the serial fold.
//! 5. **Panic containment** — injected worker panics are caught and
//!    classified, never propagated out of the pipeline.

use palu_suite::prelude::*;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::Measurement;
use palu_traffic::{FailurePolicy, FaultKind, InjectionSpec, Injector, WindowOutcome};

fn observatory(seed: u64, n_v: u64) -> Observatory {
    let gen = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(30_000)
        .unwrap();
    Observatory::new(
        ObservatoryConfig {
            name: "fault-injection test".to_string(),
            date: String::new(),
            n_v,
        },
        &gen,
        EdgeIntensity::Uniform,
        seed,
    )
}

#[test]
fn half_rate_injection_is_deterministic_across_threads_and_reruns() {
    const WINDOWS: usize = 64;
    let policy = FailurePolicy::quarantine(1);
    let spec = InjectionSpec::uniform(0.5);
    let mut reference = None;
    for (threads, seed_round) in [(1usize, 0), (2, 0), (8, 0), (8, 1)] {
        let mut obs = observatory(21, 2_000);
        let injector = Injector::new(spec, 77);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            WINDOWS,
            threads,
            None,
            &policy,
            Some(&injector),
        )
        .unwrap();
        assert!(ft.report.injected > 0, "50% rate over 64 windows");
        assert_eq!(
            ft.report.survivors + ft.report.quarantined,
            WINDOWS as u64,
            "every window is disposed exactly once (round {seed_round})"
        );
        match &reference {
            None => reference = Some(ft),
            Some(want) => {
                assert_eq!(ft.report, want.report, "threads = {threads}");
                assert_eq!(
                    ft.pooled.windows, want.pooled.windows,
                    "threads = {threads}"
                );
                for (i, ((_, got), (_, expect))) in ft
                    .pooled
                    .mean
                    .iter()
                    .zip(want.pooled.mean.iter())
                    .enumerate()
                {
                    assert_eq!(
                        got.to_bits(),
                        expect.to_bits(),
                        "mean bin {i} differs at {threads} threads"
                    );
                }
                for (i, (got, expect)) in ft
                    .pooled
                    .sigma
                    .iter()
                    .zip(want.pooled.sigma.iter())
                    .enumerate()
                {
                    assert_eq!(
                        got.to_bits(),
                        expect.to_bits(),
                        "sigma bin {i} differs at {threads} threads"
                    );
                }
                assert_eq!(ft.histogram, want.histogram, "threads = {threads}");
            }
        }
    }
}

#[test]
fn injected_count_matches_an_independent_plan_recount() {
    // With zero retries every window runs exactly one attempt, so the
    // report's injected counter must equal the number of windows whose
    // first-attempt plan is Some.
    const WINDOWS: usize = 32;
    let spec = InjectionSpec::uniform(0.4);
    let mut obs = observatory(5, 2_000);
    let injector = Injector::new(spec, 13);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::quarantine(0),
        Some(&injector),
    )
    .unwrap();
    let recount = Injector::new(spec, 13);
    let expected = (0..WINDOWS as u64)
        .filter(|&t| recount.plan(t, 0).is_some())
        .count() as u64;
    assert_eq!(ft.report.injected, expected);
    // Each planted fault shows up as exactly one record, and nothing
    // else does.
    assert_eq!(ft.report.records.len() as u64, expected);
}

#[test]
fn substitute_policy_always_delivers_every_window() {
    const WINDOWS: usize = 16;
    let mut obs = observatory(9, 2_000);
    let injector = Injector::new(InjectionSpec::uniform(0.8), 3);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::substitute(1),
        Some(&injector),
    )
    .unwrap();
    assert_eq!(ft.pooled.windows, WINDOWS as u64);
    assert_eq!(ft.report.survivors, WINDOWS as u64);
    assert_eq!(ft.report.quarantined, 0);
    assert!(
        ft.report.substituted > 0,
        "80% rate must force substitutions"
    );
    assert!(ft
        .report
        .records
        .iter()
        .all(|r| r.outcome != WindowOutcome::Quarantined));
}

#[test]
fn clean_checked_run_is_bit_identical_to_the_serial_fold() {
    const WINDOWS: usize = 12;
    let serial = {
        let obs = observatory(33, 3_000);
        let windows: Vec<PacketWindow> = (0..WINDOWS as u64).map(|t| obs.window_at(t)).collect();
        Pipeline::pool(Measurement::UndirectedDegree, &windows)
    };
    let mut obs = observatory(33, 3_000);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        8,
        None,
        &FailurePolicy::strict(),
        None,
    )
    .unwrap();
    assert!(ft.report.is_clean());
    assert_eq!(ft.pooled.windows, serial.windows);
    assert_eq!(ft.pooled.d_max, serial.d_max);
    for ((_, got), (_, want)) in ft.pooled.mean.iter().zip(serial.mean.iter()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    for (got, want) in ft.pooled.sigma.iter().zip(serial.sigma.iter()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

#[test]
fn worker_panics_are_contained_and_classified() {
    const WINDOWS: usize = 6;
    let spec = InjectionSpec {
        truncate: 0.0,
        nan: 0.0,
        duplicate: 0.0,
        panic: 1.0,
    };
    let mut obs = observatory(2, 2_000);
    let injector = Injector::new(spec, 1);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        3,
        None,
        &FailurePolicy::quarantine(0),
        Some(&injector),
    )
    .unwrap();
    assert_eq!(ft.report.quarantined, WINDOWS as u64);
    assert_eq!(ft.report.survivors, 0);
    assert!(ft
        .report
        .records
        .iter()
        .all(|r| r.kind == FaultKind::Panic && r.outcome == WindowOutcome::Quarantined));
    // An all-quarantined run still yields a well-formed (empty) pool.
    assert_eq!(ft.pooled.windows, 0);
}
