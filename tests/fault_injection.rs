//! Tier-1 contract for the fault-tolerant measurement pipeline.
//!
//! The guarantees under test:
//!
//! 1. **Deterministic injection** — the same seed and injection spec
//!    produce the same `FaultReport` and bit-identical pooled
//!    `D(d_i)` at 1, 2, and 8 threads, and across reruns.
//! 2. **Exact accounting** — with zero retries, the report's injected
//!    count equals an independent recount of the injector's plans.
//! 3. **Substitution closure** — the substitute policy always delivers
//!    `n` surviving windows, whatever was injected.
//! 4. **Clean-path identity** — with no injector and a strict policy,
//!    the checked engine is bit-identical to the serial fold.
//! 5. **Panic containment** — injected worker panics are caught and
//!    classified, never propagated out of the pipeline.
//! 6. **Inclusive quarantine boundary** — a quarantined fraction
//!    exactly equal to `quarantine_threshold` passes; only strictly
//!    above fails.
//! 7. **Duplicate-storm path** — `dup` faults surface as degenerate
//!    histograms, are recounted exactly, and are retried back to
//!    health or quarantined, never silently pooled.

use palu_suite::prelude::*;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::Measurement;
use palu_traffic::{
    FailurePolicy, FaultKind, InjectionSpec, Injector, PipelineError, WindowOutcome,
};

fn observatory(seed: u64, n_v: u64) -> Observatory {
    let gen = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(30_000)
        .unwrap();
    Observatory::new(
        ObservatoryConfig {
            name: "fault-injection test".to_string(),
            date: String::new(),
            n_v,
        },
        &gen,
        EdgeIntensity::Uniform,
        seed,
    )
}

#[test]
fn half_rate_injection_is_deterministic_across_threads_and_reruns() {
    const WINDOWS: usize = 64;
    let policy = FailurePolicy::quarantine(1);
    let spec = InjectionSpec::uniform(0.5);
    let mut reference = None;
    for (threads, seed_round) in [(1usize, 0), (2, 0), (8, 0), (8, 1)] {
        let mut obs = observatory(21, 2_000);
        let injector = Injector::new(spec, 77);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            WINDOWS,
            threads,
            None,
            &policy,
            Some(&injector),
        )
        .unwrap();
        assert!(ft.report.injected > 0, "50% rate over 64 windows");
        assert_eq!(
            ft.report.survivors + ft.report.quarantined,
            WINDOWS as u64,
            "every window is disposed exactly once (round {seed_round})"
        );
        match &reference {
            None => reference = Some(ft),
            Some(want) => {
                assert_eq!(ft.report, want.report, "threads = {threads}");
                assert_eq!(
                    ft.pooled.windows, want.pooled.windows,
                    "threads = {threads}"
                );
                for (i, ((_, got), (_, expect))) in ft
                    .pooled
                    .mean
                    .iter()
                    .zip(want.pooled.mean.iter())
                    .enumerate()
                {
                    assert_eq!(
                        got.to_bits(),
                        expect.to_bits(),
                        "mean bin {i} differs at {threads} threads"
                    );
                }
                for (i, (got, expect)) in ft
                    .pooled
                    .sigma
                    .iter()
                    .zip(want.pooled.sigma.iter())
                    .enumerate()
                {
                    assert_eq!(
                        got.to_bits(),
                        expect.to_bits(),
                        "sigma bin {i} differs at {threads} threads"
                    );
                }
                assert_eq!(ft.histogram, want.histogram, "threads = {threads}");
            }
        }
    }
}

#[test]
fn injected_count_matches_an_independent_plan_recount() {
    // With zero retries every window runs exactly one attempt, so the
    // report's injected counter must equal the number of windows whose
    // first-attempt plan is Some.
    const WINDOWS: usize = 32;
    let spec = InjectionSpec::uniform(0.4);
    let mut obs = observatory(5, 2_000);
    let injector = Injector::new(spec, 13);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::quarantine(0),
        Some(&injector),
    )
    .unwrap();
    let recount = Injector::new(spec, 13);
    let expected = (0..WINDOWS as u64)
        .filter(|&t| recount.plan(t, 0).is_some())
        .count() as u64;
    assert_eq!(ft.report.injected, expected);
    // Each planted fault shows up as exactly one record, and nothing
    // else does.
    assert_eq!(ft.report.records.len() as u64, expected);
}

#[test]
fn substitute_policy_always_delivers_every_window() {
    const WINDOWS: usize = 16;
    let mut obs = observatory(9, 2_000);
    let injector = Injector::new(InjectionSpec::uniform(0.8), 3);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::substitute(1),
        Some(&injector),
    )
    .unwrap();
    assert_eq!(ft.pooled.windows, WINDOWS as u64);
    assert_eq!(ft.report.survivors, WINDOWS as u64);
    assert_eq!(ft.report.quarantined, 0);
    assert!(
        ft.report.substituted > 0,
        "80% rate must force substitutions"
    );
    assert!(ft
        .report
        .records
        .iter()
        .all(|r| r.outcome != WindowOutcome::Quarantined));
}

#[test]
fn clean_checked_run_is_bit_identical_to_the_serial_fold() {
    const WINDOWS: usize = 12;
    let serial = {
        let obs = observatory(33, 3_000);
        let windows: Vec<PacketWindow> = (0..WINDOWS as u64).map(|t| obs.window_at(t)).collect();
        Pipeline::pool(Measurement::UndirectedDegree, &windows)
    };
    let mut obs = observatory(33, 3_000);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        8,
        None,
        &FailurePolicy::strict(),
        None,
    )
    .unwrap();
    assert!(ft.report.is_clean());
    assert_eq!(ft.pooled.windows, serial.windows);
    assert_eq!(ft.pooled.d_max, serial.d_max);
    for ((_, got), (_, want)) in ft.pooled.mean.iter().zip(serial.mean.iter()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    for (got, want) in ft.pooled.sigma.iter().zip(serial.sigma.iter()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

#[test]
fn worker_panics_are_contained_and_classified() {
    const WINDOWS: usize = 6;
    let spec = InjectionSpec {
        panic: 1.0,
        ..InjectionSpec::none()
    };
    let mut obs = observatory(2, 2_000);
    let injector = Injector::new(spec, 1);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        3,
        None,
        &FailurePolicy::quarantine(0),
        Some(&injector),
    )
    .unwrap();
    assert_eq!(ft.report.quarantined, WINDOWS as u64);
    assert_eq!(ft.report.survivors, 0);
    assert!(ft
        .report
        .records
        .iter()
        .all(|r| r.kind == FaultKind::Panic && r.outcome == WindowOutcome::Quarantined));
    // An all-quarantined run still yields a well-formed (empty) pool.
    assert_eq!(ft.pooled.windows, 0);
}

#[test]
fn quarantine_threshold_boundary_is_inclusive() {
    // The overflow predicate compares the quarantined *fraction*
    // against the threshold: exactly-equal passes, only strictly-above
    // fails. The old formulation compared counts via
    // `threshold * windows`, and 0.3 * 10.0 rounds to
    // 2.9999999999999996 in binary, so a run with exactly 3 of 10
    // windows quarantined was spuriously rejected. Pin the fixed
    // boundary end to end through the pipeline.
    const WINDOWS: usize = 10;
    let spec = InjectionSpec {
        panic: 0.3,
        ..InjectionSpec::none()
    };
    // The injection plan is pure, so scan for a seed planting exactly
    // 3 faults across the 10 first attempts (zero retries ⇒ each one
    // quarantines its window).
    let seed = (0..10_000u64)
        .find(|&s| {
            let inj = Injector::new(spec, s);
            (0..WINDOWS as u64)
                .filter(|&t| inj.plan(t, 0).is_some())
                .count()
                == 3
        })
        .expect("some seed plants exactly 3 faults in 10 windows");

    let at_threshold = FailurePolicy {
        quarantine_threshold: 0.3,
        ..FailurePolicy::quarantine(0)
    };
    let mut obs = observatory(6, 2_000);
    let injector = Injector::new(spec, seed);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &at_threshold,
        Some(&injector),
    )
    .expect("a quarantined fraction exactly at the threshold must pass");
    assert_eq!(ft.report.quarantined, 3);
    assert_eq!(ft.pooled.windows, 7);

    // One notch tighter and the same run is strictly above: refused.
    let below = FailurePolicy {
        quarantine_threshold: 0.2,
        ..at_threshold
    };
    let mut obs = observatory(6, 2_000);
    let injector = Injector::new(spec, seed);
    let err = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &below,
        Some(&injector),
    )
    .unwrap_err();
    match err {
        PipelineError::QuarantineOverflow {
            quarantined,
            windows,
            threshold,
        } => {
            assert_eq!((quarantined, windows), (3, 10));
            assert_eq!(threshold, 0.2);
        }
        other => panic!("expected QuarantineOverflow, got {other:?}"),
    }
}

#[test]
fn duplicate_storm_faults_are_recounted_and_recovered_end_to_end() {
    // A duplicate-edge storm crushes every packet of a window onto one
    // conversation, which the pipeline detects as collapsed histogram
    // support. Drive the `dup` kind end to end: the report's injected
    // counter must equal an independent recount of executed faulted
    // attempts, and every storm window must be either retried back to
    // health or quarantined.
    const WINDOWS: usize = 24;
    const RETRIES: u32 = 2;
    let spec = InjectionSpec {
        duplicate: 0.6,
        ..InjectionSpec::none()
    };
    let mut obs = observatory(11, 2_000);
    let injector = Injector::new(spec, 41);
    let ft = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::quarantine(RETRIES),
        Some(&injector),
    )
    .unwrap();

    // Replay the pure injection plan: attempts run until the first
    // clean one (which succeeds — dup is the only fault in play) or
    // the retry budget is spent.
    let recount = Injector::new(spec, 41);
    let (mut injected, mut recovered, mut quarantined) = (0u64, 0u64, 0u64);
    for t in 0..WINDOWS as u64 {
        let mut clean_at = None;
        for k in 0..=RETRIES {
            if recount.plan(t, k).is_some() {
                injected += 1;
            } else {
                clean_at = Some(k);
                break;
            }
        }
        match clean_at {
            Some(0) => {}
            Some(_) => recovered += 1,
            None => quarantined += 1,
        }
    }
    assert!(
        recovered > 0 && quarantined > 0,
        "seed must exercise both recovery outcomes \
         (recovered {recovered}, quarantined {quarantined})"
    );
    assert_eq!(ft.report.injected, injected);
    assert_eq!(ft.report.quarantined, quarantined);
    assert_eq!(ft.report.survivors, WINDOWS as u64 - quarantined);
    assert_eq!(ft.report.records.len() as u64, recovered + quarantined);
    for r in &ft.report.records {
        assert_eq!(r.kind, FaultKind::Degenerate, "window {}", r.window);
        assert!(matches!(
            r.outcome,
            WindowOutcome::Recovered | WindowOutcome::Quarantined
        ));
    }
    let got_recovered = ft
        .report
        .records
        .iter()
        .filter(|r| r.outcome == WindowOutcome::Recovered)
        .count() as u64;
    assert_eq!(got_recovered, recovered);
}
