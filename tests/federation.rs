//! Tier-1 contract for federated observatories (DESIGN.md §4j):
//! sharded capture with hierarchical journal merge.
//!
//! The guarantees under test:
//!
//! 1. **Single-process equivalence** — merging N clean shard journals
//!    reproduces the uninterrupted single-process pooled `D(d_i)` bit
//!    for bit, across a 1/2/4-shard × 1/2/8-thread sweep, with fault
//!    injection active so every journal-entry shape is exercised.
//! 2. **Crash recovery composes** — a shard killed mid-capture
//!    (journal truncated mid-record, the SIGKILL signature) resumes
//!    through the ordinary journal machinery, and the merge of the
//!    healed shards is still bit-identical; alternatively the merge
//!    itself re-captures a lost shard's windows deterministically.
//! 3. **Quarantine boundaries are exact** — a merge exactly at
//!    `min_coverage` passes, one window below refuses with the typed
//!    survivor count, and a corrupted shard quarantines exactly its
//!    window range as `ShardLost` records.
//! 4. **Identity skew is a hard refusal** — a shard captured under a
//!    skewed parameter fingerprint names the parameter and never
//!    merges.

use palu_suite::prelude::*;

use palu_traffic::federation::{
    capture_shard, merge_shard_journals, FederatedMerge, FederationError, ShardFault, ShardPlan,
};
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement};
use palu_traffic::{
    FailurePolicy, FaultKind, InjectionSpec, Injector, Journal, JournalFault, JournalHeader,
};
use std::path::PathBuf;

const WINDOWS: usize = 24;
const N_V: u64 = 200;
const SEED: u64 = 777;
const INJECT_SEED: u64 = 11;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "test=federation".to_string(),
            "lambda=3".to_string(),
            "alpha=2".to_string(),
        ],
    )
}

fn generator() -> PaluGenerator {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(3_000)
        .unwrap()
}

fn observatory(gen: &PaluGenerator) -> Observatory {
    Observatory::new(
        ObservatoryConfig {
            name: "federation test".to_string(),
            date: String::new(),
            n_v: N_V,
        },
        gen,
        EdgeIntensity::Uniform,
        SEED,
    )
}

/// The injector every capture path shares: deterministic duplicate
/// storms, so shard journals hold clean, recovered, and quarantined
/// entries alike. Faults derive from absolute window indices, so the
/// pattern is shard-split-invariant.
fn injector() -> Injector {
    let spec = InjectionSpec {
        duplicate: 0.2,
        ..InjectionSpec::none()
    };
    Injector::new(spec, INJECT_SEED)
}

fn policy() -> FailurePolicy {
    FailurePolicy::quarantine(1)
}

/// The uninterrupted single-process reference capture.
fn single_process(gen: &PaluGenerator, threads: usize) -> FaultTolerantPool {
    let mut obs = observatory(gen);
    Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        None,
        &policy(),
        Some(&injector()),
        None,
        None,
    )
    .expect("single-process capture succeeds")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("palu-federation-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Capture every shard of an `n_shards` plan into its own journal.
fn capture_all_shards(
    gen: &PaluGenerator,
    dir: &std::path::Path,
    n_shards: u64,
    threads: usize,
) -> Vec<PathBuf> {
    let plan = ShardPlan::new(WINDOWS as u64, n_shards).expect("plan");
    (0..n_shards)
        .map(|shard| {
            let path = dir.join(format!("shard-{n_shards}x-{shard}.journal"));
            let journal = Journal::create(&path, header()).expect("shard journal");
            let mut obs = observatory(gen);
            capture_shard(
                Measurement::UndirectedDegree,
                &mut obs,
                &plan,
                shard,
                threads,
                None,
                &policy(),
                Some(&injector()),
                Some(&journal),
                None,
                None,
            )
            .expect("shard capture succeeds");
            path
        })
        .collect()
}

fn merge(
    paths: &[PathBuf],
    min_coverage: f64,
    recapture: Option<&mut Observatory>,
) -> Result<FederatedMerge, FederationError> {
    merge_shard_journals(
        Measurement::UndirectedDegree,
        &header(),
        paths,
        &policy(),
        min_coverage,
        2,
        Some(&injector()),
        recapture,
        None,
    )
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.report, b.report, "{what}: fault report");
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}: window count");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}: d_max");
    assert_eq!(a.histogram, b.histogram, "{what}: merged histogram");
    for (i, ((_, ma), (_, mb))) in a.pooled.mean.iter().zip(b.pooled.mean.iter()).enumerate() {
        assert_eq!(ma.to_bits(), mb.to_bits(), "{what}: mean bin {i}");
    }
    for (i, (sa, sb)) in a.pooled.sigma.iter().zip(b.pooled.sigma.iter()).enumerate() {
        assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: sigma bin {i}");
    }
}

#[test]
fn federated_merge_is_bit_identical_across_shard_and_thread_counts() {
    let gen = generator();
    let dir = temp_dir("sweep");
    let reference = single_process(&gen, 2);
    for n_shards in [1u64, 2, 4] {
        for threads in [1usize, 2, 8] {
            let paths = capture_all_shards(&gen, &dir, n_shards, threads);
            let merged = merge(&paths, 1.0, None)
                .unwrap_or_else(|e| panic!("{n_shards} shards @ {threads} threads: {e}"));
            assert_bit_identical(
                &merged.pool,
                &reference,
                &format!("{n_shards} shards @ {threads} threads vs single-process"),
            );
            assert_eq!(merged.federation.covered, WINDOWS as u64);
            assert_eq!(merged.federation.missing, 0);
            assert!(merged.federation.faults.is_empty(), "clean shards");
            // Hierarchical depth: ceil(log2(shards)).
            let expected_levels = match n_shards {
                1 => 0,
                2 => 1,
                _ => 2,
            };
            assert_eq!(merged.federation.merge_levels, expected_levels);
            for p in &paths {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

#[test]
fn killed_shard_resumes_and_merge_stays_bit_identical() {
    let gen = generator();
    let dir = temp_dir("sigkill");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 3, 2);

    // SIGKILL the middle shard: truncate its journal mid-record, the
    // only state a kill can leave (tier-1 journal contract).
    let victim = &paths[1];
    let bytes = std::fs::read(victim).expect("victim journal readable");
    assert!(bytes.len() > 64);
    std::fs::write(victim, &bytes[..bytes.len() * 2 / 3]).expect("truncate");

    // A straight merge sees the gap as a typed RangeGap + TornTail…
    let partial = merge(&paths, 0.0, None).expect("partial merge proceeds");
    assert!(partial.federation.missing > 0);
    assert!(partial
        .federation
        .faults
        .iter()
        .any(|f| matches!(f, ShardFault::TornTail { shard: 1, .. })));
    assert!(partial
        .federation
        .faults
        .iter()
        .any(|f| matches!(f, ShardFault::RangeGap { shard: 1, .. })));

    // …then the shard process restarts with --resume: the ordinary
    // journal recovery replays the intact prefix and re-captures only
    // the complement of its own range.
    let plan = ShardPlan::new(WINDOWS as u64, 3).unwrap();
    let (journal, recovery) = Journal::resume(victim, header()).expect("shard resume");
    let mut obs = observatory(&gen);
    capture_shard(
        Measurement::UndirectedDegree,
        &mut obs,
        &plan,
        1,
        8,
        None,
        &policy(),
        Some(&injector()),
        Some(&journal),
        Some(&recovery),
        None,
    )
    .expect("shard re-capture succeeds");
    drop(journal);

    let healed = merge(&paths, 1.0, None).expect("healed merge");
    assert_bit_identical(&healed.pool, &reference, "healed merge vs single-process");
    assert_eq!(healed.federation.missing, 0);
}

#[test]
fn lost_shard_is_recaptured_deterministically_by_the_merge() {
    let gen = generator();
    let dir = temp_dir("recapture");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 4, 2);

    // Lose shard 2's journal entirely.
    let range = ShardPlan::new(WINDOWS as u64, 4)
        .unwrap()
        .shard_range(2)
        .unwrap();
    std::fs::remove_file(&paths[2]).expect("delete shard journal");

    let mut obs = observatory(&gen);
    let healed = merge(&paths, 1.0, Some(&mut obs)).expect("re-capturing merge");
    assert_bit_identical(
        &healed.pool,
        &reference,
        "re-captured merge vs single-process",
    );
    assert_eq!(healed.federation.recaptured, range.window_count());
    assert_eq!(healed.federation.missing, range.window_count());
    assert!(healed
        .federation
        .faults
        .iter()
        .any(|f| matches!(f, ShardFault::MissingJournal { shard: 2, .. })));
    assert!(healed.federation.shards[2].quarantined_shard);
}

#[test]
fn coverage_threshold_boundary_is_exact() {
    let gen = generator();
    let dir = temp_dir("coverage");
    let paths = capture_all_shards(&gen, &dir, 4, 2);
    std::fs::remove_file(&paths[3]).expect("delete shard journal");
    let lost = ShardPlan::new(WINDOWS as u64, 4)
        .unwrap()
        .shard_range(3)
        .unwrap()
        .window_count();
    // Coverage counts windows with a *known outcome* — shard-level
    // loss, not windows the capture itself quarantined under its own
    // failure policy — so with one of four shards gone the covered
    // fraction is exactly (WINDOWS - lost) / WINDOWS.
    let covered = WINDOWS as u64 - lost;
    let exact = covered as f64 / WINDOWS as f64;

    // Exactly at the covered fraction: passes.
    let at = merge(&paths, exact, None).expect("exactly-at-threshold merge passes");
    assert_eq!(at.federation.covered, covered);
    // Lost windows quarantine as ShardLost, recounted exactly.
    let shard_lost = at
        .pool
        .report
        .records
        .iter()
        .filter(|r| r.kind == FaultKind::ShardLost)
        .count() as u64;
    assert_eq!(shard_lost, lost, "one ShardLost record per lost window");

    // One window above the covered fraction: typed refusal.
    let above = (covered + 1) as f64 / WINDOWS as f64;
    match merge(&paths, above, None) {
        Err(FederationError::Coverage {
            covered: c,
            windows,
            min_coverage,
        }) => {
            assert_eq!(c, covered);
            assert_eq!(windows, WINDOWS as u64);
            assert!((min_coverage - above).abs() < 1e-12);
        }
        other => panic!("expected Coverage refusal, got {other:?}"),
    }
}

#[test]
fn corrupted_shard_quarantines_exactly_its_window_range() {
    let gen = generator();
    let dir = temp_dir("corrupt");
    let paths = capture_all_shards(&gen, &dir, 2, 2);
    let range = ShardPlan::new(WINDOWS as u64, 2)
        .unwrap()
        .shard_range(0)
        .unwrap();

    // Flip a payload byte mid-journal: a checksum failure, not a torn
    // tail, so nothing from the shard is trusted.
    let mut bytes = std::fs::read(&paths[0]).expect("journal readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&paths[0], &bytes).expect("writable");

    let merged = merge(&paths, 0.0, None).expect("merge proceeds under quarantine");
    assert!(merged
        .federation
        .faults
        .iter()
        .any(|f| matches!(f, ShardFault::Corrupt { shard: 0, .. })));
    assert!(merged.federation.shards[0].quarantined_shard);
    assert_eq!(merged.federation.shards[0].missing, range.window_count());
    let shard_lost: Vec<u64> = merged
        .pool
        .report
        .records
        .iter()
        .filter(|r| r.kind == FaultKind::ShardLost)
        .map(|r| r.window)
        .collect();
    assert_eq!(
        shard_lost,
        (range.lo..range.hi).collect::<Vec<u64>>(),
        "exactly the corrupt shard's windows quarantine as ShardLost"
    );
    // Quarantine count in the pooled report covers the lost shard's
    // windows plus the surviving shard's own capture-time quarantines.
    assert!(merged.pool.report.quarantined >= range.window_count());
}

#[test]
fn fingerprint_skew_is_refused_naming_the_parameter() {
    let gen = generator();
    let dir = temp_dir("skew");
    let paths = capture_all_shards(&gen, &dir, 2, 2);

    // Re-capture shard 1 under a skewed lambda manifest.
    let skewed = JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "test=federation".to_string(),
            "lambda=9".to_string(),
            "alpha=2".to_string(),
        ],
    );
    let plan = ShardPlan::new(WINDOWS as u64, 2).unwrap();
    let journal = Journal::create(&paths[1], skewed).expect("skewed journal");
    let mut obs = observatory(&gen);
    capture_shard(
        Measurement::UndirectedDegree,
        &mut obs,
        &plan,
        1,
        2,
        None,
        &policy(),
        Some(&injector()),
        Some(&journal),
        None,
        None,
    )
    .expect("skewed shard captures fine in isolation");
    drop(journal);

    match merge(&paths, 0.0, None) {
        Err(FederationError::IdentitySkew {
            shard: 1,
            fault:
                JournalFault::ConfigMismatch {
                    field,
                    journal,
                    run,
                },
        }) => {
            assert_eq!(field, "lambda");
            assert_eq!(journal, "9");
            assert_eq!(run, "3");
        }
        other => panic!("expected identity skew naming lambda, got {other:?}"),
    }
}
