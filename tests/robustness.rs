//! Failure-injection and robustness tests: the fitting and estimation
//! layers must degrade gracefully — informative errors or sensible
//! fits, never panics — on contaminated, degenerate, or adversarial
//! inputs.

use palu::estimate::PaluEstimator;
use palu::params::PaluParams;
use palu::zm_fit::ZmFitter;
use palu_graph::sample::sample_edges;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::mle::{fit_csn, CsnOptions};
use palu_stats::rng::Rng;
use palu_stats::rng::Xoshiro256pp;

/// A clean observed PALU histogram to contaminate.
fn clean_histogram(seed: u64) -> (DegreeHistogram, PaluParams) {
    let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
    let net = params
        .generator(150_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(seed));
    let obs = sample_edges(
        &net.graph,
        params.p,
        &mut Xoshiro256pp::seed_from_u64(seed + 1),
    );
    (obs.degree_histogram(), params)
}

#[test]
fn estimator_survives_low_degree_contamination() {
    // Inject 5% extra observations at low degrees (a scanning worm:
    // lots of hosts touching a handful of peers each). Only the head
    // and the first few tail points are affected; the fit must stay
    // in a sane band and nothing may panic.
    let (mut h, params) = clean_histogram(1);
    let n_noise = h.total() / 20;
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    for _ in 0..n_noise {
        h.increment(rng.gen_range(1..20), 1);
    }
    let est = PaluEstimator::default().estimate(&h).unwrap();
    assert!(
        (est.simplified.alpha - params.alpha).abs() < 0.6,
        "α {} drifted too far under 5% low-degree contamination",
        est.simplified.alpha
    );
    // The exact pipeline either recovers in-range parameters or —
    // because the contamination masquerades as an impossible star
    // population — rejects with a domain error naming the violated
    // range. Both are correct; silently returning out-of-range
    // parameters would not be.
    match PaluEstimator::default().estimate_exact(&h, params.p) {
        // Contamination may either (a) still allow a star estimate in
        // range, (b) push the residuals outside the detectable bump so
        // the estimator honestly reports λ = 0, or (c) masquerade as
        // an impossible star population and be rejected with a domain
        // error. Returning an out-of-range λ silently is the only
        // wrong outcome.
        Ok((_, rec)) => assert!(
            (0.0..=20.0).contains(&rec.lambda),
            "λ {} out of range",
            rec.lambda
        ),
        Err(e) => assert!(e.to_string().contains("lambda"), "unexpected error {e}"),
    }
}

#[test]
fn broadband_contamination_degrades_gracefully_not_catastrophically() {
    // 5% noise spread uniformly to degree 500 lays a flat floor over
    // most of the tail window — that legitimately defeats any fixed-
    // window regression (CSN survives only by moving x_min). The
    // contract here is graceful degradation: finite outputs, valid
    // ranges, no panic — and the tail R² diagnostic must flag the
    // damage so a caller can tell the fit is untrustworthy.
    let (clean, _) = clean_histogram(3);
    let clean_r2 = PaluEstimator::default()
        .estimate(&clean)
        .unwrap()
        .tail_r_squared;
    let (mut h, _) = clean_histogram(3);
    let n_noise = h.total() / 20;
    let mut rng = Xoshiro256pp::seed_from_u64(100);
    for _ in 0..n_noise {
        h.increment(rng.gen_range(1..500), 1);
    }
    let est = PaluEstimator::default().estimate(&h).unwrap();
    assert!(est.simplified.alpha.is_finite());
    assert!(est.simplified.c.is_finite() && est.simplified.c >= 0.0);
    assert!(
        est.tail_r_squared < clean_r2,
        "R² must flag the contamination ({} vs clean {clean_r2})",
        est.tail_r_squared
    );
}

#[test]
fn estimator_survives_supernode_injection() {
    // A gigantic injected supernode (DDoS sink) must not destabilize
    // the tail fit: it is a single count at a huge degree, and the
    // count-weighted regression keeps its leverage bounded.
    let (mut h, params) = clean_histogram(2);
    h.increment(5_000_000, 1);
    let est = PaluEstimator::default().estimate(&h).unwrap();
    assert!(
        (est.simplified.alpha - params.alpha).abs() < 0.5,
        "α {} destabilized by one supernode",
        est.simplified.alpha
    );
}

#[test]
fn estimator_errors_cleanly_on_degenerate_inputs() {
    let est = PaluEstimator::default();
    // Empty.
    assert!(est.estimate(&DegreeHistogram::new()).is_err());
    // All mass at one degree.
    let h = DegreeHistogram::from_counts([(1, 1_000_000)]);
    assert!(est.estimate(&h).is_err());
    // Two-point support — tail regression impossible.
    let h = DegreeHistogram::from_counts([(1, 1000), (2, 500)]);
    assert!(est.estimate(&h).is_err());
    // Exact pipeline propagates the same failures.
    assert!(est.estimate_exact(&DegreeHistogram::new(), 0.5).is_err());
}

#[test]
fn zm_fitter_handles_extreme_shapes() {
    let fitter = ZmFitter::default();
    // Single-bin distribution (all mass at d = 1).
    let single = DifferentialCumulative::from_values(vec![1.0]);
    let fit = fitter.fit(&single, None).unwrap();
    assert!(fit.alpha.is_finite() && fit.delta.is_finite());
    // Nearly flat pooled distribution (antithetical to a power law).
    let flat = DifferentialCumulative::from_values(vec![0.125; 8]);
    let fit = fitter.fit(&flat, None).unwrap();
    assert!(fit.objective.is_finite());
    // Mass only in the last bin.
    let spike = DifferentialCumulative::from_values(vec![0.0, 0.0, 0.0, 1.0]);
    let fit = fitter.fit(&spike, None).unwrap();
    assert!(fit.alpha.is_finite());
}

#[test]
fn zm_fitter_is_scale_consistent() {
    // Fitting the same shape expressed over 10x the sample count gives
    // the same parameters (the fit sees probabilities, not counts).
    let truth = palu::zm::ZipfMandelbrot::new(2.0, 0.4, 4096).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let small: DegreeHistogram = truth.sample_many(&mut rng, 20_000).into_iter().collect();
    let mut big = DegreeHistogram::new();
    for (d, c) in small.iter() {
        big.increment(d, c * 10);
    }
    let f1 = ZmFitter::default()
        .fit(&DifferentialCumulative::from_histogram(&small), None)
        .unwrap();
    let f2 = ZmFitter::default()
        .fit(&DifferentialCumulative::from_histogram(&big), None)
        .unwrap();
    assert!((f1.alpha - f2.alpha).abs() < 1e-6);
    assert!((f1.delta - f2.delta).abs() < 1e-5);
}

#[test]
fn csn_handles_contamination_and_degenerates() {
    // Pure-noise (uniform) data: CSN may fit *something* but the KS
    // must be visibly bad compared to genuine power-law data.
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let noise: DegreeHistogram = (0..50_000).map(|_| rng.gen_range(1..100u64)).collect();
    if let Ok(fit) = fit_csn(&noise, &CsnOptions::default()) {
        let (clean, _) = clean_histogram(8);
        let clean_fit = fit_csn(&clean, &CsnOptions::default()).unwrap();
        assert!(
            fit.ks > 2.0 * clean_fit.ks,
            "uniform noise KS {} should dwarf clean KS {}",
            fit.ks,
            clean_fit.ks
        );
    }
    // Degenerate inputs error, not panic.
    assert!(fit_csn(&DegreeHistogram::new(), &CsnOptions::default()).is_err());
    let point = DegreeHistogram::from_counts([(7, 10_000)]);
    assert!(fit_csn(&point, &CsnOptions::default()).is_err());
}

#[test]
fn sampling_extremes_flow_through_the_pipeline() {
    let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 1.0).unwrap();
    let net = params
        .generator(50_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(9));
    // p = 1: observation is the identity; estimation runs.
    let obs = sample_edges(&net.graph, 1.0, &mut Xoshiro256pp::seed_from_u64(10));
    assert_eq!(obs.n_edges(), net.graph.n_edges());
    let est = PaluEstimator::default().estimate(&obs.degree_histogram());
    assert!(est.is_ok());
    // p = 0: nothing visible; estimation errors cleanly.
    let obs = sample_edges(&net.graph, 0.0, &mut Xoshiro256pp::seed_from_u64(11));
    assert_eq!(obs.n_edges(), 0);
    assert!(PaluEstimator::default()
        .estimate(&obs.degree_histogram())
        .is_err());
}

#[test]
fn estimator_rejects_inconsistent_recoveries_rather_than_lying() {
    // Feed the underlying-recovery step data that is NOT PALU-like
    // (a pure geometric distribution): either it errors, or the
    // recovered parameters stay within the model's declared ranges —
    // it must never return out-of-range values.
    let geo = palu_stats::distributions::Geometric::from_decay_base(1.3).unwrap();
    use palu_stats::distributions::DiscreteDistribution;
    let mut rng = Xoshiro256pp::seed_from_u64(12);
    let h: DegreeHistogram = (0..100_000).map(|_| geo.sample(&mut rng)).collect();
    match PaluEstimator::default().estimate_exact(&h, 0.5) {
        Ok((_, rec)) => {
            assert!((0.0..=1.0).contains(&rec.core));
            assert!((0.0..=1.0).contains(&rec.leaves));
            assert!(rec.lambda >= 0.0 && rec.lambda <= 20.0);
            assert!(rec.alpha >= 1.5 && rec.alpha <= 3.0);
        }
        Err(e) => {
            // A domain error naming the violated constraint is the
            // correct diagnostic for non-PALU data.
            assert!(!e.to_string().is_empty());
        }
    }
}
