//! Tier-1 contract for the federation dispatcher (DESIGN.md §4l):
//! lease-based shard supervision with heartbeat liveness, fencing
//! tokens, and deterministic re-dispatch.
//!
//! The guarantees under test:
//!
//! 1. **Single-process equivalence under supervision** — a dispatcher
//!    leasing shards to workers produces a merged pooled fit
//!    bit-identical to the uninterrupted single-process run, across a
//!    2/4-shard × 1/2/4-worker sweep and under *every* chaos
//!    schedule: a worker killed pre-lease, mid-capture (partial local
//!    journal, lease left to expire), or post-capture-pre-submit, and
//!    the dispatcher itself SIGKILLed and restarted over the same
//!    journal directory.
//! 2. **Zombies are fenced and harmless** — a worker whose lease
//!    expired presents a stale fencing token, receives the typed
//!    `LeaseFenced` refusal (wire code 16), and its journal
//!    resubmission is a byte-idempotent no-op: coverage and the
//!    served fit are unchanged bit for bit.
//! 3. **Supervision is observable** — expiry, re-dispatch, and
//!    fencing all surface as typed `DispatchFault`s riding the
//!    existing `FaultReport` taxonomy (kind codes 10–14), in the
//!    dispatcher's own report, never the merged capture's.

use palu_suite::prelude::*;

use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement};
use palu_traffic::service::{query_fit, request_shutdown, Collector, RetryPolicy, ServiceConfig};
use palu_traffic::wire::{FitSnapshot, ServiceFault, WireInjector, WireSpec};
use palu_traffic::{
    request_lease, resume_zombie, run_worker, DispatchConfig, DispatchReport, DispatchServer,
    Dispatcher, FailurePolicy, FaultKind, FederationError, InjectionSpec, Injector, JournalHeader,
    LeaseOffer, WorkPhase, WorkerConfig, WorkerReport,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WINDOWS: usize = 16;
const N_V: u64 = 200;
const SEED: u64 = 4242;
const INJECT_SEED: u64 = 13;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "test=dispatch".to_string(),
            "lambda=3".to_string(),
            "alpha=2".to_string(),
        ],
    )
}

fn generator() -> PaluGenerator {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(3_000)
        .unwrap()
}

fn observatory(gen: &PaluGenerator) -> Observatory {
    Observatory::new(
        ObservatoryConfig {
            name: "dispatch test".to_string(),
            date: String::new(),
            n_v: N_V,
        },
        gen,
        EdgeIntensity::Uniform,
        SEED,
    )
}

/// Deterministic duplicate storms, same shape as the service sweep,
/// so leased captures exercise the retry machinery too.
fn injector() -> Injector {
    let spec = InjectionSpec {
        duplicate: 0.2,
        ..InjectionSpec::none()
    };
    Injector::new(spec, INJECT_SEED)
}

fn policy() -> FailurePolicy {
    FailurePolicy::quarantine(1)
}

/// The uninterrupted single-process reference capture.
fn single_process(gen: &PaluGenerator) -> FaultTolerantPool {
    let mut obs = observatory(gen);
    Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        2,
        None,
        &policy(),
        Some(&injector()),
        None,
        None,
    )
    .expect("single-process capture succeeds")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("palu-dispatch-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn config(journal_dir: PathBuf, shards: u64) -> ServiceConfig {
    ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: header(),
        shards,
        min_coverage: 1.0,
        journal_dir,
        read_timeout: Duration::from_secs(5),
    }
}

/// Short leases and fast beats so expiry/re-dispatch happen within a
/// test's patience; a live worker heartbeats every ~120 ms so a
/// 600 ms lease only expires on genuinely dead workers.
fn dispatch_config(linger: bool) -> DispatchConfig {
    DispatchConfig {
        lease: Duration::from_millis(600),
        heartbeat: Duration::from_millis(120),
        linger,
        stall: None,
    }
}

/// Bind a dispatcher over `journal_dir`, returning its address, the
/// stop handle (the in-process SIGKILL), and the server thread.
#[allow(clippy::type_complexity)]
fn start_dispatcher(
    journal_dir: PathBuf,
    shards: u64,
    dconfig: DispatchConfig,
) -> (
    String,
    Arc<AtomicBool>,
    std::thread::JoinHandle<Result<DispatchReport, ServiceFault>>,
) {
    let collector = Collector::new(config(journal_dir, shards)).expect("collector");
    let dispatcher = Dispatcher::new(collector, dconfig).expect("dispatcher");
    let server = DispatchServer::bind("127.0.0.1:0", dispatcher).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run());
    (addr, stop, handle)
}

fn worker_config(addr: &str, worker: u64, dir: &Path) -> WorkerConfig {
    WorkerConfig {
        addr: addr.to_string(),
        worker,
        journal_dir: dir.to_path_buf(),
        expect: header(),
        retry: RetryPolicy::fast(SEED + worker),
        poll: Duration::from_millis(10),
    }
}

/// Serve leases until the dispatcher says the capture is complete:
/// the exact shard-capture engine `capture_shard` runs, over the
/// ticket's window range (capped under the mid-capture chaos kill).
fn serve_until_complete(
    gen: &PaluGenerator,
    cfg: &WorkerConfig,
    chaos: Option<WorkPhase>,
) -> Result<WorkerReport, ServiceFault> {
    let mut obs = observatory(gen);
    run_worker(
        cfg,
        &WireInjector::new(WireSpec::none(), SEED),
        chaos,
        |ticket, journal, limit| {
            obs.seek(ticket.lo);
            let n = usize::try_from(limit.unwrap_or(ticket.hi - ticket.lo))
                .expect("window count fits usize");
            Pipeline::pool_observatory_durable(
                Measurement::UndirectedDegree,
                &mut obs,
                n,
                2,
                None,
                &policy(),
                Some(&injector()),
                Some(journal),
                None,
            )
            .map(|_| ())
            .map_err(FederationError::Pipeline)
        },
        |_| {},
    )
}

/// The snapshot must reproduce the reference pool bit for bit.
fn assert_snapshot_bit_identical(snap: &FitSnapshot, reference: &FaultTolerantPool, what: &str) {
    assert_eq!(snap.covered, WINDOWS as u64, "{what}: coverage");
    assert!(!snap.partial, "{what}: full coverage must not be partial");
    assert_eq!(
        snap.pooled_windows, reference.pooled.windows,
        "{what}: pooled windows"
    );
    assert_eq!(snap.d_max, reference.pooled.d_max, "{what}: d_max");
    assert_eq!(
        snap.survivors, reference.report.survivors,
        "{what}: survivors"
    );
    assert_eq!(
        snap.quarantined, reference.report.quarantined,
        "{what}: quarantined"
    );
    assert_eq!(
        snap.rows.len(),
        reference.pooled.mean.iter().count(),
        "{what}: row count"
    );
    for (i, (row, ((degree, mean), sigma))) in snap
        .rows
        .iter()
        .zip(
            reference
                .pooled
                .mean
                .iter()
                .zip(reference.pooled.sigma.iter()),
        )
        .enumerate()
    {
        assert_eq!(row.degree, degree, "{what}: degree bin {i}");
        assert_eq!(row.mean_bits, mean.to_bits(), "{what}: mean bin {i}");
        assert_eq!(row.sigma_bits, sigma.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Rebuild a collector over the dispatcher's journal directory and
/// check the merged fit against the single-process reference — the
/// same derivation a restarted server performs, so it also proves the
/// on-disk state alone carries the result.
fn assert_journals_merge_bit_identical(
    journal_dir: PathBuf,
    shards: u64,
    reference: &FaultTolerantPool,
    what: &str,
) {
    let collector = Collector::new(config(journal_dir, shards)).expect("post-hoc collector");
    let snap = collector.fit_snapshot().expect("post-hoc fit");
    assert_snapshot_bit_identical(&snap, reference, what);
}

/// Every chaos schedule the sweep runs. `DispatcherRestart` composes
/// a pre-submit worker kill with an in-process dispatcher SIGKILL
/// (stop without drain) and a restart over the same journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaos {
    None,
    WorkerPreLease,
    WorkerMidCapture,
    WorkerPreSubmit,
    DispatcherRestart,
}

impl Chaos {
    fn worker_phase(self) -> Option<WorkPhase> {
        match self {
            Chaos::None => None,
            Chaos::WorkerPreLease => Some(WorkPhase::PreLease),
            Chaos::WorkerMidCapture => Some(WorkPhase::MidCapture),
            Chaos::WorkerPreSubmit | Chaos::DispatcherRestart => Some(WorkPhase::PreSubmit),
        }
    }
}

#[test]
fn dispatched_fit_is_bit_identical_across_shard_worker_and_chaos_sweep() {
    let gen = generator();
    let reference = single_process(&gen);
    let schedules = [
        Chaos::None,
        Chaos::WorkerPreLease,
        Chaos::WorkerMidCapture,
        Chaos::WorkerPreSubmit,
        Chaos::DispatcherRestart,
    ];
    for n_shards in [2u64, 4] {
        for n_workers in [1u64, 2, 4] {
            for chaos in schedules {
                let tag = format!("{n_shards}shards-{n_workers}workers-{chaos:?}");
                let dir = temp_dir(&tag);
                let server_dir = dir.join("server");

                let (addr, stop, handle) =
                    start_dispatcher(server_dir.clone(), n_shards, dispatch_config(false));

                // The chaos worker dies first (by construction it
                // exits quickly at its kill phase); the fleet of
                // clean workers then reaps whatever it left behind.
                if let Some(phase) = chaos.worker_phase() {
                    let cfg = worker_config(&addr, 100, &dir);
                    let report =
                        serve_until_complete(&gen, &cfg, Some(phase)).expect("chaos worker runs");
                    assert_eq!(report.killed, Some(phase), "{tag}: chaos worker died");
                    assert!(report.completed.is_empty(), "{tag}: died before credit");
                }

                // The dispatcher SIGKILL: stop without drain while the
                // killed worker's lease is still outstanding, then
                // restart over the same journal directory.
                let (addr, handle) = if chaos == Chaos::DispatcherRestart {
                    stop.store(true, Ordering::SeqCst);
                    let report = handle
                        .join()
                        .expect("dispatcher thread")
                        .expect("stopped dispatcher reports");
                    assert!(
                        report.shards_done < n_shards,
                        "{tag}: killed mid-capture, not after"
                    );
                    let (addr, _stop, handle) =
                        start_dispatcher(server_dir.clone(), n_shards, dispatch_config(false));
                    (addr, handle)
                } else {
                    (addr, handle)
                };

                let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
                    let joins: Vec<_> = (0..n_workers)
                        .map(|w| {
                            let addr = addr.clone();
                            let gen = &gen;
                            let dir = &dir;
                            scope.spawn(move || {
                                let cfg = worker_config(&addr, w, dir);
                                serve_until_complete(gen, &cfg, None)
                            })
                        })
                        .collect();
                    joins
                        .into_iter()
                        .map(|j| {
                            j.join()
                                .expect("worker thread")
                                .unwrap_or_else(|e| panic!("{tag}: worker failed: {e}"))
                        })
                        .collect()
                });
                for report in &reports {
                    assert_eq!(report.killed, None, "{tag}: clean workers survive");
                    assert_eq!(report.fenced, 0, "{tag}: live workers are never fenced");
                }
                let completed: u64 = reports.iter().map(|r| r.completed.len() as u64).sum();
                assert!(completed > 0, "{tag}: someone did the work");

                let report = handle
                    .join()
                    .expect("dispatcher thread")
                    .expect("dispatcher drains with a report");
                assert_eq!(report.shards_done, n_shards, "{tag}: all shards done");
                match chaos {
                    Chaos::None | Chaos::WorkerPreLease | Chaos::DispatcherRestart => {}
                    Chaos::WorkerMidCapture | Chaos::WorkerPreSubmit => {
                        assert!(report.leases_expired > 0, "{tag}: dead lease expired");
                        assert!(report.leases_redispatched > 0, "{tag}: range re-dispatched");
                        assert!(
                            report
                                .events
                                .iter()
                                .any(|e| e.kind() == FaultKind::LeaseExpired),
                            "{tag}: expiry is a typed event"
                        );
                        assert!(
                            report
                                .faults
                                .records
                                .iter()
                                .any(|r| r.kind == FaultKind::WorkerLost),
                            "{tag}: worker loss rides the fault taxonomy"
                        );
                    }
                }

                assert_journals_merge_bit_identical(server_dir, n_shards, &reference, &tag);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn fenced_zombie_is_typed_and_never_changes_coverage() {
    let gen = generator();
    let reference = single_process(&gen);
    let dir = temp_dir("zombie");
    let server_dir = dir.join("server");
    let n_shards = 2u64;

    // Linger so the dispatcher outlives completion: the zombie has to
    // find a live dispatcher to be refused by.
    let (addr, _stop, handle) =
        start_dispatcher(server_dir.clone(), n_shards, dispatch_config(true));

    // The doomed worker takes a lease, captures its range into a
    // local journal — and then goes silent (no heartbeat, no submit).
    let zombie_cfg = worker_config(&addr, 7, &dir);
    let ticket = match request_lease(&addr, &zombie_cfg.retry, 7).expect("lease request") {
        LeaseOffer::Granted(ticket) => ticket,
        other => panic!("expected a grant, got {other:?}"),
    };
    let zombie_journal = dir.join(palu_traffic::worker_journal_name(
        7,
        ticket.shards,
        ticket.shard,
    ));
    {
        let journal =
            palu_traffic::Journal::create(&zombie_journal, header()).expect("zombie journal");
        let mut obs = observatory(&gen);
        obs.seek(ticket.lo);
        Pipeline::pool_observatory_durable(
            Measurement::UndirectedDegree,
            &mut obs,
            usize::try_from(ticket.hi - ticket.lo).expect("fits"),
            2,
            None,
            &policy(),
            Some(&injector()),
            Some(&journal),
            None,
        )
        .expect("zombie capture");
    }

    // Let the lease expire, then a live worker completes everything —
    // including the zombie's abandoned range, re-dispatched.
    std::thread::sleep(Duration::from_millis(700));
    let live_cfg = worker_config(&addr, 8, &dir);
    let live = serve_until_complete(&gen, &live_cfg, None).expect("live worker");
    assert!(
        live.completed.contains(&ticket.shard),
        "live worker reaped the zombie's shard"
    );

    let before = query_fit(&addr, &RetryPolicy::fast(SEED)).expect("fit before zombie");
    assert_snapshot_bit_identical(&before, &reference, "before the zombie wakes");

    // The zombie wakes: its heartbeat draws the typed fenced refusal,
    // and its full-journal resubmission is a byte-idempotent no-op.
    let outcome = resume_zombie(
        &zombie_cfg,
        &WireInjector::new(WireSpec::none(), SEED),
        ticket.shard,
        ticket.shards,
        ticket.fence,
    )
    .expect("zombie resumption is typed, not an error");
    assert!(outcome.fenced, "stale fence draws the typed refusal");
    assert_eq!(
        outcome.resubmitted,
        ticket.hi - ticket.lo,
        "resubmission confirms every window already persisted"
    );

    let after = query_fit(&addr, &RetryPolicy::fast(SEED)).expect("fit after zombie");
    assert_snapshot_bit_identical(&after, &reference, "after the zombie resubmits");
    assert_eq!(
        before.covered, after.covered,
        "zombie resubmission never changes coverage"
    );

    // Drain through the dispatcher's collector path (the routed
    // non-lease protocol) and audit the supervision trail.
    request_shutdown(&addr, &RetryPolicy::fast(SEED)).expect("shutdown");
    let report = handle
        .join()
        .expect("dispatcher thread")
        .expect("drain report");
    assert_eq!(report.shards_done, n_shards);
    assert!(report.leases_expired >= 1, "the zombie's lease expired");
    assert!(report.leases_redispatched >= 1, "its range re-dispatched");
    assert!(report.leases_fenced >= 1, "the refusal was counted");
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind() == FaultKind::LeaseFenced),
        "fencing is a typed event"
    );
    assert!(
        report
            .faults
            .records
            .iter()
            .any(|r| r.kind == FaultKind::LeaseFenced),
        "fencing rides the fault taxonomy"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
