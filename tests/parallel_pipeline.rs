//! Tier-1 contract for the sharded multi-window pipeline.
//!
//! Two guarantees the rest of the suite leans on:
//!
//! 1. **Determinism** — `Pipeline::pool_observatory_parallel` is
//!    bit-identical to the serial fold for any thread count, because
//!    per-window RNG streams are derived splittably by window index
//!    and single-window shards merge in window order through the
//!    `Welford::merge` n = 1 fast path (a literal replay of the
//!    serial push sequence).
//! 2. **Weights regression** — `PooledDistribution::weights` returns
//!    uniform 1.0 in the degenerate all-σ-zero case (e.g. a single
//!    window), so the weighted ZM fit coincides with the unweighted
//!    one instead of dividing by zero; with several windows the
//!    inverse-variance weighting is preserved.

use palu_suite::prelude::*;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::Measurement;

fn observatory(seed: u64, n_v: u64) -> Observatory {
    let gen = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(30_000)
        .unwrap();
    Observatory::new(
        ObservatoryConfig {
            name: "parallel-pipeline test".to_string(),
            date: String::new(),
            n_v,
        },
        &gen,
        EdgeIntensity::Uniform,
        seed,
    )
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial_at_1_2_8_threads() {
    const WINDOWS: usize = 64;
    let serial = {
        let obs = observatory(42, 5_000);
        let windows: Vec<PacketWindow> = (0..WINDOWS as u64).map(|t| obs.window_at(t)).collect();
        Pipeline::pool(Measurement::UndirectedDegree, &windows)
    };
    // Odd thread counts exercise non-dividing work splits; 96 > 64
    // windows exercises the oversubscribed queue (idle workers must
    // exit cleanly without claiming anything).
    for threads in [1usize, 2, 3, 5, 7, 8, 96] {
        let mut obs = observatory(42, 5_000);
        let parallel = Pipeline::pool_observatory_parallel(
            Measurement::UndirectedDegree,
            &mut obs,
            WINDOWS,
            threads,
            None,
        );
        assert_eq!(parallel.windows, serial.windows, "threads = {threads}");
        assert_eq!(parallel.d_max, serial.d_max, "threads = {threads}");
        assert_eq!(
            parallel.mean.n_bins(),
            serial.mean.n_bins(),
            "threads = {threads}"
        );
        for (i, ((_, got), (_, want))) in parallel.mean.iter().zip(serial.mean.iter()).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "mean bin {i} differs at {threads} threads"
            );
        }
        for (i, (got, want)) in parallel.sigma.iter().zip(serial.sigma.iter()).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "sigma bin {i} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn metrics_snapshot_counts_the_parallel_workload() {
    let metrics = Metrics::new();
    let mut obs = observatory(7, 2_000);
    let pooled = Pipeline::pool_observatory_parallel(
        Measurement::UndirectedDegree,
        &mut obs,
        8,
        2,
        Some(&metrics),
    );
    assert_eq!(pooled.windows, 8);
    let snap: MetricsSnapshot = metrics.snapshot();
    assert_eq!(snap.windows, 8);
    assert_eq!(snap.packets, 8 * 2_000);
    assert_eq!(snap.threads, 2);
    // Every per-window stage saw work; only the merge runs on the main
    // thread and may be too fast to register on a coarse clock.
    assert!(snap.synthesize_ns > 0);
    assert!(snap.histogram_ns > 0);
}

#[test]
fn single_window_weighted_fit_coincides_with_unweighted() {
    // One window ⇒ every σ is 0 ⇒ the old inverse-variance weights
    // were all-infinite/NaN. The regression contract: weights are
    // uniform 1.0 and the weighted ZM fit equals the plain
    // least-squares fit on the same observation.
    let mut obs = observatory(11, 20_000);
    let pooled =
        Pipeline::pool_observatory_parallel(Measurement::UndirectedDegree, &mut obs, 1, 1, None);
    let w = pooled.weights(100.0);
    assert!(!w.is_empty());
    assert!(w.iter().all(|&x| x == 1.0), "weights {w:?}");

    let weighted = ZmFitter::with_objective(FitObjective::WeightedLeastSquares)
        .fit(&pooled.mean, Some(&w))
        .unwrap();
    let plain = ZmFitter::with_objective(FitObjective::LeastSquares)
        .fit(&pooled.mean, None)
        .unwrap();
    assert_eq!(weighted.alpha.to_bits(), plain.alpha.to_bits());
    assert_eq!(weighted.delta.to_bits(), plain.delta.to_bits());
    assert_eq!(weighted.objective.to_bits(), plain.objective.to_bits());
}

#[test]
fn multi_window_weights_remain_inverse_variance() {
    // With several windows the σ's vary and the weights must still be
    // 1/σ² (capped at the constant-bin default), i.e. *not* flattened
    // by the degenerate-case guard.
    let mut obs = observatory(13, 5_000);
    let pooled =
        Pipeline::pool_observatory_parallel(Measurement::UndirectedDegree, &mut obs, 12, 4, None);
    let w = pooled.weights(100.0);
    let varying: Vec<(usize, f64)> = pooled
        .sigma
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s > 0.0)
        .map(|(i, &s)| (i, s))
        .collect();
    assert!(
        varying.len() >= 2,
        "fixture should produce varying bins, got σ = {:?}",
        pooled.sigma
    );
    for (i, s) in varying {
        let expected = 1.0 / (s * s);
        assert!(
            (w[i] - expected).abs() <= 1e-12 * expected,
            "bin {i}: weight {} vs 1/σ² {expected}",
            w[i]
        );
    }
    // And a multi-window pool is genuinely different from uniform.
    assert!(w.iter().any(|&x| x != 1.0));
}

// A deliberately serial reference for the determinism test above:
// pooling via the one-window-at-a-time streaming API must agree with
// both, closing the loop between the three pooling entry points.
#[test]
fn streaming_pool_agrees_with_parallel_pool() {
    const WINDOWS: usize = 16;
    let obs = observatory(99, 3_000);
    let packets: Vec<palu_traffic::packets::Packet> = (0..WINDOWS as u64)
        .flat_map(|t| obs.packets_at(t).unwrap())
        .collect();
    let streamed = palu_traffic::stream::StreamStats::new(Measurement::UndirectedDegree)
        .consume(packets.into_iter(), 3_000);
    let mut obs2 = observatory(99, 3_000);
    let parallel = Pipeline::pool_observatory_parallel(
        Measurement::UndirectedDegree,
        &mut obs2,
        WINDOWS,
        8,
        None,
    );
    assert_eq!(streamed.mean, parallel.mean);
    assert_eq!(streamed.sigma, parallel.sigma);
    assert_eq!(streamed.d_max, parallel.d_max);
}
