//! Tier-1 lint gate: the whole workspace must pass R1–R5.
//!
//! This test runs the palu-lint engine in-process over the workspace
//! and fails on any finding, which makes `cargo test` the single
//! entry point for the hermeticity/determinism policies (see DESIGN.md
//! "Hermeticity & the lint gate" and `ci.sh`).

use palu_lint::{run_all, LintConfig};

#[test]
fn workspace_passes_all_lint_rules() {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    let cfg = LintConfig::new(env!("CARGO_MANIFEST_DIR"));
    let diags = run_all(&cfg).expect("lint engine runs");
    if !diags.is_empty() {
        let listing: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        panic!(
            "lint gate: {} finding(s)\n{}\n\nfix the findings, annotate a justified \
             `// lint:allow(RULE)`, or (R4 only, after reducing unwraps) re-run \
             `cargo run -p palu-lint -- --write-baseline`",
            diags.len(),
            listing.join("\n")
        );
    }
}
