//! Tier-1 contract for federation service mode (DESIGN.md §4k):
//! the crash-tolerant shard-submission server and its retry clients.
//!
//! The guarantees under test:
//!
//! 1. **Single-process equivalence over the wire** — shard journals
//!    submitted over TCP and served back through the rolling merged
//!    fit reproduce the uninterrupted single-process pooled `D(d_i)`
//!    bit for bit, across a 1/2/4-shard × 1/2/8-thread sweep.
//! 2. **Kills compose** — a client dropped mid-frame and a server
//!    stopped with a torn journal tail both recover through ordinary
//!    journal machinery: a restarted server rebuilds coverage from
//!    disk, reconnecting clients resume from the acknowledged window
//!    set, and the final fit is still bit-identical.
//! 3. **Wire faults never corrupt the fit** — with the seeded
//!    injector corrupting/dropping/duplicating/truncating half of all
//!    client frames, retries converge and the served fit stays
//!    bit-identical; resubmission is idempotent.
//! 4. **Every torn submission prefix is typed** — mirroring the
//!    journal prefix sweep, a session cut at any byte boundary leaves
//!    the collector with either no fault or a typed `Torn`, never a
//!    corrupted slot, and a clean retry converges.

use palu_suite::prelude::*;

use palu_traffic::federation::ShardPlan;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement};
use palu_traffic::service::{
    query_fit, request_shutdown, shard_journal_name, submit_journal, Collector, RetryPolicy,
    Server, ServiceConfig,
};
use palu_traffic::wire::{read_frame, write_frame, FitSnapshot, ServiceFault, WireMessage};
use palu_traffic::{
    FailurePolicy, InjectionSpec, Injector, Journal, JournalHeader, WireInjector, WireSpec,
};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

const WINDOWS: usize = 16;
const N_V: u64 = 200;
const SEED: u64 = 4242;
const INJECT_SEED: u64 = 13;

fn header() -> JournalHeader {
    JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec![
            "test=service".to_string(),
            "lambda=3".to_string(),
            "alpha=2".to_string(),
        ],
    )
}

fn generator() -> PaluGenerator {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(3_000)
        .unwrap()
}

fn observatory(gen: &PaluGenerator) -> Observatory {
    Observatory::new(
        ObservatoryConfig {
            name: "service test".to_string(),
            date: String::new(),
            n_v: N_V,
        },
        gen,
        EdgeIntensity::Uniform,
        SEED,
    )
}

/// Deterministic duplicate storms so shard journals hold clean and
/// recovered entries alike (same shape as the federation sweep).
fn injector() -> Injector {
    let spec = InjectionSpec {
        duplicate: 0.2,
        ..InjectionSpec::none()
    };
    Injector::new(spec, INJECT_SEED)
}

fn policy() -> FailurePolicy {
    FailurePolicy::quarantine(1)
}

/// The uninterrupted single-process reference capture.
fn single_process(gen: &PaluGenerator, threads: usize) -> FaultTolerantPool {
    let mut obs = observatory(gen);
    Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        None,
        &policy(),
        Some(&injector()),
        None,
        None,
    )
    .expect("single-process capture succeeds")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("palu-service-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Capture every shard of an `n_shards` plan into its own journal.
fn capture_all_shards(
    gen: &PaluGenerator,
    dir: &Path,
    n_shards: u64,
    threads: usize,
) -> Vec<PathBuf> {
    let plan = ShardPlan::new(WINDOWS as u64, n_shards).expect("plan");
    (0..n_shards)
        .map(|shard| {
            let path = dir.join(format!("client-{n_shards}x-{shard}.journal"));
            let journal = Journal::create(&path, header()).expect("shard journal");
            let mut obs = observatory(gen);
            palu_traffic::federation::capture_shard(
                Measurement::UndirectedDegree,
                &mut obs,
                &plan,
                shard,
                threads,
                None,
                &policy(),
                Some(&injector()),
                Some(&journal),
                None,
                None,
            )
            .expect("shard capture succeeds");
            path
        })
        .collect()
}

fn config(journal_dir: PathBuf, shards: u64, min_coverage: f64) -> ServiceConfig {
    ServiceConfig {
        measurement: Measurement::UndirectedDegree,
        expect: header(),
        shards,
        min_coverage,
        journal_dir,
        read_timeout: Duration::from_secs(5),
    }
}

/// Start a loopback server, returning its address and the join handle
/// that yields the drain report.
fn start_server(
    journal_dir: PathBuf,
    shards: u64,
) -> (
    String,
    std::thread::JoinHandle<Result<palu_traffic::ServiceReport, ServiceFault>>,
) {
    let collector = Collector::new(config(journal_dir, shards, 1.0)).expect("collector");
    let server = Server::bind("127.0.0.1:0", collector).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// The snapshot must reproduce the reference pool bit for bit.
fn assert_snapshot_bit_identical(snap: &FitSnapshot, reference: &FaultTolerantPool, what: &str) {
    assert_eq!(snap.covered, WINDOWS as u64, "{what}: coverage");
    assert!(!snap.partial, "{what}: full coverage must not be partial");
    assert_eq!(
        snap.pooled_windows, reference.pooled.windows,
        "{what}: pooled windows"
    );
    assert_eq!(snap.d_max, reference.pooled.d_max, "{what}: d_max");
    assert_eq!(
        snap.survivors, reference.report.survivors,
        "{what}: survivors"
    );
    assert_eq!(
        snap.quarantined, reference.report.quarantined,
        "{what}: quarantined"
    );
    assert_eq!(
        snap.rows.len(),
        reference.pooled.mean.iter().count(),
        "{what}: row count"
    );
    for (i, (row, ((degree, mean), sigma))) in snap
        .rows
        .iter()
        .zip(
            reference
                .pooled
                .mean
                .iter()
                .zip(reference.pooled.sigma.iter()),
        )
        .enumerate()
    {
        assert_eq!(row.degree, degree, "{what}: degree bin {i}");
        assert_eq!(row.mean_bits, mean.to_bits(), "{what}: mean bin {i}");
        assert_eq!(row.sigma_bits, sigma.to_bits(), "{what}: sigma bin {i}");
    }
}

/// Byte offsets just past each complete frame of a journal (or wire
/// session) byte stream.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 8 + len;
        if end > bytes.len() {
            break;
        }
        off = end;
        ends.push(end);
    }
    ends
}

#[test]
fn served_fit_is_bit_identical_across_shard_and_thread_sweep() {
    let gen = generator();
    let dir = temp_dir("sweep");
    let reference = single_process(&gen, 2);
    for n_shards in [1u64, 2, 4] {
        for threads in [1usize, 2, 8] {
            let tag = format!("{n_shards}x-{threads}t");
            let paths = capture_all_shards(&gen, &dir, n_shards, threads);
            let server_dir = dir.join(format!("server-{tag}"));
            let (addr, handle) = start_server(server_dir, n_shards);

            // One submitting thread per shard, like independent
            // client processes racing on the same service.
            let workers: Vec<_> = paths
                .iter()
                .cloned()
                .enumerate()
                .map(|(shard, path)| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        submit_journal(
                            &addr,
                            &path,
                            shard as u64,
                            n_shards,
                            &header(),
                            &RetryPolicy::fast(SEED + shard as u64),
                            &WireInjector::new(WireSpec::none(), SEED),
                        )
                    })
                })
                .collect();
            for worker in workers {
                let outcome = worker
                    .join()
                    .expect("submit thread")
                    .unwrap_or_else(|e| panic!("{tag}: submission failed: {e}"));
                assert_eq!(
                    outcome.accepted, outcome.assigned,
                    "{tag}: shard {} fully persisted",
                    outcome.shard
                );
            }

            let snap = query_fit(&addr, &RetryPolicy::fast(SEED)).expect("fit");
            assert_snapshot_bit_identical(&snap, &reference, &tag);

            request_shutdown(&addr, &RetryPolicy::fast(SEED)).expect("shutdown");
            let report = handle.join().expect("server thread").expect("drain report");
            assert_eq!(report.covered, WINDOWS as u64, "{tag}: drained coverage");
            assert_eq!(report.rejected, 0, "{tag}: clean run has no rejections");
            for p in &paths {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

#[test]
fn client_and_server_kills_recover_to_a_bit_identical_fit() {
    let gen = generator();
    let dir = temp_dir("kills");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 2, 2);
    let server_dir = dir.join("server");

    // Round 1: shard 0 submits cleanly; shard 1's client is killed
    // mid-frame (half a window record on the wire, then the socket
    // drops — the SIGKILL signature seen by the server).
    let (addr, handle) = start_server(server_dir.clone(), 2);
    submit_journal(
        &addr,
        &paths[0],
        0,
        2,
        &header(),
        &RetryPolicy::fast(SEED),
        &WireInjector::new(WireSpec::none(), SEED),
    )
    .expect("shard 0 submits");

    let shard1_bytes = std::fs::read(&paths[1]).expect("shard 1 journal readable");
    let bounds = frame_boundaries(&shard1_bytes);
    assert!(bounds.len() > 3, "shard journal has header + windows");
    {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        write_frame(
            &mut stream,
            &WireMessage::SubmitBegin {
                shard: 1,
                shards: 2,
                windows: WINDOWS as u64,
            }
            .encode(),
        )
        .expect("begin");
        let mut acked = false;
        if let Ok(Some(payload)) = read_frame(&mut stream) {
            if let Ok(WireMessage::BeginAck { have }) = WireMessage::decode(&payload) {
                assert!(have.is_empty(), "no shard-1 windows persisted yet");
                acked = true;
            }
        }
        assert!(acked, "BeginAck expected");
        // Header record, one full window record, then half of the
        // next record — and the "process" dies.
        let cut = bounds[1] + (bounds[2] - bounds[1]) / 2;
        stream.write_all(&shard1_bytes[..cut]).expect("torn write");
        // Dropping the stream without SubmitEnd is the kill.
    }

    // Stop server 1. Its journals persist whatever was acked; tear the
    // shard-1 server journal mid-record on top, the state an actual
    // SIGKILL during append can leave behind.
    request_shutdown(&addr, &RetryPolicy::fast(SEED)).expect("shutdown server 1");
    let report1 = handle.join().expect("server thread").expect("drain");
    assert!(report1.covered >= (WINDOWS as u64) / 2, "shard 0 persisted");
    let server_journal_1 = server_dir.join(shard_journal_name(2, 1));
    if let Ok(bytes) = std::fs::read(&server_journal_1) {
        if bytes.len() > 12 {
            std::fs::write(&server_journal_1, &bytes[..bytes.len() - 5]).expect("tear tail");
        }
    }

    // Round 2: a fresh server on the same journal directory rebuilds
    // coverage from disk; the retrying client resumes from the
    // acknowledged window set and completes shard 1.
    let (addr2, handle2) = start_server(server_dir, 2);
    let outcome = submit_journal(
        &addr2,
        &paths[1],
        1,
        2,
        &header(),
        &RetryPolicy::fast(SEED + 1),
        &WireInjector::new(WireSpec::none(), SEED),
    )
    .expect("shard 1 resubmits after restart");
    assert_eq!(outcome.accepted, outcome.assigned, "shard 1 complete");

    let snap = query_fit(&addr2, &RetryPolicy::fast(SEED)).expect("fit");
    assert_snapshot_bit_identical(&snap, &reference, "after client+server kills");

    request_shutdown(&addr2, &RetryPolicy::fast(SEED)).expect("shutdown server 2");
    let report2 = handle2.join().expect("server thread").expect("drain");
    assert_eq!(report2.covered, WINDOWS as u64);
}

#[test]
fn wire_fault_injection_never_corrupts_the_served_fit() {
    let gen = generator();
    let dir = temp_dir("wire-faults");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 2, 2);
    let (addr, handle) = start_server(dir.join("server"), 2);

    // Half of all client frames are dropped, corrupted, duplicated,
    // delayed, or truncated — deterministically per (frame, attempt).
    let injector = WireInjector::new(WireSpec::uniform(0.5), INJECT_SEED);
    let retry = RetryPolicy {
        deadline: Duration::from_secs(60),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        io_timeout: Duration::from_secs(5),
        seed: SEED,
    };
    for (shard, path) in paths.iter().enumerate() {
        let outcome = submit_journal(&addr, path, shard as u64, 2, &header(), &retry, &injector)
            .unwrap_or_else(|e| panic!("shard {shard} under 50% wire faults: {e}"));
        assert_eq!(outcome.accepted, outcome.assigned, "shard {shard} complete");
    }

    // Resubmission under the same fault storm is idempotent: nothing
    // new is accepted and nothing conflicts.
    let again = submit_journal(&addr, &paths[0], 0, 2, &header(), &retry, &injector)
        .expect("faulty resubmission stays idempotent");
    assert_eq!(again.accepted, again.assigned);

    let snap = query_fit(&addr, &RetryPolicy::fast(SEED)).expect("fit");
    assert_snapshot_bit_identical(&snap, &reference, "under 50% wire faults");

    request_shutdown(&addr, &RetryPolicy::fast(SEED)).expect("shutdown");
    let report = handle.join().expect("server thread").expect("drain");
    assert_eq!(report.covered, WINDOWS as u64);
    // The storm must have been real: the server refused at least one
    // corrupt/torn frame, and every refusal is typed in the report.
    assert!(report.rejected > 0, "injection reached the server");
    assert!(report.faults.iter().all(|f| f.code > 0));
}

#[test]
fn combined_delay_and_duplicate_storms_converge_on_one_collector() {
    let gen = generator();
    let dir = temp_dir("delay-dup");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 2, 2);
    let (addr, handle) = start_server(dir.join("server"), 2);

    // Delays and duplicates *together* are the nasty schedule: a
    // delayed frame reorders against its own duplicate, so the
    // collector sees the same window arrive twice with other records
    // in between — both submitting clients aim the storm at the one
    // collector concurrently.
    let spec = WireSpec {
        delay: 0.4,
        duplicate: 0.4,
        ..WireSpec::none()
    };
    let workers: Vec<_> = paths
        .iter()
        .cloned()
        .enumerate()
        .map(|(shard, path)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                submit_journal(
                    &addr,
                    &path,
                    shard as u64,
                    2,
                    &header(),
                    &RetryPolicy::fast(SEED + shard as u64),
                    &WireInjector::new(spec, INJECT_SEED + shard as u64),
                )
            })
        })
        .collect();
    for worker in workers {
        let outcome = worker
            .join()
            .expect("submit thread")
            .expect("submission under delay+duplicate storms");
        assert_eq!(outcome.accepted, outcome.assigned, "shard fully persisted");
    }

    let snap = query_fit(&addr, &RetryPolicy::fast(SEED)).expect("fit");
    assert_snapshot_bit_identical(&snap, &reference, "under delay+duplicate storms");

    request_shutdown(&addr, &RetryPolicy::fast(SEED)).expect("shutdown");
    let report = handle.join().expect("server thread").expect("drain");
    assert_eq!(report.covered, WINDOWS as u64);
    // Duplicates must actually have hit the collector, and been
    // absorbed as duplicates — not rejections.
    assert!(report.duplicates > 0, "the duplicate storm was real");
}
struct CannedConn {
    input: std::io::Cursor<Vec<u8>>,
    replies: Vec<u8>,
}

impl Read for CannedConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for CannedConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.replies.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn every_torn_submission_prefix_is_typed_and_retry_converges() {
    let gen = generator();
    let dir = temp_dir("torn-sweep");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 1, 2);

    // Record the full submission session a client would send: Begin,
    // the journal's records verbatim, End.
    let journal_bytes = std::fs::read(&paths[0]).expect("journal readable");
    let records = frame_boundaries(&journal_bytes).len();
    let mut session: Vec<u8> = Vec::new();
    write_frame(
        &mut session,
        &WireMessage::SubmitBegin {
            shard: 0,
            shards: 1,
            windows: WINDOWS as u64,
        }
        .encode(),
    )
    .expect("encode begin");
    session.extend_from_slice(&journal_bytes);
    write_frame(
        &mut session,
        &WireMessage::SubmitEnd {
            sent: records as u64 - 1,
        }
        .encode(),
    )
    .expect("encode end");

    let collector = Collector::new(config(dir.join("server"), 1, 1.0)).expect("collector");
    let boundaries = frame_boundaries(&session);

    // The exhaustive kill-point sweep, mirroring the journal prefix
    // sweep: a session cut at any byte is either a clean disconnect
    // (frame boundary) or a typed torn frame — never an untyped error,
    // never a corrupted slot.
    for cut in 0..=session.len() {
        let mut conn = CannedConn {
            input: std::io::Cursor::new(session[..cut].to_vec()),
            replies: Vec::new(),
        };
        let summary = collector.handle(&mut conn);
        let at_boundary = cut == 0 || boundaries.contains(&cut);
        match (&summary.fault, at_boundary) {
            (None, true) => {}
            (Some(ServiceFault::Torn { .. }), false) => {}
            (fault, _) => {
                panic!("cut at byte {cut} (boundary: {at_boundary}): unexpected outcome {fault:?}")
            }
        }
    }

    // After the storm of torn sessions, one clean pass converges…
    let mut conn = CannedConn {
        input: std::io::Cursor::new(session.clone()),
        replies: Vec::new(),
    };
    let summary = collector.handle(&mut conn);
    assert!(
        summary.fault.is_none(),
        "clean session: {:?}",
        summary.fault
    );

    // …to a bit-identical fit, and the server-side journal replays
    // with every window intact.
    let snap = collector.fit_snapshot().expect("fit");
    assert_snapshot_bit_identical(&snap, &reference, "after torn-prefix sweep");
    let report = collector.report();
    assert_eq!(report.covered, WINDOWS as u64);
    drop(collector);
    let recovered = Journal::recover_file(
        &dir.join("server").join(shard_journal_name(1, 0)),
        &header(),
    )
    .expect("server journal replays");
    assert_eq!(recovered.windows.len(), WINDOWS);
    assert_eq!(recovered.torn_records_dropped, 0, "server journal is whole");
}

#[test]
fn resumed_client_whose_first_frame_is_already_persisted_stays_idempotent() {
    let gen = generator();
    let dir = temp_dir("beginack-edge");
    let reference = single_process(&gen, 2);
    let paths = capture_all_shards(&gen, &dir, 1, 2);
    let journal_bytes = std::fs::read(&paths[0]).expect("journal readable");
    let records = frame_boundaries(&journal_bytes).len() as u64;
    let mut session: Vec<u8> = Vec::new();
    write_frame(
        &mut session,
        &WireMessage::SubmitBegin {
            shard: 0,
            shards: 1,
            windows: WINDOWS as u64,
        }
        .encode(),
    )
    .expect("encode begin");
    session.extend_from_slice(&journal_bytes);
    write_frame(
        &mut session,
        &WireMessage::SubmitEnd { sent: records - 1 }.encode(),
    )
    .expect("encode end");

    let collector = Collector::new(config(dir.join("server"), 1, 1.0)).expect("collector");

    // Session 1: a clean full submission persists every window.
    let mut conn = CannedConn {
        input: std::io::Cursor::new(session.clone()),
        replies: Vec::new(),
    };
    let summary = collector.handle(&mut conn);
    assert!(
        summary.fault.is_none(),
        "clean session: {:?}",
        summary.fault
    );
    assert_eq!(collector.report().covered, WINDOWS as u64);

    // Session 2: the resumption edge. A client killed after its acks
    // were lost resumes from scratch, so the very first window frame
    // it sends is one the server already persisted. The BeginAck must
    // advertise the complete have-set, and the replayed records must
    // land as duplicates — never rejections, never double counts.
    let mut conn = CannedConn {
        input: std::io::Cursor::new(session),
        replies: Vec::new(),
    };
    let summary = collector.handle(&mut conn);
    assert!(
        summary.fault.is_none(),
        "resumed session: {:?}",
        summary.fault
    );
    let reply_bounds = frame_boundaries(&conn.replies);
    assert!(!reply_bounds.is_empty(), "BeginAck reply expected");
    let first = &conn.replies[8..reply_bounds[0]];
    match WireMessage::decode(first).expect("BeginAck decodes") {
        WireMessage::BeginAck { have } => {
            assert_eq!(
                have.len(),
                WINDOWS,
                "have-set advertises every persisted window"
            );
            assert!(
                (0..WINDOWS as u64).all(|w| have.contains(&w)),
                "have-set is the exact window set"
            );
        }
        other => panic!("expected BeginAck, got {other:?}"),
    }

    let report = collector.report();
    assert_eq!(report.covered, WINDOWS as u64, "coverage unchanged");
    assert!(
        report.duplicates > 0,
        "replayed records counted as duplicates"
    );
    assert_eq!(report.rejected, 0, "idempotent replay is never a rejection");
    let snap = collector.fit_snapshot().expect("fit");
    assert_snapshot_bit_identical(&snap, &reference, "after the resumed replay");
}
