//! Cross-crate integration tests: the full paper pipeline from
//! generative model to fitted parameters, exercised through the public
//! API exactly as a downstream user would.

use palu_stats::rng::Xoshiro256pp;
use palu_suite::prelude::*;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::Measurement;

fn params() -> PaluParams {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap()
}

#[test]
fn generate_observe_fit_recover() {
    // The quickstart path: model → network → observation → ZM fit →
    // parameter recovery, all through the prelude. p = 0.7 keeps the
    // star bump (λp = 2.1) inside the estimator's identifiability
    // envelope.
    let truth = params().with_p(0.7).unwrap();
    let net = truth
        .generator(200_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(11));
    let observed = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(12));
    let h = observed.degree_histogram();

    // ZM fit is tight on PALU traffic.
    let pooled = DifferentialCumulative::from_histogram(&h);
    let fit = ZmFitter::default().fit(&pooled, None).unwrap();
    assert!(
        fit.objective.sqrt() < 0.05,
        "ZM residual {}",
        fit.objective.sqrt()
    );
    assert!(fit.alpha > 1.0 && fit.alpha < 4.0);

    // Recovery lands near the truth.
    let (_, rec) = PaluEstimator::default()
        .estimate_exact(&h, truth.p)
        .unwrap();
    assert!((rec.alpha - truth.alpha).abs() < 0.3, "α {}", rec.alpha);
    assert!((rec.lambda - truth.lambda).abs() < 1.0, "λ {}", rec.lambda);
    assert!((rec.leaves - truth.leaves).abs() < 0.1, "L {}", rec.leaves);
}

#[test]
fn packet_budget_and_edge_probability_agree() {
    // The Section II packet-window view and the Section III p-view
    // must be two descriptions of the same observation: a window of
    // N_V = −E·ln(1−p) packets sees ≈ p of the conversations.
    let truth = params();
    let net = truth
        .generator(80_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(21));
    // Deduplicate parallel edges: the p ↔ N_V bridge is per
    // *conversation*, and parallel core edges are indistinguishable
    // by (src, dst) when counting coverage from packets.
    let mut simple = palu_graph::graph::Graph::with_nodes(net.graph.n_nodes());
    let mut seen = std::collections::HashSet::new();
    for &(u, v) in net.graph.edges() {
        if seen.insert((u.min(v), u.max(v))) {
            simple.add_edge(u, v);
        }
    }
    let net_graph = simple;
    let mut rng = Xoshiro256pp::seed_from_u64(22);
    let syn =
        palu_traffic::packets::PacketSynthesizer::new(&net_graph, EdgeIntensity::Uniform, &mut rng);
    let target_p = 0.5;
    let n_v = syn.packets_for_p(target_p);
    let packets = syn.draw_many(&mut rng, n_v as usize).unwrap();
    let distinct: std::collections::HashSet<_> = packets
        .iter()
        .map(|p| (p.src.min(p.dst), p.src.max(p.dst)))
        .collect();
    let coverage = distinct.len() as f64 / net_graph.n_edges() as f64;
    assert!(
        (coverage - target_p).abs() < 0.02,
        "edge coverage {coverage} vs target p {target_p}"
    );
}

#[test]
fn observatory_pipeline_is_deterministic_and_consistent() {
    let truth = params();
    let gen = truth.generator(60_000).unwrap();
    let config = ObservatoryConfig {
        name: "it".into(),
        date: "d".into(),
        n_v: 50_000,
    };
    let mut a = Observatory::new(config.clone(), &gen, EdgeIntensity::Uniform, 5);
    let mut b = Observatory::new(config, &gen, EdgeIntensity::Uniform, 5);
    let wa = a.windows(3);
    let wb = b.windows(3);
    for (x, y) in wa.iter().zip(&wb) {
        assert_eq!(x.matrix(), y.matrix());
    }
    // Pooled statistics conserve probability mass.
    let pooled = Pipeline::pool(Measurement::UndirectedDegree, &wa);
    assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
    assert_eq!(pooled.windows, 3);
}

#[test]
fn window_aggregates_respect_conservation_laws() {
    // Cross-crate invariants on a real observatory window: source and
    // destination packet totals both equal N_V; fan-out and fan-in
    // totals both equal the unique-link count.
    let truth = params();
    let gen = truth.generator(60_000).unwrap();
    let mut obs = Observatory::new(
        ObservatoryConfig {
            name: "laws".into(),
            date: "d".into(),
            n_v: 80_000,
        },
        &gen,
        EdgeIntensity::Pareto { shape: 1.3 },
        9,
    );
    let w = obs.next_window();
    let agg = w.aggregates();
    let q = w.quantities();
    assert_eq!(agg.valid_packets, 80_000);
    assert_eq!(q.source_packets.degree_sum(), agg.valid_packets);
    assert_eq!(q.destination_packets.degree_sum(), agg.valid_packets);
    assert_eq!(q.source_fan_out.degree_sum(), agg.unique_links);
    assert_eq!(q.destination_fan_in.degree_sum(), agg.unique_links);
    assert_eq!(q.link_packets.total(), agg.unique_links);
    // Matrix-notation Table I agrees on real traffic.
    assert_eq!(
        agg,
        palu_sparse::aggregates::Aggregates::compute_matrix_notation(w.matrix())
    );
}

#[test]
fn zm_connection_closes_the_loop() {
    // Section VI: starting from underlying parameters, the implied δ
    // from the u/c correspondence should be close to the δ an actual
    // ZM fit finds on traffic from those parameters.
    let truth = params();
    let net = truth
        .generator(200_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(31));
    let observed = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(32));
    let pooled = DifferentialCumulative::from_histogram(&observed.degree_histogram());
    let fit = ZmFitter::default().fit(&pooled, None).unwrap();

    let delta_implied = PaluCurve::delta_from_model(
        truth.unattached / truth.core,
        truth.lambda,
        truth.p,
        truth.alpha,
    )
    .unwrap();
    // Both should be negative (leaf/star-heavy head) and same order.
    assert!(fit.delta < 0.0, "fitted δ {}", fit.delta);
    assert!(delta_implied < 0.0, "implied δ {delta_implied}");
    assert!(
        (fit.delta - delta_implied).abs() < 0.5,
        "fitted δ {} vs implied {delta_implied}",
        fit.delta
    );
}

#[test]
fn csn_baseline_sees_one_exponent_where_palu_sees_three_populations() {
    // The motivating contrast of the paper: the classical single
    // power-law fit cannot represent leaves or stars.
    let truth = params();
    let net = truth
        .generator(150_000)
        .unwrap()
        .generate(&mut Xoshiro256pp::seed_from_u64(41));
    let observed = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(42));
    let h = observed.degree_histogram();

    let csn = palu_stats::mle::fit_csn(&h, &palu_stats::mle::CsnOptions::default()).unwrap();
    // CSN picks an x_min past the leaf/star head and reports a single α…
    assert!(csn.alpha > 1.5 && csn.alpha < 3.0, "CSN α {}", csn.alpha);
    // …while PALU decomposes the same histogram into populations.
    let est = PaluEstimator::default().estimate(&h).unwrap();
    assert!(est.simplified.l > 0.0);
    assert!(est.simplified.u > 0.0);
    assert!(est.simplified.capital_lambda > 0.0);
}
