//! Tier-1 contract for the resource-budget governor (DESIGN.md §4g):
//! bounded-memory capture without changing a single output bit.
//!
//! The guarantees under test:
//!
//! 1. **Byte-identity without a budget** — every pool entry point
//!    (`pool_observatory_checked`, `pool_observatory_durable`,
//!    `pool_observatory_governed` with no governor, and with an ample
//!    governor) produces bit-identical pooled `D(d_i)`.
//! 2. **Admission soundness** — across a sweep of configurations the
//!    projected peak upper-bounds the peak the ledger actually
//!    records, and a budget below the degraded floor is refused with
//!    a typed fault before the observatory advances.
//! 3. **Deterministic degradation** — one tight budget yields the
//!    same degradation events and the same pooled bits at 1, 2, and
//!    8 threads, run after run.
//! 4. **The ladder under ballast** — seeded ballast injection drives
//!    every rung in engagement order without corrupting the output.
//! 5. **Governed resume** — replaying a journal under a tight budget
//!    degrades instead of overrunning, and still reproduces the
//!    uninterrupted pooled result bit for bit.

use palu_suite::prelude::*;

use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::{FaultTolerantPool, Measurement};
use palu_traffic::{
    BudgetFault, CostModel, DegradationRung, FailurePolicy, Governor, InjectionSpec, Injector,
    Journal, JournalHeader, PipelineError, ResourceBudget,
};

const WINDOWS: usize = 24;
const N_V: u64 = 2_000;
const SEED: u64 = 20260807;

fn generator() -> PaluGenerator {
    PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5)
        .unwrap()
        .generator(3_000)
        .unwrap()
}

fn observatory(gen: &PaluGenerator, n_v: u64) -> Observatory {
    Observatory::new(
        ObservatoryConfig {
            name: "budget-governor test".to_string(),
            date: String::new(),
            n_v,
        },
        gen,
        EdgeIntensity::Uniform,
        SEED,
    )
}

fn cost_model(gen: &PaluGenerator, n_v: u64, windows: usize, threads: usize) -> CostModel {
    CostModel {
        n_v,
        n_nodes: observatory(gen, n_v).underlying().n_nodes() as u64,
        windows: windows as u64,
        threads: threads as u64,
    }
}

/// One governed capture over a fresh observatory.
fn run(
    gen: &PaluGenerator,
    threads: usize,
    governor: Option<&Governor<'_>>,
    injector: Option<&Injector>,
    metrics: Option<&Metrics>,
) -> Result<FaultTolerantPool, PipelineError> {
    let mut obs = observatory(gen, N_V);
    Pipeline::pool_observatory_governed(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        threads,
        metrics,
        &FailurePolicy::strict(),
        injector,
        None,
        None,
        governor,
    )
}

fn assert_bit_identical(a: &FaultTolerantPool, b: &FaultTolerantPool, what: &str) {
    assert_eq!(a.pooled.windows, b.pooled.windows, "{what}: window count");
    assert_eq!(a.pooled.d_max, b.pooled.d_max, "{what}: d_max");
    for (i, ((ga, wa), (gs, ws))) in a
        .pooled
        .mean
        .iter()
        .zip(b.pooled.mean.iter())
        .zip(a.pooled.sigma.iter().zip(b.pooled.sigma.iter()))
        .enumerate()
    {
        assert_eq!(ga.0, wa.0, "{what}: bin {i} degree");
        assert_eq!(ga.1.to_bits(), wa.1.to_bits(), "{what}: mean bin {i}");
        assert_eq!(gs.to_bits(), ws.to_bits(), "{what}: sigma bin {i}");
    }
}

/// A tight-but-feasible budget for this workload: a hard watermark of
/// the degraded floor plus one window of transient headroom, and a
/// soft watermark of one window — any batch in flight breaches it, so
/// the ladder engages deterministically at every width.
fn tight_budget(gen: &PaluGenerator, threads: usize) -> (ResourceBudget, u64) {
    let model = cost_model(gen, N_V, WINDOWS, threads);
    let hard = model.floor_bytes() + model.window_bytes();
    (
        ResourceBudget::with_watermarks(Some(model.window_bytes()), Some(hard)),
        hard,
    )
}

#[test]
fn every_entry_point_is_bit_identical_without_a_budget() {
    let gen = generator();
    let governed_none = run(&gen, 4, None, None, None).expect("governed, no governor");

    let mut obs = observatory(&gen, N_V);
    let checked = Pipeline::pool_observatory_checked(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::strict(),
        None,
    )
    .expect("checked");
    assert_bit_identical(&checked, &governed_none, "checked vs governed(None)");

    let mut obs = observatory(&gen, N_V);
    let durable = Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::strict(),
        None,
        None,
        None,
    )
    .expect("durable");
    assert_bit_identical(&durable, &governed_none, "durable vs governed(None)");

    // An ample budget runs the ledger but must not change a bit.
    let ample = ResourceBudget::with_limit(1 << 40);
    let gov = Governor {
        budget: &ample,
        strict_admission: true,
    };
    let governed = run(&gen, 4, Some(&gov), None, None).expect("governed, ample");
    assert_bit_identical(&governed, &governed_none, "ample vs governed(None)");
    assert!(governed.report.degradations.is_empty());
}

#[test]
fn admission_estimate_bounds_the_actual_peak_across_configs() {
    let gen = generator();
    for (n_v, windows, threads) in [
        (200, 6, 1),
        (200, 24, 4),
        (2_000, 8, 2),
        (2_000, 24, 8),
        (10_000, 12, 4),
    ] {
        let budget = ResourceBudget::with_limit(1 << 40);
        let gov = Governor {
            budget: &budget,
            strict_admission: false,
        };
        let metrics = Metrics::new();
        let mut obs = observatory(&gen, n_v);
        Pipeline::pool_observatory_governed(
            Measurement::UndirectedDegree,
            &mut obs,
            windows,
            threads,
            Some(&metrics),
            &FailurePolicy::strict(),
            None,
            None,
            None,
            Some(&gov),
        )
        .expect("ample capture");
        let snap = metrics.snapshot();
        assert!(
            snap.admission_estimate_bytes >= snap.peak_accounted_bytes,
            "estimate {} < actual peak {} for n_v={n_v} windows={windows} threads={threads}",
            snap.admission_estimate_bytes,
            snap.peak_accounted_bytes,
        );
        assert!(snap.peak_accounted_bytes > 0, "ledger must have recorded");
        // The ledger must drain completely: every acquire released.
        assert_eq!(budget.accounted(), 0, "ledger leak");
    }
}

#[test]
fn infeasible_budgets_are_refused_with_a_typed_fault() {
    let gen = generator();
    let floor = cost_model(&gen, N_V, WINDOWS, 4).floor_bytes();
    let budget = ResourceBudget::with_limit(floor / 2);
    let gov = Governor {
        budget: &budget,
        strict_admission: false,
    };
    match run(&gen, 4, Some(&gov), None, None) {
        Err(PipelineError::Budget(BudgetFault::AdmissionRefused {
            estimated,
            floor: f,
            limit,
            suggestion,
        })) => {
            assert!(f > limit, "refusal must cite an infeasible floor");
            assert!(estimated >= f, "estimate below the floor");
            if let Some(s) = suggestion {
                assert!(s.n_v <= N_V && s.threads >= 1, "suggestion {s:?}");
            }
        }
        other => panic!("expected AdmissionRefused, got {other:?}"),
    }
    // Refusal happens before any window is synthesized: a fresh
    // capture on the same seed still reproduces the baseline.
    let baseline = run(&gen, 4, None, None, None).expect("baseline");
    let retry = run(&gen, 4, None, None, None).expect("retry after refusal");
    assert_bit_identical(&retry, &baseline, "capture after refusal");
}

#[test]
fn tight_budget_degrades_identically_at_every_thread_count() {
    let gen = generator();
    let baseline = run(&gen, 4, None, None, None).expect("baseline");

    for threads in [1usize, 2, 8] {
        let (budget, limit) = tight_budget(&gen, threads);
        let gov = Governor {
            budget: &budget,
            strict_admission: false,
        };
        let pool = run(&gen, threads, Some(&gov), None, None).expect("tight capture");
        assert_bit_identical(&pool, &baseline, "tight budget vs baseline");
        assert!(
            !pool.report.degradations.is_empty(),
            "a one-window soft watermark must engage the ladder at {threads} threads"
        );
        assert!(budget.peak() <= limit, "ledger peak overran the limit");
        let events: Vec<(DegradationRung, u64)> = pool
            .report
            .degradations
            .iter()
            .map(|d| (d.rung, d.window))
            .collect();
        // Engagement follows the declared rung order, each at most once.
        for (i, (r, _)) in events.iter().enumerate() {
            assert_eq!(*r, DegradationRung::ALL[i], "rung {i} out of order");
        }
        // The same budget at the same width is exactly repeatable.
        let (budget2, _) = tight_budget(&gen, threads);
        let gov2 = Governor {
            budget: &budget2,
            strict_admission: false,
        };
        let again = run(&gen, threads, Some(&gov2), None, None).expect("repeat");
        assert_bit_identical(&again, &pool, "repeat at same width");
        let again_events: Vec<(DegradationRung, u64)> = again
            .report
            .degradations
            .iter()
            .map(|d| (d.rung, d.window))
            .collect();
        assert_eq!(again_events, events, "degradations differ on rerun");
        assert_eq!(budget2.peak(), budget.peak(), "peaks differ on rerun");
    }
}

#[test]
fn ballast_injection_climbs_every_rung_in_order() {
    let gen = generator();
    let baseline = run(&gen, 4, None, None, None).expect("baseline");
    let model = cost_model(&gen, N_V, WINDOWS, 4);
    // Headroom for clean 4-wide batches; ballasted windows (4x the
    // transient) must breach the soft watermark.
    let budget = ResourceBudget::with_watermarks(
        Some(6 * model.window_bytes()),
        Some(model.peak_bytes(4) * 4),
    );
    let gov = Governor {
        budget: &budget,
        strict_admission: false,
    };
    let spec = InjectionSpec {
        ballast: 1.0,
        ..InjectionSpec::none()
    };
    let injector = Injector::new(spec, 5);
    let pool = run(&gen, 4, Some(&gov), Some(&injector), None).expect("ballasted capture");
    assert_bit_identical(&pool, &baseline, "ballast vs baseline");
    assert!(
        pool.report.injected > 0,
        "ballast must be counted as injected"
    );
    assert_eq!(pool.report.survivors, WINDOWS as u64);
    let rungs: Vec<DegradationRung> = pool.report.degradations.iter().map(|d| d.rung).collect();
    assert!(!rungs.is_empty(), "ballast must engage the ladder");
    // Engagement follows the declared order with no rung repeated.
    for (i, r) in rungs.iter().enumerate() {
        assert_eq!(*r, DegradationRung::ALL[i], "rung {i} out of order");
    }
    assert_eq!(rungs.len(), 3, "sustained ballast climbs the whole ladder");
}

#[test]
fn journal_resume_under_a_tight_budget_degrades_and_matches() {
    let gen = generator();
    let baseline = run(&gen, 4, None, None, None).expect("baseline");

    let dir = std::env::temp_dir().join("palu-budget-governor-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("governed-resume.journal");
    let _ = std::fs::remove_file(&path);
    let header = JournalHeader::with_params(
        SEED,
        N_V,
        WINDOWS as u64,
        vec!["test=budget-governor".to_string()],
    );

    // Full durable capture, no budget.
    let journal = Journal::create(&path, header.clone()).expect("create");
    let mut obs = observatory(&gen, N_V);
    Pipeline::pool_observatory_durable(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::strict(),
        None,
        Some(&journal),
        None,
    )
    .expect("durable capture");
    drop(journal);

    // Resume the complete journal under a tight budget: the replay
    // buffers through the accountant, the retained slots breach the
    // soft watermark, and the ladder spills them into the merge
    // instead of overrunning. The soft watermark sits below the
    // replayed slots' aggregate footprint so degradation is certain.
    let model = cost_model(&gen, N_V, WINDOWS, 4);
    let limit = model.floor_bytes() + model.window_bytes();
    let (journal, recovery) = Journal::resume(&path, header).expect("resume");
    assert_eq!(recovery.windows.len(), WINDOWS, "journal must be complete");
    let budget = ResourceBudget::with_watermarks(Some(1024), Some(limit));
    let gov = Governor {
        budget: &budget,
        strict_admission: false,
    };
    let mut obs = observatory(&gen, N_V);
    let resumed = Pipeline::pool_observatory_governed(
        Measurement::UndirectedDegree,
        &mut obs,
        WINDOWS,
        4,
        None,
        &FailurePolicy::strict(),
        None,
        Some(&journal),
        Some(&recovery),
        Some(&gov),
    )
    .expect("governed resume");
    drop(journal);
    assert_bit_identical(&resumed, &baseline, "governed resume vs baseline");
    assert!(budget.peak() <= limit, "replay overran the budget");
    assert!(budget.peak() > 0, "replay must be accounted");
    assert!(
        !resumed.report.degradations.is_empty(),
        "replaying {WINDOWS} retained slots past a 1 KiB soft watermark must degrade"
    );
    let _ = std::fs::remove_file(&path);
}
